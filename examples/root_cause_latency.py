#!/usr/bin/env python3
"""Why root-causing RRS bugs is hard -- and what IDLD buys you.

Runs a small injection campaign on one benchmark and compares, per bug:

* the *manifestation* latency (activation -> first architecturally
  observable deviation; what a debug engineer without IDLD must bridge),
* the *IDLD detection* latency (activation -> XOR code violation),
* the *BV* detection latency (the Section V.E alternative).

The paper's Figure 5 shows manifestations landing millions of cycles after
activation (and 13.5% never manifesting at all); IDLD pins the activation
cycle exactly.
"""

from repro.analysis.buckets import histogram_table
from repro.analysis.trace import RRSTracer
from repro.bugs import run_campaign
from repro.core import OoOCore, SimulationError
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind
from repro.idld import IDLDChecker
from repro.workloads import WORKLOADS


def main() -> None:
    program = WORKLOADS["dijkstra"](scale=1.5)
    campaign = run_campaign({"dijkstra": program}, runs_per_model=15, seed=9)

    rows = [r for r in campaign.results if r.activated]
    manifest = [
        r.manifestation_latency for r in rows if r.manifestation_latency is not None
    ]
    never = sum(1 for r in rows if r.manifestation_latency is None)
    idld = [r.idld_latency for r in rows if r.idld_latency is not None]
    bv = [r.bv_latency for r in rows if r.bv_latency is not None]

    print(f"{len(rows)} bug injections into 'dijkstra' "
          f"(golden run: {campaign.goldens['dijkstra'].cycles} cycles)\n")
    print("\n".join(histogram_table({
        "manifest": manifest,
        "IDLD": idld,
        "BV": bv,
    })))
    print(f"\nbugs that NEVER manifest architecturally: {never} "
          f"({never / len(rows):.0%}) -- invisible without IDLD")
    print(f"IDLD detected {len(idld)}/{len(rows)} "
          f"(max latency {max(idld) if idld else 0} cycles)")
    print(f"BV detected {len(bv)}/{len(rows)} "
          f"(max latency {max(bv) if bv else 0} cycles)")
    print("\nThe debugging gap: without IDLD you must reconstruct up to "
          f"{max(manifest) if manifest else 0} cycles of microarchitectural "
          "history; with IDLD, zero to a handful.")

    # --- the triage workflow: IDLD pins the cycle, the trace shows it ---
    fabric = SignalFabric()
    armed = fabric.arm_suppression(ArrayName.RAT, SignalKind.WRITE_ENABLE, 400)
    tracer = RRSTracer()
    checker = IDLDChecker()
    core = OoOCore(program, observers=[tracer, checker], fabric=fabric)
    # Post-silicon style: freeze the machine the moment the checker fires.
    try:
        while not core.halted and core.cycle < 50_000 and not checker.detected:
            core.step()
    except SimulationError:
        pass
    if checker.detected:
        cycle = checker.first_detection_cycle
        print(f"\nTriage demo: IDLD flagged cycle {cycle} "
              f"(bug activated at {armed.fired_cycle}); machine frozen. "
              "RRS trace around the activation:")
        print(tracer.render(around_cycle=armed.fired_cycle, radius=1))


if __name__ == "__main__":
    main()
