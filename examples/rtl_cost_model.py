#!/usr/bin/env python3
"""Reproduce Table II: area/energy of the RRS, baseline vs IDLD.

Sweeps 1/2/4/6/8-wide renaming through the structural 45 nm cost model
and prints the model's numbers next to the paper's overhead percentages,
plus the Section VI.B whole-core estimate and a per-macro breakdown of
where the IDLD area actually goes at 4-wide.
"""

from repro.rtl import baseline_rrs, idld_extension, table_ii_report


def main() -> None:
    print(table_ii_report())

    print("\nIDLD extension breakdown at 4-wide (um^2, before placement):")
    extension = idld_extension(4)
    for name, area in sorted(
        extension.breakdown().items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:28s} {area:>9.0f}")

    print("\nBaseline breakdown at 4-wide (top contributors):")
    base = baseline_rrs(4)
    for name, area in sorted(base.breakdown().items(), key=lambda kv: -kv[1])[:8]:
        print(f"  {name:28s} {area:>9.0f}")


if __name__ == "__main__":
    main()
