#!/usr/bin/env python3
"""Quickstart: run a program on the OoO core with IDLD attached.

Demonstrates the three-step public API:

1. build a program (assembler text or :class:`ProgramBuilder`),
2. attach detectors to an :class:`OoOCore` and run,
3. inject a bug through the signal fabric and watch IDLD fire the same
   cycle the PdstID flow is perturbed.
"""

from repro import IDLDChecker, OoOCore, assemble
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

SOURCE = """
.name quickstart
    li   r31, 0
    li   r1, 0          ; i
    li   r2, 200        ; n
    li   r3, 0          ; sum
loop:
    mul  r4, r1, r1
    add  r3, r3, r4     ; sum += i*i
    addi r1, r1, 1
    blt  r1, r2, loop
    out  r3
    halt
"""


def main() -> None:
    program = assemble(SOURCE)

    # --- 1. a bug-free run: the invariance holds every cycle -------------
    checker = IDLDChecker()
    core = OoOCore(program, observers=[checker])
    result = core.run()
    print(f"bug-free: output={result.output} in {result.cycles} cycles, "
          f"{result.stats['flushes']} flush recoveries")
    print(f"IDLD violations: {len(checker.violations)} (expected 0)")

    # --- 2. the same run with a RAT write-enable glitch at cycle 150 -----
    fabric = SignalFabric()
    armed = fabric.arm_suppression(
        ArrayName.RAT, SignalKind.WRITE_ENABLE, from_cycle=150
    )
    checker = IDLDChecker()
    core = OoOCore(program, observers=[checker], fabric=fabric)
    buggy = core.run(max_cycles=10 * result.cycles)

    print(f"\nbuggy: output={buggy.output} "
          f"({'WRONG' if buggy.output != result.output else 'identical -- masked!'})")
    print(f"bug activated at cycle {armed.fired_cycle}")
    if checker.detected:
        violation = checker.violations[0]
        latency = violation.cycle - armed.fired_cycle
        print(f"IDLD detected it at cycle {violation.cycle} "
              f"(latency {latency} cycles, syndrome {violation.syndrome:#x})")
    else:
        print("IDLD did not fire -- the armed signal was never exercised")


if __name__ == "__main__":
    main()
