#!/usr/bin/env python3
"""The paper's Figure 2 walkthrough, replayed on the live model.

A new instruction renames its destination while the RAT write-enable is
stuck low: the freshly allocated PdstID is never written into the RAT
(*leakage*), the previous mapping keeps serving consumers, and its PdstID
ends up both in the ROB and in the RAT (*duplication*). Consumers read the
stale register, violating dataflow, while nothing in the machine crashes
-- exactly why such bugs are hard to detect. IDLD's XOR code goes nonzero
in the very cycle the write is dropped.
"""

from repro import IDLDChecker, OoOCore, ProgramBuilder
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind


def build_program():
    """r1 gets 111, is rewritten to 222, then read -- Figure 2's shape.

    The two NOPs pad the first rename group (the core is 4-wide) so the
    ``li r1, 222`` rename -- the one whose RAT write we suppress -- is the
    first RAT write of its own cycle.
    """
    b = ProgramBuilder("figure2")
    b.li(1, 111)      # old mapping of r1 ("R1" in the figure)
    b.li(2, 0)
    b.nop()
    b.nop()
    b.li(1, 222)      # the rename whose RAT write we will suppress ("R3")
    b.add(2, 1, 2)    # consumer: should read 222
    b.out(2)
    b.halt()
    return b.build()


def run(suppress_cycle=None):
    program = build_program()
    fabric = SignalFabric()
    armed = None
    if suppress_cycle is not None:
        armed = fabric.arm_suppression(
            ArrayName.RAT, SignalKind.WRITE_ENABLE, suppress_cycle
        )
    checker = IDLDChecker()
    core = OoOCore(program, observers=[checker], fabric=fabric)
    result = core.run(max_cycles=500)
    return core, result, checker, armed


def main() -> None:
    print("=== Figure 2(a): bug-free reference ===")
    _, golden, checker, _ = run()
    print(f"output: {golden.output} (consumer read the new value 222)")
    print(f"IDLD violations: {len(checker.violations)}\n")

    print("=== Figure 2(b)/(c): RAT write-enable stuck low ===")
    # Fetch fills the buffer in cycle 1, group 1 renames in cycle 2, and
    # the li r1,222 group renames in cycle 3 -- arm the glitch there.
    core, buggy, checker, armed = run(suppress_cycle=3)
    print(f"bug activated (RAT write dropped) at cycle {armed.fired_cycle}")
    print(f"output: {buggy.output} -- the consumer read the STALE value "
          f"{buggy.output[0]} instead of 222" if buggy.output != golden.output
          else f"output: {buggy.output}")

    census = core.rrs_id_census()
    leaked = [p for p in range(core.config.num_physical_regs) if p not in census]
    duplicated = [p for p, n in census.items() if n > 1]
    print(f"leaked PdstIDs (nowhere in FL/RAT/ROB): {leaked}")
    print(f"duplicated PdstIDs (appear twice):      {duplicated}")

    if checker.detected:
        violation = checker.violations[0]
        print(f"IDLD fired at cycle {violation.cycle} "
              f"(activation was cycle {armed.fired_cycle}) -- "
              f"latency {violation.cycle - armed.fired_cycle} cycles")
        print(f"  FLxor={violation.fl_xor:#x} RATxor={violation.rat_xor:#x} "
              f"ROBxor={violation.rob_xor:#x} -> syndrome {violation.syndrome:#x}")
    else:
        print("IDLD did not fire (unexpected for this scenario)")


if __name__ == "__main__":
    main()
