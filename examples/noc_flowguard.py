#!/usr/bin/env python3
"""The generic IDLD recipe on a NoC credit link (Section V.F's last claim).

Two closed token loops live in a credit-managed link -- flits and credits.
One :class:`FlowInvariantChecker` per loop gives IDLD-style detection of
dropped flits and leaked credits, including the classic silent failure
where data still flows perfectly while the credit loop bleeds capacity.
"""

from repro.noc import CreditLink, NocSignal, NocSignalFabric, run_traffic


def report(title, link, stats, armed=None):
    print(f"=== {title} ===")
    if armed is not None:
        print(f"bug activated at cycle {armed.fired_cycle}")
    print(f"injected {stats.injected}, drained {stats.drained} "
          f"in {stats.cycles} cycles")
    for name, guard in (("flit", link.flit_guard), ("credit", link.credit_guard)):
        if guard.detected:
            violation = guard.violations[0]
            print(f"  {name}-loop guard: VIOLATION at cycle {violation.cycle} "
                  f"({violation.policy}, {violation.outstanding} outstanding)")
        else:
            print(f"  {name}-loop guard: clean")
    print(f"  credit census clean: {link.credit_census_clean()}\n")


def main() -> None:
    link = CreditLink()
    stats = run_traffic(link, 300, seed=9)
    report("bug-free traffic", link, stats)

    fabric = NocSignalFabric()
    armed = fabric.arm(NocSignal.FLIT_DELIVER, 50)
    link = CreditLink(fabric=fabric)
    stats = run_traffic(link, 300, seed=9)
    report("one flit dropped on the wire", link, stats, armed)

    fabric = NocSignalFabric()
    armed = fabric.arm(NocSignal.CREDIT_RETURN, 50)
    link = CreditLink(fabric=fabric)
    stats = run_traffic(link, 300, seed=9)
    report("one credit never returned (data flow looks PERFECT)", link,
           stats, armed)


if __name__ == "__main__":
    main()
