#!/usr/bin/env python3
"""The Figure 7 use case: IDLD guarding the Store-Sets MDP.

Drives a bursty load/store stream through the store-sets predictor, then
suppresses an LFST removal: the inner ID of a departed store lingers in
the table. The SQ-empty / counter-zero checks of Section V.F detect the
insertion/removal XOR mismatch; the checkpointed variant detects it even
when the store queue never drains.
"""

from repro.mdp import (
    CheckpointedMDPChecker,
    MDPIDLDChecker,
    MDPPipeline,
    MDPSignal,
    MDPSignalFabric,
    StoreSetsPredictor,
    make_stream,
)


def run(suppress=None, at_cycle=100, seed=5):
    stream = make_stream(600, seed=seed)
    fabric = MDPSignalFabric()
    armed = fabric.arm(suppress, at_cycle) if suppress else None
    quiescent = MDPIDLDChecker()
    checkpointed = CheckpointedMDPChecker(interval=8)
    observers = [quiescent, checkpointed]
    predictor = StoreSetsPredictor(fabric=fabric, observers=observers)
    pipeline = MDPPipeline(
        stream, predictor=predictor, fabric=fabric, observers=observers
    )
    result = pipeline.run(max_cycles=20_000)
    return result, quiescent, checkpointed, armed


def main() -> None:
    print("=== bug-free stream ===")
    result, quiescent, checkpointed, _ = run()
    print(f"completed {result.completed} ops in {result.cycles} cycles, "
          f"{result.violations} memory-order violations trained the SSIT")
    print(f"quiescent-check violations:   {len(quiescent.violations)} (expected 0)")
    print(f"checkpointed-check violations: {len(checkpointed.violations)} (expected 0)\n")

    for signal in (MDPSignal.LFST_REMOVE_EXEC, MDPSignal.LFST_REMOVE_DISPLACE):
        print(f"=== suppressing {signal.value} ===")
        result, quiescent, checkpointed, armed = run(suppress=signal)
        print(f"bug activated at cycle {armed.fired_cycle}; "
              f"stream {'HUNG' if result.hung else 'completed'}; "
              f"{result.lfst_leftover} stale LFST entries at the end")
        for name, checker in (("quiescent", quiescent), ("checkpointed", checkpointed)):
            if checker.detected:
                latency = checker.first_detection_cycle - armed.fired_cycle
                policy = checker.violations[0].policy
                print(f"  {name:13s} detected via '{policy}' check, "
                      f"latency {latency} cycles")
            else:
                print(f"  {name:13s} did not detect (no checking opportunity "
                      f"before the table healed)")
        print()


if __name__ == "__main__":
    main()
