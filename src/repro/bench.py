"""Performance benchmark harness (``python -m repro.bench``).

Measures the two throughput numbers the campaign engine lives on:

* **golden cycles/s** — raw simulator speed on each suite benchmark, and
* **injections/s** — end-to-end injection throughput, cold (every run from
  power-on) versus warm-started from the snapshot provider
  (:mod:`repro.bugs.snapshot`) versus differential (warm start plus
  activation forecasting and convergence-terminated suffixes,
  :mod:`repro.bugs.differential`), with the one-time provider
  construction cost reported separately.

Every invocation appends one entry to ``BENCH_core.json`` at the output
path (default: repo root), so the file accumulates a performance
trajectory across commits rather than overwriting history. The warm and
cold runs execute identical task lists and the harness asserts their
results are equal before reporting, so a reported speedup is never bought
with a behavior change.

Example::

    PYTHONPATH=src python -m repro.bench --runs 8
    PYTHONPATH=src python -m repro.bench --runs 2 --scale 0.5  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, List, Optional

from repro.bugs.snapshot import SnapshotProvider
from repro.core.config import CoreConfig
from repro.core.cpu import (
    OoOCore,
    disable_stage_profiling,
    enable_stage_profiling,
)
from repro.exec.tasks import execute_task, generate_tasks
from repro.workloads import WORKLOADS

#: Current on-disk schema of BENCH_core.json.
SCHEMA_VERSION = 1

#: Default capture period; small enough that the mean warm restore point
#: sits within interval/2 cycles of the injection point.
DEFAULT_INTERVAL = 25


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark golden-run and injection throughput.",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=8,
        help="injections per (benchmark, bug model) pair [8]",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input-size scale factor [1.0]",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign master seed [1]"
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=DEFAULT_INTERVAL,
        metavar="K",
        help=f"warm-start snapshot period in cycles [{DEFAULT_INTERVAL}]",
    )
    parser.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated benchmark names, or 'all'",
    )
    parser.add_argument(
        "--differential",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "measure the differential executor (forecast + convergence-"
            "terminated suffixes) alongside cold/warm; same flag as "
            "repro campaign (--no-differential to skip those passes) [on]"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "after the timed passes, replay the fastest pass once more "
            "with per-stage wall-time attribution and append the bucket "
            "totals as stage_profile (the profiled pass is never part of "
            "the headline timings)"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_core.json",
        metavar="PATH",
        help="JSON trajectory file to append to [BENCH_core.json]",
    )
    return parser.parse_args(argv)


def environment_provenance() -> Dict[str, object]:
    """Where this entry's numbers came from: interpreter, host, commit.

    Perf trajectories are only comparable within one environment; every
    entry records enough provenance to partition the trajectory when the
    machine or interpreter changes underneath it.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        commit = None
    return {
        "python_implementation": platform.python_implementation(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_commit": commit,
    }


def _time_golden(program, config: Optional[CoreConfig]) -> Dict[str, object]:
    core = OoOCore(program, config=config)
    started = time.perf_counter()
    result = core.run()
    wall = time.perf_counter() - started
    return {
        "golden_cycles": result.cycles,
        "golden_wall_s": wall,
        "golden_cycles_per_s": result.cycles / wall if wall > 0 else 0.0,
    }


def bench_benchmark(
    name: str,
    program,
    runs_per_model: int,
    seed: int,
    interval: int,
    config: Optional[CoreConfig] = None,
    differential: bool = True,
    profile: Optional[Dict[str, int]] = None,
) -> Dict[str, object]:
    """Benchmark one workload: golden speed + cold vs warm injections.

    With ``differential`` the forecast-and-converge executor is measured
    as a third pass (and asserted bit-identical to cold). With a
    ``profile`` accumulator, the fastest measured pass is replayed once
    more under per-stage wall-time attribution; the replay is asserted
    result-identical to the cold pass and is never part of the timed
    columns.
    """
    entry = _time_golden(program, config)

    started = time.perf_counter()
    provider = SnapshotProvider(program, interval, config=config)
    entry["provider_wall_s"] = time.perf_counter() - started
    entry["provider_snapshots"] = provider.count
    golden = provider.golden

    tasks = generate_tasks([name], runs_per_model, seed=seed)

    started = time.perf_counter()
    cold = [execute_task(t, program, golden, config) for t in tasks]
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = [
        execute_task(t, program, golden, config, snapshots=provider)
        for t in tasks
    ]
    warm_wall = time.perf_counter() - started

    if cold != warm:  # timing fields are compare=False by design
        raise AssertionError(
            f"{name}: warm-started results differ from cold results"
        )

    diff_provider = None
    if differential:
        started = time.perf_counter()
        diff_provider = SnapshotProvider(
            program, interval, config=config, differential=True
        )
        diff_provider_wall = time.perf_counter() - started

        started = time.perf_counter()
        diff = [
            execute_task(
                t, program, golden, config,
                snapshots=diff_provider, differential=True,
            )
            for t in tasks
        ]
        diff_wall = time.perf_counter() - started

        if cold != diff:
            raise AssertionError(
                f"{name}: differential results differ from cold results"
            )

    injections = len(tasks)
    entry["injections"] = injections
    entry["cold_wall_s"] = cold_wall
    entry["cold_inj_per_s"] = injections / cold_wall if cold_wall > 0 else 0.0
    entry["warm_wall_s"] = warm_wall
    entry["warm_inj_per_s"] = injections / warm_wall if warm_wall > 0 else 0.0
    entry["speedup"] = cold_wall / warm_wall if warm_wall > 0 else 0.0
    entry["warm_cycles_skipped"] = sum(
        r.warm_start_cycles_skipped for r in warm
    )
    if differential:
        entry["diff_provider_wall_s"] = diff_provider_wall
        entry["diff_wall_s"] = diff_wall
        entry["diff_inj_per_s"] = (
            injections / diff_wall if diff_wall > 0 else 0.0
        )
        entry["diff_speedup"] = (
            cold_wall / diff_wall if diff_wall > 0 else 0.0
        )
        entry["diff_early_terminated"] = sum(
            1 for r in diff if r.early_terminated_cycle is not None
        )
    if profile is not None:
        # Dedicated attribution replay of the fastest measured pass. The
        # profiled cores pay two perf_counter_ns calls per stage, so this
        # pass is deliberately outside every timed column; asserting its
        # results against the cold pass keeps the instrumentation honest.
        accumulator = enable_stage_profiling()
        try:
            profiled = [
                execute_task(
                    t, program, golden, config,
                    snapshots=(
                        diff_provider if differential else provider
                    ),
                    differential=differential,
                )
                for t in tasks
            ]
        finally:
            stage = dict(accumulator)
            disable_stage_profiling()
        if cold != profiled:
            raise AssertionError(
                f"{name}: profiled results differ from cold results"
            )
        for bucket, value in stage.items():
            profile[bucket] = profile.get(bucket, 0) + value
    return entry


def append_entry(path: str, entry: Dict[str, object]) -> None:
    """Append one run's entry to the trajectory file, creating it if new."""
    data = {"schema": SCHEMA_VERSION, "entries": []}
    if os.path.exists(path):
        with open(path) as handle:
            data = json.load(handle)
        if data.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"{path}: unsupported schema {data.get('schema')!r}"
            )
    data["entries"].append(entry)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    if args.snapshot_interval < 1:
        print(
            f"--snapshot-interval must be >= 1, got {args.snapshot_interval}",
            file=sys.stderr,
        )
        return 2
    if args.benchmarks == "all":
        names = list(WORKLOADS)
    else:
        names = [n.strip() for n in args.benchmarks.split(",")]
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
            return 2

    profile: Optional[Dict[str, int]] = {} if args.profile else None
    per_benchmark: Dict[str, Dict[str, object]] = {}
    for name in names:
        program = WORKLOADS[name](scale=args.scale)
        per_benchmark[name] = bench_benchmark(
            name, program, args.runs, args.seed, args.snapshot_interval,
            differential=args.differential, profile=profile,
        )
        b = per_benchmark[name]
        diff_cols = (
            f"diff {b['diff_inj_per_s']:6.2f} inj/s | "
            f"speedup {b['speedup']:.2f}x/{b['diff_speedup']:.2f}x "
            f"({b['diff_early_terminated']}/{b['injections']} early, "
            if args.differential
            else f"speedup {b['speedup']:.2f}x ("
        )
        print(
            f"{name:>14}: golden {b['golden_cycles_per_s']:>9.0f} cyc/s | "
            f"cold {b['cold_inj_per_s']:6.2f} inj/s | "
            f"warm {b['warm_inj_per_s']:6.2f} inj/s | "
            + diff_cols
            + f"provider {b['provider_wall_s']:.2f}s, "
            f"{b['provider_snapshots']} snaps)",
            file=sys.stderr,
        )

    total_inj = sum(b["injections"] for b in per_benchmark.values())
    cold_wall = sum(b["cold_wall_s"] for b in per_benchmark.values())
    warm_wall = sum(b["warm_wall_s"] for b in per_benchmark.values())
    aggregate = {
        "injections": total_inj,
        "cold_wall_s": cold_wall,
        "cold_inj_per_s": total_inj / cold_wall if cold_wall > 0 else 0.0,
        "warm_wall_s": warm_wall,
        "warm_inj_per_s": total_inj / warm_wall if warm_wall > 0 else 0.0,
        "speedup": cold_wall / warm_wall if warm_wall > 0 else 0.0,
    }
    if args.differential:
        diff_wall = sum(b["diff_wall_s"] for b in per_benchmark.values())
        aggregate["diff_wall_s"] = diff_wall
        aggregate["diff_inj_per_s"] = (
            total_inj / diff_wall if diff_wall > 0 else 0.0
        )
        aggregate["diff_speedup"] = (
            cold_wall / diff_wall if diff_wall > 0 else 0.0
        )
    entry = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "seed": args.seed,
        "scale": args.scale,
        "runs_per_model": args.runs,
        "snapshot_interval": args.snapshot_interval,
        "differential": args.differential,
        "environment": environment_provenance(),
        "benchmarks": per_benchmark,
        "aggregate": aggregate,
    }
    if profile is not None:
        cycles = profile.pop("cycles", 0)
        entry["stage_profile"] = {
            "buckets_ns": profile,
            "profiled_cycles": cycles,
            "pass": "differential" if args.differential else "warm",
        }
    append_entry(args.output, entry)
    print(json.dumps(entry, indent=2, sort_keys=True))
    tail = (
        f"warm {aggregate['speedup']:.2f}x, "
        f"differential {aggregate['diff_speedup']:.2f}x "
        if args.differential
        else f"warm {aggregate['speedup']:.2f}x "
    )
    print(
        f"aggregate speedup: {tail}"
        f"({total_inj} injections; appended to {args.output})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
