"""Table II formatting and the Section VI.B whole-core estimate."""

from __future__ import annotations

from typing import Iterable, List

from repro.rtl.rrs_design import DesignPoint, PAPER_TABLE_II, sweep_widths

#: Section VI.B: "renaming taking ~4% of the real estate" of a 2-way OoO
#: core with a merged register file at 45 nm.
RRS_CORE_AREA_FRACTION = 0.04


def format_table_ii(points: Iterable[DesignPoint]) -> List[str]:
    """Render the Table II sweep, model vs paper, one line per width."""
    lines = [
        "Table II -- area and energy, baseline vs IDLD "
        "(model | paper overheads in parentheses)",
        f"{'Ports':>5} {'Base um^2':>10} {'Base pJ':>8} "
        f"{'IDLD um^2':>10} {'A-ovh':>7} {'(paper)':>8} "
        f"{'IDLD pJ':>8} {'E-ovh':>7} {'(paper)':>8}",
    ]
    for p in points:
        paper = PAPER_TABLE_II.get(p.width)
        paper_area = f"({paper[2] / paper[0] - 1:.0%})" if paper else ""
        paper_energy = f"({paper[3] / paper[1] - 1:.0%})" if paper else ""
        lines.append(
            f"{p.width:>5} {p.base_area_um2:>10,.0f} {p.base_energy_pj:>8.2f} "
            f"{p.idld_area_um2:>10,.0f} {p.area_overhead:>6.1%} {paper_area:>8} "
            f"{p.idld_energy_pj:>8.2f} {p.energy_overhead:>6.1%} {paper_energy:>8}"
        )
    return lines


def whole_core_overhead(width: int = 2) -> float:
    """Section VI.B's estimate of IDLD's whole-core area contribution.

    "Given our design increases by 3% the area of a 2-way RRS at 45nm, and
    RRS corresponds to 4% of the core area, then 4% x 3% = 0.12%."
    """
    from repro.rtl.rrs_design import evaluate_width

    point = evaluate_width(width)
    return RRS_CORE_AREA_FRACTION * point.area_overhead


def table_ii_report() -> str:
    """The complete Table II reproduction as a printable string."""
    lines = format_table_ii(sweep_widths())
    lines.append(
        f"Whole-core estimate (2-way): IDLD adds "
        f"{whole_core_overhead(2):.2%} of core area (paper: ~0.12%)"
    )
    return "\n".join(lines)
