"""45 nm standard-cell library constants.

The paper synthesizes its SystemVerilog RRS to "a commercial 45 nm
standard-cell library under worst-case conditions (1.1 V, 125 C)" and
reports post-place-and-route area and energy (Table II). We substitute a
structural cost model: the RRS is described as an inventory of cells
(flip-flops with clock gating, mux trees for read ports, decoders for
write ports, comparators and priority logic for the rename group function,
XOR trees for IDLD) and area/energy roll up from per-cell constants.

The constants below are representative 45 nm planar values (area in um^2,
energy in pJ per activation at 1.1 V, worst case); they put the model in
the same order of magnitude as the paper's numbers, but the reproduction
target is the *relative* baseline-vs-IDLD overhead and its scaling with
rename width, per Section VI.B ("the key here is not the absolute values
... but the relative difference").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Cell:
    """One library cell: silicon area and switching energy."""

    area_um2: float
    energy_pj: float


#: Representative 45 nm worst-case cell constants.
LIBRARY = {
    # Storage: D flip-flop including its share of the clock-gating latch
    # amortized over a standard-cell-memory row (the [59]-style SCM the
    # paper uses in place of SRAM).
    "dff": Cell(area_um2=2.1, energy_pj=0.0016),
    "clock_gate": Cell(area_um2=4.0, energy_pj=0.0009),
    # Combinational cells.
    "mux2": Cell(area_um2=1.7, energy_pj=0.0011),
    "xor2": Cell(area_um2=1.9, energy_pj=0.0014),
    "and2": Cell(area_um2=0.9, energy_pj=0.0006),
    "or2": Cell(area_um2=0.9, energy_pj=0.0006),
    "inv": Cell(area_um2=0.45, energy_pj=0.0003),
    "full_adder": Cell(area_um2=4.6, energy_pj=0.0028),
}

#: Interconnect/placement overhead applied on top of raw cell area; post
#: place-and-route designs never pack cells at 100% density.
PLACEMENT_OVERHEAD = 1.35

#: Fraction of a clock-gated array's storage that toggles on an average
#: active cycle (drives the energy model's background clock term).
CLOCK_ACTIVITY = 0.08
