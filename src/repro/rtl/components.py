"""Structural macros the RRS netlist is assembled from.

Each macro reports ``area_um2`` (cells x library area, before placement
overhead) and ``energy_pj`` (per *average active cycle*, given an activity
figure supplied by the design). The port models follow standard-cell-
memory practice: a read port is a per-bit mux tree over the entries, a
write port is an address decoder plus per-entry clock-gate enables, and a
FIFO port replaces the decoder with a pointer register + increment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List

from repro.rtl.cells import CLOCK_ACTIVITY, LIBRARY


def _log2ceil(value: int) -> int:
    return max(1, math.ceil(math.log2(max(2, value))))


@dataclass
class Macro:
    """Base: a named component with cell counts."""

    name: str
    cells: Dict[str, float] = field(default_factory=dict)
    #: average activations of this macro per cycle (scales dynamic energy)
    activity: float = 1.0

    def add(self, cell: str, count: float) -> None:
        self.cells[cell] = self.cells.get(cell, 0.0) + count

    @property
    def area_um2(self) -> float:
        return sum(LIBRARY[c].area_um2 * n for c, n in self.cells.items())

    @property
    def energy_pj(self) -> float:
        return self.activity * sum(
            LIBRARY[c].energy_pj * n for c, n in self.cells.items()
        )


def flop_array(name: str, entries: int, bits: int, activity: float) -> Macro:
    """Clock-gated standard-cell memory storage (no ports)."""
    macro = Macro(name, activity=activity)
    macro.add("dff", entries * bits)
    # One clock gate per entry row.
    macro.add("clock_gate", entries)
    return macro


def read_port(name: str, entries: int, bits: int, activity: float) -> Macro:
    """Random-access read port: per-bit mux tree over all entries."""
    macro = Macro(name, activity=activity)
    macro.add("mux2", (entries - 1) * bits)
    return macro


def write_port(name: str, entries: int, bits: int, activity: float) -> Macro:
    """Random-access write port: decoder + per-entry enable + data fanout."""
    macro = Macro(name, activity=activity)
    address_bits = _log2ceil(entries)
    macro.add("and2", entries * address_bits / 2)  # decoder
    macro.add("and2", entries)                     # enables
    macro.add("inv", entries * bits / 4)           # data fanout buffering
    return macro


def fifo_port(name: str, entries: int, bits: int, activity: float) -> Macro:
    """FIFO read or write port: pointer register + incrementer + the
    pointer-addressed access path (cheaper than random access)."""
    macro = Macro(name, activity=activity)
    pointer_bits = _log2ceil(entries)
    macro.add("dff", pointer_bits)
    macro.add("full_adder", pointer_bits)
    # Pointer-addressed access path, shared-bus style.
    macro.add("mux2", entries * bits / 8)
    macro.add("and2", entries / 2)
    return macro


def comparator(name: str, bits: int, activity: float) -> Macro:
    """Equality comparator (rename same-Ldst detection, bypass checks)."""
    macro = Macro(name, activity=activity)
    macro.add("xor2", bits)
    macro.add("or2", bits - 1)
    return macro


def priority_mux(name: str, ways: int, bits: int, activity: float) -> Macro:
    """Priority selection network (which allocation updates the RAT)."""
    macro = Macro(name, activity=activity)
    macro.add("mux2", (ways - 1) * bits)
    macro.add("and2", ways * 2)
    return macro


def xor_tree(name: str, inputs: int, bits: int, activity: float) -> Macro:
    """The IDLD folding tree: ``inputs`` extended PdstIDs XORed together.

    Trees wider than 12 inputs get a pipeline register stage (the synthesis
    flow retimes them to stay off the critical path), which is what makes
    the IDLD area overhead step up between 2-wide and 4-wide renaming.
    """
    macro = Macro(name, activity=activity)
    if inputs < 1:
        return macro
    macro.add("xor2", max(0, inputs - 1) * bits)
    if inputs > 12:
        macro.add("dff", bits * 2)  # retiming stage
        macro.add("clock_gate", 2)
    return macro


def zero_check(name: str, bits: int, activity: float) -> Macro:
    """The final ==0 comparison on the folded code."""
    macro = Macro(name, activity=activity)
    macro.add("or2", bits - 1)
    macro.add("inv", 1)
    return macro


@dataclass
class Netlist:
    """A bag of macros with roll-up reporting."""

    name: str
    macros: List[Macro] = field(default_factory=list)

    def add(self, macro: Macro) -> None:
        self.macros.append(macro)

    def extend(self, macros: List[Macro]) -> None:
        self.macros.extend(macros)

    def area_um2(self, placement_overhead: float = 1.35) -> float:
        return placement_overhead * sum(m.area_um2 for m in self.macros)

    def energy_pj(self) -> float:
        # Background clock energy of storage + activity-scaled cell energy.
        energy = 0.0
        for macro in self.macros:
            energy += macro.energy_pj
            dffs = macro.cells.get("dff", 0.0)
            energy += dffs * LIBRARY["dff"].energy_pj * CLOCK_ACTIVITY
        return energy

    def breakdown(self) -> Dict[str, float]:
        """Per-macro area contributions (diagnostics/reporting)."""
        return {m.name: m.area_um2 for m in self.macros}
