"""Structural 45 nm area/energy cost model for Table II."""

from repro.rtl.cells import Cell, LIBRARY, PLACEMENT_OVERHEAD
from repro.rtl.components import (
    Macro,
    Netlist,
    comparator,
    fifo_port,
    flop_array,
    priority_mux,
    read_port,
    write_port,
    xor_tree,
    zero_check,
)
from repro.rtl.report import (
    RRS_CORE_AREA_FRACTION,
    format_table_ii,
    table_ii_report,
    whole_core_overhead,
)
from repro.rtl.rrs_design import (
    DesignPoint,
    PAPER_TABLE_II,
    baseline_rrs,
    evaluate_width,
    idld_extension,
    port_sharing,
    sweep_widths,
)

__all__ = [
    "Cell",
    "DesignPoint",
    "LIBRARY",
    "Macro",
    "Netlist",
    "PAPER_TABLE_II",
    "PLACEMENT_OVERHEAD",
    "RRS_CORE_AREA_FRACTION",
    "baseline_rrs",
    "comparator",
    "evaluate_width",
    "fifo_port",
    "flop_array",
    "format_table_ii",
    "idld_extension",
    "port_sharing",
    "priority_mux",
    "read_port",
    "sweep_widths",
    "table_ii_report",
    "whole_core_overhead",
    "write_port",
    "xor_tree",
    "zero_check",
]
