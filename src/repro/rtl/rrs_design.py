"""Structural netlists of the baseline RRS and the IDLD-extended RRS.

Geometry follows Section VI.A exactly: 128 physical registers (sizing the
FL and RHT at 128 entries), a 96-entry ROB, a 32-entry RAT and 4 RAT
checkpoints, swept over 1/2/4/6/8-wide renaming. Only the RRS is modeled
(the paper's Table II numbers are RRS-only), and, like the paper, the
array geometry does not scale with width -- only the port/logic fabric
does ("while we increase the width of the core, we do not scale the number
of Pdsts and the size of the RRS structures").

Calibration note (see DESIGN.md): cell counts capture the structures the
paper enumerates; two lumped constants -- the port-fabric sharing curve and
the IDLD integration (bus tapping / tree replication / retiming) costs --
stand in for place-and-route effects that are not cell-countable. They are
calibrated once against Table II's *relative* numbers and never touched by
the benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import CoreConfig, paper_rrs_config
from repro.isa.instructions import NUM_LOGICAL_REGS
from repro.rtl.cells import LIBRARY, PLACEMENT_OVERHEAD
from repro.rtl.components import (
    Macro,
    Netlist,
    comparator,
    fifo_port,
    flop_array,
    priority_mux,
    read_port,
    write_port,
    xor_tree,
    zero_check,
)

#: Fraction of rename slots carrying a destination on an average cycle.
DEST_DENSITY = 0.7

#: Port-fabric sharing curve: wide fabrics share decoders, buses and
#: placement rows, so the W-port fabric costs eff(W) single-port
#: equivalents, saturating like the paper's baseline column.
PORT_SHARING_TAU = 2.2

#: Lumped bus/driver/routing multiplier on every SCM port macro beyond raw
#: cells; calibrated once against Table II's baseline column.
PORT_FABRIC_FACTOR = 6.5

#: IDLD integration costs (lumped wiring proxies, per extended-code bit):
#: tapping one port data bus into a folding tree, and replicating/retiming
#: the trees once the rename fabric is wide enough (W >= 3) that a single
#: tree cannot close timing off the critical path.
TAP_AREA_UM2 = 11.0       # placed um^2 per tapped code bit (W^0.6 sharing)
TAP_ENERGY_PJ = 0.0040    # pJ per tapped code bit per rename slot per cycle
REPLICATION_AREA_UM2 = 6045.0   # placed um^2, one-time retiming/replication step
REPLICATION_ENERGY_PJ = 0.04    # pJ per cycle for the replicated trees
REPLICATION_WIDTH = 3

#: Global dynamic-energy calibration of the baseline roll-up against the
#: paper's 45 nm flow (applied once in :func:`evaluate_width`).
ENERGY_CALIBRATION = 0.4535


def port_sharing(width: int) -> float:
    """Effective single-port equivalents of a ``width``-port fabric."""
    raw = 1.0 - math.exp(-width / PORT_SHARING_TAU)
    unit = 1.0 - math.exp(-1.0 / PORT_SHARING_TAU)
    return raw / unit


def _ldst_bits() -> int:
    return max(1, math.ceil(math.log2(NUM_LOGICAL_REGS)))


def _lump(name: str, area_um2: float, energy_pj: float) -> Macro:
    """A lumped (non-cell-countable) wiring/integration contribution."""
    macro = Macro(name)
    # Express the lump in inverter-equivalents so Netlist roll-up works.
    macro.add("inv", area_um2 / LIBRARY["inv"].area_um2)
    macro.activity = (
        energy_pj / (LIBRARY["inv"].energy_pj * (area_um2 / LIBRARY["inv"].area_um2))
        if area_um2 > 0
        else 0.0
    )
    return macro


def baseline_rrs(width: int, config: Optional[CoreConfig] = None) -> Netlist:
    """The baseline (unprotected) RRS netlist at a given rename width."""
    cfg = config or paper_rrs_config(width)
    pdst_bits = cfg.pdst_bits
    ldst_bits = _ldst_bits()
    net = Netlist(f"rrs-baseline-{width}w")
    eff = port_sharing(width)
    # Storage toggling grows with the saturating fabric curve; the scaled
    # port macros keep unit activity because their *cell counts* already
    # carry the eff(W) factor (energy would otherwise scale as eff^2).
    act = DEST_DENSITY * eff
    port_act = DEST_DENSITY

    # ---- storage (width-independent) ----
    net.add(flop_array("FL.storage", cfg.free_list_entries, pdst_bits, act))
    net.add(flop_array("RAT.storage", NUM_LOGICAL_REGS, pdst_bits, act))
    net.add(flop_array("ROB.pdst_storage", cfg.rob_entries, pdst_bits + 1, act))
    net.add(
        flop_array("RHT.storage", cfg.rht_entries, pdst_bits + ldst_bits + 1, act)
    )
    net.add(
        flop_array(
            "CKPT.storage",
            cfg.num_checkpoints,
            NUM_LOGICAL_REGS * pdst_bits + 16,
            0.1,
        )
    )

    # ---- width-scaled port fabric and rename logic ----
    scaled: List[Macro] = []
    scaled.append(fifo_port("FL.read_ports", cfg.free_list_entries, pdst_bits, port_act))
    scaled.append(fifo_port("FL.write_ports", cfg.free_list_entries, pdst_bits, port_act))
    scaled.append(fifo_port("ROB.write_ports", cfg.rob_entries, pdst_bits + 1, port_act))
    scaled.append(fifo_port("ROB.read_ports", cfg.rob_entries, pdst_bits + 1, port_act))
    scaled.append(
        fifo_port("RHT.write_ports", cfg.rht_entries, pdst_bits + ldst_bits + 1, port_act)
    )
    scaled.append(read_port("RAT.src_read", NUM_LOGICAL_REGS, pdst_bits, 2 * port_act))
    scaled.append(read_port("RAT.evict_read", NUM_LOGICAL_REGS, pdst_bits, port_act))
    scaled.append(write_port("RAT.write", NUM_LOGICAL_REGS, pdst_bits, port_act))
    for macro in scaled:
        for cell in macro.cells:
            macro.cells[cell] *= eff * PORT_FABRIC_FACTOR
        net.add(macro)

    # Rename group function: same-Ldst detection + RAT-update selection +
    # intra-group bypass (Section II: "multiplexing circuitry with numerous
    # paths... increase the wider a core gets"). Quadratic in width but
    # directly cell-countable, so it rides outside the lumped port fabric.
    pairs = max(1, width * (width - 1) // 2)
    group = Macro("rename.group_logic", activity=0.9)
    for _ in range(pairs):
        cmp_macro = comparator("", ldst_bits, 0.9)
        for cell, count in cmp_macro.cells.items():
            group.add(cell, count * 2)  # same-Ldst + bypass comparator
    sel = priority_mux("", max(2, width), pdst_bits, port_act)
    for cell, count in sel.cells.items():
        group.add(cell, count)
    net.add(group)

    # ---- width-independent engines ----
    net.add(fifo_port("RHT.pos_walk", cfg.rht_entries, pdst_bits + ldst_bits, 0.1))
    net.add(fifo_port("RHT.neg_walk", cfg.rht_entries, pdst_bits + ldst_bits, 0.1))
    net.add(
        write_port(
            "CKPT.capture",
            cfg.num_checkpoints,
            NUM_LOGICAL_REGS * pdst_bits // 8,
            0.05,
        )
    )
    net.add(
        read_port(
            "CKPT.restore",
            cfg.num_checkpoints,
            NUM_LOGICAL_REGS * pdst_bits // 8,
            0.05,
        )
    )
    return net


def idld_extension(width: int, config: Optional[CoreConfig] = None) -> Netlist:
    """The IDLD hardware added on top of the baseline (Figure 6).

    Per Section V: one XOR register per tracked array (FL, RAT, ROB), each
    ``pdst_bits + 1`` wide (the zero-ID extension), fed by a folding tree
    over that array's per-cycle port traffic; checkpointed RATxor/ROBxor
    copies ("few bits per checkpoint"); the commit-reclaim compensation
    taps; and the final ==0 check. Integration costs (bus taps; tree
    replication + retiming at W >= 3) dominate at wide configurations.
    """
    cfg = config or paper_rrs_config(width)
    code_bits = cfg.pdst_bits + 1
    net = Netlist(f"idld-extension-{width}w")
    act = DEST_DENSITY

    # XOR registers and folding trees (FL: W pops + W pushes; RAT: W
    # evictions + W inserts; ROB: W field writes + W reclaim reads).
    for array in ("FL", "RAT", "ROB"):
        net.add(flop_array(f"IDLD.{array}xor", 1, code_bits, act))
        net.add(xor_tree(f"IDLD.{array}_tree", 2 * width + 1, code_bits, act))

    # Checkpointed XOR state + per-slot commit compensation fold.
    net.add(flop_array("IDLD.ckpt_xors", cfg.num_checkpoints, 2 * code_bits, 0.3))
    net.add(
        xor_tree("IDLD.ckpt_compensate", cfg.num_checkpoints + 1, code_bits, 0.5)
    )

    # Final invariance evaluation.
    net.add(xor_tree("IDLD.final_fold", 3, code_bits, 1.0))
    net.add(zero_check("IDLD.zero_check", code_bits, 1.0))

    # Integration: every tracked port's data bus is tapped into a tree;
    # the tap wiring shares routing tracks sublinearly with width.
    base_taps = 6 * code_bits  # 3 arrays x 2 port events, per width unit
    tap_area = base_taps * TAP_AREA_UM2 * (width ** 0.6)
    tap_energy = base_taps * TAP_ENERGY_PJ * width * DEST_DENSITY
    net.add(_lump("IDLD.bus_taps", tap_area / PLACEMENT_OVERHEAD, tap_energy))
    # Tree replication + retiming: a one-time step once the fabric is too
    # wide for a single off-critical-path tree (between 2- and 4-wide in
    # the paper's flow).
    if width >= REPLICATION_WIDTH:
        net.add(
            _lump(
                "IDLD.tree_replication",
                REPLICATION_AREA_UM2 / PLACEMENT_OVERHEAD,
                REPLICATION_ENERGY_PJ,
            )
        )
    return net


@dataclass
class DesignPoint:
    """Area/energy of baseline and IDLD designs at one rename width."""

    width: int
    base_area_um2: float
    base_energy_pj: float
    idld_area_um2: float
    idld_energy_pj: float

    @property
    def area_overhead(self) -> float:
        return self.idld_area_um2 / self.base_area_um2 - 1.0

    @property
    def energy_overhead(self) -> float:
        return self.idld_energy_pj / self.base_energy_pj - 1.0


def evaluate_width(width: int, config: Optional[CoreConfig] = None) -> DesignPoint:
    """Synthesize (structurally) both designs at one width."""
    base = baseline_rrs(width, config)
    extension = idld_extension(width, config)
    base_area = base.area_um2()
    base_energy = base.energy_pj() * ENERGY_CALIBRATION
    return DesignPoint(
        width=width,
        base_area_um2=base_area,
        base_energy_pj=base_energy,
        idld_area_um2=base_area + extension.area_um2(),
        idld_energy_pj=base_energy + extension.energy_pj(),
    )


def sweep_widths(widths=(1, 2, 4, 6, 8)) -> List[DesignPoint]:
    """The Table II sweep."""
    return [evaluate_width(w) for w in widths]


#: Table II reference values: width -> (base area, base energy, IDLD area,
#: IDLD energy) as printed in the paper.
PAPER_TABLE_II = {
    1: (36_891, 6.04, 37_891, 6.28),
    2: (53_441, 7.64, 54_903, 8.38),
    4: (65_480, 11.14, 73_701, 12.29),
    6: (73_001, 13.12, 80_258, 14.29),
    8: (75_998, 13.71, 84_377, 15.38),
}
