"""The differential oracle: one program, three independent referees.

A fuzz input passes only when all three agree the run was clean:

1. **Architectural equivalence** — the cycle-level core's OUT stream
   matches the functional reference interpreter
   (:func:`repro.isa.semantics.reference_run`), and the run halts without
   a crash/deadlock.
2. **Closed-loop census** — at halt, every PdstID lives in exactly one of
   {FL, RAT, ROB} (the paper's Section V.A invariant).
3. **Detector silence** — IDLD, the bit-vector scheme and the counter
   scheme all stay quiet for the whole run.

On a bug-free simulator all three hold for every halting program, so any
failure is a real finding about the core/checker pair. Tests (and checked-
in failing artifacts) pass a :class:`~repro.bugs.models.BugSpec` to arm a
known bug, which must flip the oracle — that closes the loop on the oracle
itself.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bugs.injector import arm
from repro.bugs.models import BugSpec
from repro.core.config import CoreConfig
from repro.core.cpu import OoOCore
from repro.core.errors import SimulationError
from repro.core.rrs.signals import SignalFabric
from repro.fuzz.coverage import CoverageProbe, log_bucket
from repro.idld.bitvector import BitVectorScheme
from repro.idld.checker import IDLDChecker
from repro.idld.counter import CounterScheme
from repro.isa.program import Program
from repro.isa.semantics import reference_run

#: Simulation budget for one fuzz input; generated programs commit a few
#: thousand instructions, so this only binds when something is wrong (and
#: the deadlock watchdog usually fires first).
DEFAULT_MAX_CYCLES = 250_000


def output_digest(output) -> str:
    """Stable digest of an OUT stream (recorded in artifacts)."""
    payload = json.dumps(list(output)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class OracleReport:
    """Verdict + coverage summary of one oracle evaluation.

    ``failures`` is the canonical, order-stable tuple of everything that
    went wrong (empty iff ``ok``); artifacts record it and replays compare
    against it verbatim.
    """

    ok: bool
    failures: Tuple[str, ...]
    coverage: Tuple[str, ...]
    cycles: int
    committed: int
    output_sha: str
    bug_activated: Optional[int] = None

    @property
    def verdict(self) -> str:
        return "pass" if self.ok else "+".join(self.failures)


def evaluate(
    program: Program,
    config: Optional[CoreConfig] = None,
    bug: Optional[BugSpec] = None,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    deadline: Optional[float] = None,
) -> OracleReport:
    """Run ``program`` through the triple oracle.

    Args:
        program: A halting program (genome-built or hand-written).
        config: Core configuration (paper defaults when None).
        bug: Optional armed bug — used by tests and failing repro
            artifacts to validate that the oracle (still) catches it.
        max_cycles: Simulation budget.
        deadline: Harness wall-clock budget (absolute ``time.monotonic()``);
            expiry raises :class:`~repro.core.errors.DeadlineExceeded`
            (deliberately *not* caught here — it is a resource-policy
            event, never an oracle verdict).

    Returns:
        The :class:`OracleReport`; ``coverage`` merges the RRS probe's
        buckets with program-level buckets (cycles, commits, OUT length).
    """
    expected_output, _, ref_steps = reference_run(program)
    fabric = SignalFabric()
    armed = arm(bug, fabric) if bug is not None else None
    probe = CoverageProbe()
    idld = IDLDChecker()
    bv = BitVectorScheme()
    counter = CounterScheme()
    core = OoOCore(
        program,
        config=config,
        observers=[idld, bv, counter, probe],
        fabric=fabric,
    )
    failures = []
    error: Optional[SimulationError] = None
    try:
        result = core.run(max_cycles=max_cycles, deadline=deadline)
    except SimulationError as exc:
        error = exc
        result = core.result()

    if error is not None:
        failures.append(f"sim:{type(error).__name__}")
    elif not result.halted:
        failures.append("timeout")
    if result.output != expected_output:
        failures.append("output_mismatch")
    if error is None and result.halted and not core.census_is_clean():
        failures.append("census_unclean")
    if idld.detected:
        failures.append("idld_detected")
    if bv.detected:
        failures.append("bv_detected")
    if counter.detected:
        failures.append("counter_detected")

    coverage = probe.buckets()
    coverage.add(f"cycles:{log_bucket(result.cycles)}")
    coverage.add(f"commits:{log_bucket(result.committed)}")
    coverage.add(f"out_len:{log_bucket(len(result.output))}")
    coverage.add(f"ref_steps:{log_bucket(ref_steps)}")

    return OracleReport(
        ok=not failures,
        failures=tuple(failures),
        coverage=tuple(sorted(coverage)),
        cycles=result.cycles,
        committed=result.committed,
        output_sha=output_digest(result.output),
        bug_activated=armed.fired_cycle if armed is not None else None,
    )
