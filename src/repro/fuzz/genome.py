"""Mutable program genomes for the differential fuzzer.

:func:`repro.workloads.generator.random_program` draws a halting program
directly from an RNG; that is perfect for uniform sweeps but opaque to a
mutational fuzzer, which needs to *edit* a program while preserving the
always-halts guarantee. A :class:`ProgramGenome` is the same program shape
— counted loop blocks over random ALU/memory operations with a
re-convergent data-dependent skip — held as data, so operators can splice
blocks between parents, replace/insert/delete single operations, or tweak
loop trip counts, and every offspring still terminates by construction
(loops are counted, never data-controlled).

Genomes serialize to plain JSON dicts (for repro artifacts) and build into
:class:`~repro.isa.program.Program` deterministically: the same genome
always yields the same instruction sequence.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Dict

from repro.isa.program import Program, ProgramBuilder

#: Register-register ALU builder methods the genome draws from.
ALU_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "slt", "sltu")
#: Register-immediate ALU builder methods.
IMM_OPS = ("addi", "andi", "ori", "xori")
#: Operation kinds a gene can carry.
OP_KINDS = ("alu", "imm", "load", "store", "zero_li", "zero_xor")

#: Hard bounds that keep every genome well-formed and quick to simulate.
MAX_BLOCKS = 12
MAX_OPS_PER_BLOCK = 24
MAX_LOOP_ITERS = 16
MIN_DATA_WORDS = 4
MAX_DATA_WORDS = 64

#: Registers the genome's dataflow lives in (r8/r20/r21/r31 are reserved
#: for the skip test, data pointer, loop counter and the zero anchor).
_GP_LO, _GP_HI = 1, 7


@dataclass(frozen=True)
class OpGene:
    """One loop-body operation.

    ``kind`` selects the template; unused fields are simply ignored (a
    mutation may flip the kind and reuse whatever operands are there).
    ``zero_li``/``zero_xor`` are the Section V.E zero idioms — eliminable
    when the core's zero-idiom optimization is on, ordinary instructions
    otherwise.
    """

    kind: str
    op: str = "add"
    rd: int = 1
    rs1: int = 1
    rs2: int = 1
    imm: int = 0
    offset: int = 0


@dataclass(frozen=True)
class BlockGene:
    """One counted loop block with its re-convergent skip."""

    iters: int
    ops: tuple  # of OpGene
    test_reg: int = 1
    taint_rd: int = 1
    taint_rs: int = 1
    out_reg: int = 1


@dataclass(frozen=True)
class ProgramGenome:
    """A full program: init values, a data region, and loop blocks."""

    init_regs: tuple  # 7 values seeding r1..r7
    data: tuple  # word values of the scratch region
    blocks: tuple  # of BlockGene
    label: str = "fuzz"


# -- construction -----------------------------------------------------------


def _random_op(rng: random.Random, data_words: int) -> OpGene:
    kind = rng.random()
    rd = rng.randint(_GP_LO, _GP_HI)
    rs1 = rng.randint(_GP_LO, _GP_HI)
    rs2 = rng.randint(_GP_LO, _GP_HI)
    if kind < 0.05:
        zkind = "zero_li" if rng.random() < 0.5 else "zero_xor"
        return OpGene(zkind, rd=rd, rs1=rs1)
    if kind < 0.55:
        return OpGene("alu", op=rng.choice(ALU_OPS), rd=rd, rs1=rs1, rs2=rs2)
    if kind < 0.70:
        return OpGene(
            "imm", op=rng.choice(IMM_OPS), rd=rd, rs1=rs1,
            imm=rng.getrandbits(10),
        )
    if kind < 0.85:
        return OpGene("load", rd=rd, offset=rng.randrange(data_words))
    return OpGene("store", rs2=rs2, offset=rng.randrange(data_words))


def _random_block(
    rng: random.Random, block_len: int, max_iters: int, data_words: int
) -> BlockGene:
    ops = tuple(
        _random_op(rng, data_words) for _ in range(rng.randint(1, block_len))
    )
    return BlockGene(
        iters=rng.randint(1, max_iters),
        ops=ops,
        test_reg=rng.randint(_GP_LO, _GP_HI),
        taint_rd=rng.randint(_GP_LO, _GP_HI),
        taint_rs=rng.randint(_GP_LO, _GP_HI),
        out_reg=rng.randint(_GP_LO, _GP_HI),
    )


def seed_genome(
    rng: random.Random,
    max_blocks: int = 6,
    block_len: int = 8,
    max_iters: int = 10,
    data_words: int = 32,
) -> ProgramGenome:
    """Draw a fresh genome (the fuzzer's non-mutational input source)."""
    data_words = max(MIN_DATA_WORDS, min(data_words, MAX_DATA_WORDS))
    blocks = tuple(
        _random_block(rng, block_len, max_iters, data_words)
        for _ in range(rng.randint(1, max_blocks))
    )
    return ProgramGenome(
        init_regs=tuple(rng.getrandbits(12) for _ in range(7)),
        data=tuple(rng.getrandbits(16) for _ in range(data_words)),
        blocks=blocks,
    )


# -- program emission -------------------------------------------------------


def build_program(genome: ProgramGenome, name: str = "") -> Program:
    """Deterministically assemble the genome into a halting Program."""
    b = ProgramBuilder(name or genome.label)
    base = 10_000
    data = genome.data or (0,) * MIN_DATA_WORDS
    b.data(base, list(data))
    b.li(31, 0)
    for i, value in enumerate(genome.init_regs[:7]):
        b.li(i + 1, value)
    b.li(20, base)  # data pointer
    for index, block in enumerate(genome.blocks):
        counter = 21
        iters = max(1, min(int(block.iters), MAX_LOOP_ITERS))
        b.li(counter, iters)
        b.label(f"blk{index}")
        for gene in block.ops:
            _emit_op(b, gene, len(data))
        # Data-dependent skip that re-converges immediately.
        skip = f"skip{index}"
        b.andi(8, block.test_reg, 1)
        b.beq(8, 31, skip)
        b.xor(block.taint_rd, block.taint_rs, block.test_reg)
        b.label(skip)
        b.addi(counter, counter, -1)
        b.bne(counter, 31, f"blk{index}")
        b.out(block.out_reg)
    b.halt()
    return b.build()


def _emit_op(b: ProgramBuilder, gene: OpGene, data_words: int) -> None:
    if gene.kind == "alu":
        op = gene.op if gene.op in ALU_OPS else "add"
        getattr(b, op)(gene.rd, gene.rs1, gene.rs2)
    elif gene.kind == "imm":
        op = gene.op if gene.op in IMM_OPS else "addi"
        getattr(b, op)(gene.rd, gene.rs1, gene.imm)
    elif gene.kind == "load":
        b.ld(gene.rd, 20, gene.offset % data_words)
    elif gene.kind == "store":
        b.st(20, gene.rs2, gene.offset % data_words)
    elif gene.kind == "zero_li":
        b.li(gene.rd, 0)
    elif gene.kind == "zero_xor":
        b.xor(gene.rd, gene.rs1, gene.rs1)
    else:
        raise ValueError(f"unknown op kind {gene.kind!r}")


# -- mutation / crossover ---------------------------------------------------


def _with_block(genome: ProgramGenome, index: int, block: BlockGene) -> ProgramGenome:
    blocks = list(genome.blocks)
    blocks[index] = block
    return replace(genome, blocks=tuple(blocks))


def _mutate_replace_op(rng, genome):
    bi = rng.randrange(len(genome.blocks))
    block = genome.blocks[bi]
    ops = list(block.ops)
    ops[rng.randrange(len(ops))] = _random_op(rng, max(1, len(genome.data)))
    return _with_block(genome, bi, replace(block, ops=tuple(ops)))


def _mutate_insert_op(rng, genome):
    bi = rng.randrange(len(genome.blocks))
    block = genome.blocks[bi]
    if len(block.ops) >= MAX_OPS_PER_BLOCK:
        return _mutate_replace_op(rng, genome)
    ops = list(block.ops)
    ops.insert(
        rng.randint(0, len(ops)), _random_op(rng, max(1, len(genome.data)))
    )
    return _with_block(genome, bi, replace(block, ops=tuple(ops)))


def _mutate_delete_op(rng, genome):
    bi = rng.randrange(len(genome.blocks))
    block = genome.blocks[bi]
    if len(block.ops) <= 1:
        return _mutate_replace_op(rng, genome)
    ops = list(block.ops)
    ops.pop(rng.randrange(len(ops)))
    return _with_block(genome, bi, replace(block, ops=tuple(ops)))


def _mutate_iters(rng, genome):
    bi = rng.randrange(len(genome.blocks))
    block = genome.blocks[bi]
    return _with_block(
        genome, bi, replace(block, iters=rng.randint(1, MAX_LOOP_ITERS))
    )


def _mutate_block_regs(rng, genome):
    bi = rng.randrange(len(genome.blocks))
    block = genome.blocks[bi]
    return _with_block(
        genome,
        bi,
        replace(
            block,
            test_reg=rng.randint(_GP_LO, _GP_HI),
            taint_rd=rng.randint(_GP_LO, _GP_HI),
            taint_rs=rng.randint(_GP_LO, _GP_HI),
            out_reg=rng.randint(_GP_LO, _GP_HI),
        ),
    )


def _mutate_dup_block(rng, genome):
    if len(genome.blocks) >= MAX_BLOCKS:
        return _mutate_iters(rng, genome)
    blocks = list(genome.blocks)
    blocks.insert(
        rng.randint(0, len(blocks)), blocks[rng.randrange(len(blocks))]
    )
    return replace(genome, blocks=tuple(blocks))


def _mutate_drop_block(rng, genome):
    if len(genome.blocks) <= 1:
        return _mutate_iters(rng, genome)
    blocks = list(genome.blocks)
    blocks.pop(rng.randrange(len(blocks)))
    return replace(genome, blocks=tuple(blocks))


def _mutate_data(rng, genome):
    if not genome.data:
        return _mutate_init(rng, genome)
    data = list(genome.data)
    data[rng.randrange(len(data))] = rng.getrandbits(16)
    return replace(genome, data=tuple(data))


def _mutate_init(rng, genome):
    init = list(genome.init_regs)
    init[rng.randrange(len(init))] = rng.getrandbits(12)
    return replace(genome, init_regs=tuple(init))


_MUTATORS = (
    _mutate_replace_op,
    _mutate_replace_op,  # weighted: op edits dominate
    _mutate_insert_op,
    _mutate_delete_op,
    _mutate_iters,
    _mutate_block_regs,
    _mutate_dup_block,
    _mutate_drop_block,
    _mutate_data,
    _mutate_init,
)


def mutate(
    rng: random.Random, genome: ProgramGenome, rounds: int = 1
) -> ProgramGenome:
    """Apply ``rounds`` randomly-chosen structural mutations."""
    for _ in range(max(1, rounds)):
        genome = rng.choice(_MUTATORS)(rng, genome)
    return genome


def splice(
    rng: random.Random, left: ProgramGenome, right: ProgramGenome
) -> ProgramGenome:
    """Crossover: a block prefix of ``left`` joined to a suffix of
    ``right``, with init/data inherited from either parent."""
    cut_l = rng.randint(0, len(left.blocks))
    cut_r = rng.randint(0, len(right.blocks))
    blocks = (left.blocks[:cut_l] + right.blocks[cut_r:])[:MAX_BLOCKS]
    if not blocks:
        blocks = (left.blocks + right.blocks)[:1]
    return ProgramGenome(
        init_regs=(left if rng.random() < 0.5 else right).init_regs,
        data=(left if rng.random() < 0.5 else right).data,
        blocks=blocks,
    )


# -- serialization ----------------------------------------------------------


def genome_to_dict(genome: ProgramGenome) -> Dict[str, object]:
    """Plain-JSON representation (lists instead of tuples)."""
    return {
        "label": genome.label,
        "init_regs": list(genome.init_regs),
        "data": list(genome.data),
        "blocks": [
            {
                "iters": block.iters,
                "test_reg": block.test_reg,
                "taint_rd": block.taint_rd,
                "taint_rs": block.taint_rs,
                "out_reg": block.out_reg,
                "ops": [asdict(op) for op in block.ops],
            }
            for block in genome.blocks
        ],
    }


def genome_from_dict(data: Dict[str, object]) -> ProgramGenome:
    blocks = tuple(
        BlockGene(
            iters=entry["iters"],
            ops=tuple(OpGene(**op) for op in entry["ops"]),
            test_reg=entry["test_reg"],
            taint_rd=entry["taint_rd"],
            taint_rs=entry["taint_rs"],
            out_reg=entry["out_reg"],
        )
        for entry in data["blocks"]
    )
    return ProgramGenome(
        init_regs=tuple(data["init_regs"]),
        data=tuple(data["data"]),
        blocks=blocks,
        label=data.get("label", "fuzz"),
    )
