"""The coverage-guided fuzzing campaign driver.

Execution model — generations with a deterministic barrier:

* The driver schedules a fixed-size **batch** of tasks at a time. Every
  task's genome is derived *before* execution from (master seed, global
  execution index) plus the corpus as of the last batch boundary, so the
  schedule is a pure function of the seed and past results.
* Batches execute on the PR-1 :mod:`repro.exec` backends (Serial or
  ProcessPool) through the pluggable-runner hook, so ``--jobs`` changes
  wall-clock only: results are collected per batch and folded into the
  coverage map / corpus **in canonical index order**, making the whole
  campaign bit-identical for any worker count.
* Completed evaluations append to a JSONL checkpoint (same torn-tail
  tolerant format family as campaign checkpoints); ``--resume`` replays
  recorded results through the driver instead of re-simulating them,
  which reconstructs the exact corpus/coverage state deterministically.

Any oracle failure is deduplicated by (failure tuple, coverage signature),
minimized by the greedy shrinker, and written out as a self-contained
repro artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bugs.models import BugSpec
from repro.core.config import CoreConfig
from repro.exec.backends import Backend, ExecutionContext, SerialBackend
from repro.exec.checkpoint import (
    CheckpointError,
    _truncate_torn_tail,
    spec_to_dict,
)
from repro.exec.durability import (
    CheckpointLock,
    GracefulShutdown,
    iter_sealed_records,
    manifest_identity,
    seal_record,
)
from repro.exec.progress import ProgressEvent, ProgressObserver
from repro.exec.resilience import TaskFailure
from repro.fuzz.artifacts import (
    ReproArtifact,
    Verdict,
    config_digest,
    save_artifact,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.genome import (
    ProgramGenome,
    build_program,
    mutate,
    seed_genome,
    splice,
)
from repro.fuzz.oracle import OracleReport, evaluate
from repro.fuzz.shrink import shrink

#: Domain separator for fuzz seed derivation (independent of the campaign
#: engine's namespace); bump if the scheduling scheme ever changes.
FUZZ_SEED_NAMESPACE = "idld-fuzz-v1"

#: Fuzz checkpoint format version this writer produces (v2: CRC-sealed
#: records + manifest identity hash, same scheme as campaign checkpoints).
FUZZ_CHECKPOINT_VERSION = 2

#: Versions the loader accepts (v1: pre-CRC files, still resumable).
FUZZ_SUPPORTED_VERSIONS = (1, 2)


def derive_fuzz_seed(master_seed: int, index: int) -> int:
    """Stable per-execution seed (hash, not Python's randomized hash)."""
    key = f"{FUZZ_SEED_NAMESPACE}:{master_seed}:{index}"
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class GeneratorLimits:
    """Size knobs for freshly-seeded genomes."""

    max_blocks: int = 5
    block_len: int = 8
    max_iters: int = 8
    data_words: int = 24


@dataclass(frozen=True)
class FuzzTask:
    """One scheduled oracle evaluation (picklable; ships to workers).

    ``bug`` is normally None (the fuzzer hunts for *real* core/checker
    bugs); campaigns armed with a known BugSpec exercise the oracle →
    shrinker → artifact loop end-to-end and seed the failing half of the
    regression corpus.
    """

    index: int
    derived_seed: int
    genome: ProgramGenome
    origin: str  # "seed" | "mutant" | "splice"
    bug: Optional[BugSpec] = None

    @property
    def key(self) -> str:
        return str(self.index)


@dataclass(frozen=True)
class FuzzResult:
    """What one evaluation sends back (plain data, picklable)."""

    index: int
    ok: bool
    failures: Tuple[str, ...]
    coverage: Tuple[str, ...]
    cycles: int
    committed: int
    output_sha: str


def run_fuzz_task(task: FuzzTask, context: ExecutionContext) -> FuzzResult:
    """Module-level task runner (the backends' pluggable-runner target)."""
    program = build_program(task.genome, name=f"fuzz{task.index}")
    report = evaluate(
        program,
        config=context.config,
        bug=task.bug,
        deadline=context.deadline,
    )
    return FuzzResult(
        index=task.index,
        ok=report.ok,
        failures=report.failures,
        coverage=report.coverage,
        cycles=report.cycles,
        committed=report.committed,
        output_sha=report.output_sha,
    )


@dataclass
class Finding:
    """One deduplicated oracle failure, after minimization."""

    signature: str
    failures: Tuple[str, ...]
    first_index: int
    genome: ProgramGenome
    report: OracleReport
    shrink_evaluations: int
    artifact_path: Optional[str] = None


@dataclass
class CorpusEntry:
    """One interesting (novel-coverage) input kept for future mutation."""

    index: int
    genome: ProgramGenome
    origin: str
    new_keys: Tuple[str, ...]
    coverage: Tuple[str, ...]
    ok: bool


@dataclass
class FuzzSummary:
    """Everything a fuzz campaign produced (and the CLI reports)."""

    seed: int
    budget: int
    batch: int
    executed: int
    restored: int
    coverage: CoverageMap = field(default_factory=CoverageMap)
    corpus: List[CorpusEntry] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    failure_runs: int = 0
    elapsed_s: float = 0.0
    #: Evaluations the execution layer quarantined (index -> TaskFailure);
    #: excluded from coverage/corpus/findings, reported so a fuzz run with
    #: harness-level casualties is visibly incomplete.
    task_failures: Dict[int, TaskFailure] = field(default_factory=dict)

    @property
    def quarantined(self) -> int:
        return len(self.task_failures)

    def report_lines(self) -> List[str]:
        """The deterministic coverage report (timing deliberately absent,
        so ``--jobs N`` output is comparable line-for-line)."""
        lines = [
            f"fuzz: seed={self.seed} budget={self.budget} batch={self.batch}",
            f"executions: {self.executed + self.restored} "
            f"({self.restored} restored from checkpoint)",
            f"coverage: {len(self.coverage)} buckets over "
            f"{len(self.coverage.by_feature())} features",
        ]
        for family, count in sorted(self.coverage.by_feature().items()):
            lines.append(f"  {family:<14} {count} buckets")
        lines.append(f"corpus: {len(self.corpus)} interesting inputs")
        if self.task_failures:
            kinds: Dict[str, int] = {}
            for failure in self.task_failures.values():
                kinds[failure.kind] = kinds.get(failure.kind, 0) + 1
            detail = ", ".join(
                f"{kinds[k]} {k}" for k in sorted(kinds)
            )
            lines.append(
                f"quarantined: {self.quarantined} evaluations ({detail}) "
                "-- excluded from coverage/corpus"
            )
        lines.append(
            f"failures: {self.failure_runs} runs, "
            f"{len(self.findings)} unique findings"
        )
        for finding in self.findings:
            lines.append(
                f"  [{finding.signature}] {'+'.join(finding.failures)} "
                f"first@{finding.first_index}"
                + (
                    f" -> {finding.artifact_path}"
                    if finding.artifact_path
                    else ""
                )
            )
        return lines


def failure_signature(
    failures: Tuple[str, ...], coverage: Tuple[str, ...]
) -> str:
    """Dedup key: the failure tuple plus the run's coverage signature."""
    payload = json.dumps([list(failures), list(coverage)])
    return hashlib.blake2b(payload.encode(), digest_size=6).hexdigest()


# -- checkpointing -----------------------------------------------------------


def _result_to_record(result: FuzzResult) -> Dict[str, object]:
    return {
        "type": "eval",
        "index": result.index,
        "ok": result.ok,
        "failures": list(result.failures),
        "coverage": list(result.coverage),
        "cycles": result.cycles,
        "committed": result.committed,
        "output_sha": result.output_sha,
    }


def _result_from_record(record: Dict[str, object]) -> FuzzResult:
    return FuzzResult(
        index=record["index"],
        ok=record["ok"],
        failures=tuple(record["failures"]),
        coverage=tuple(record["coverage"]),
        cycles=record["cycles"],
        committed=record["committed"],
        output_sha=record["output_sha"],
    )


class _FuzzCheckpoint:
    """Append-only JSONL log of completed evaluations.

    Every record is flushed (a process kill loses at most the line being
    written); ``fsync=True`` additionally survives hard machine kills at a
    per-record I/O cost — same policy as the campaign CheckpointWriter.
    Records are CRC-sealed and a sidecar single-writer lock (PID +
    heartbeat) is held for the writer's lifetime, exactly as for campaign
    checkpoints.
    """

    def __init__(
        self,
        path: str,
        manifest: Dict[str, object],
        resume: bool,
        fsync: bool = False,
        lock: bool = True,
    ):
        self.path = path
        self.fsync = fsync
        self._lock = CheckpointLock(path).acquire() if lock else None
        try:
            if resume:
                _truncate_torn_tail(path)
                self._handle = open(path, "a")
            else:
                self._handle = open(path, "w")
                self._append(manifest)
        except BaseException:
            if self._lock is not None:
                self._lock.release()
            raise

    def write(self, result: FuzzResult) -> None:
        self._append(_result_to_record(result))

    def write_failure(self, index: int, failure: TaskFailure) -> None:
        """Record one quarantined evaluation so a resume skips it."""
        self._append(
            {
                "type": "eval-failure",
                "index": index,
                "failure": failure.to_record(),
            }
        )

    def _append(self, record: Dict[str, object]) -> None:
        self._handle.write(json.dumps(seal_record(record), sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        if self._lock is not None:
            self._lock.heartbeat()

    def close(self) -> None:
        self._handle.close()
        if self._lock is not None:
            self._lock.release()
            self._lock = None


def _fuzz_manifest(
    seed: int,
    batch: int,
    limits: GeneratorLimits,
    config: CoreConfig,
    bug: Optional[BugSpec],
) -> Dict[str, object]:
    record = {
        "type": "fuzz-manifest",
        "version": FUZZ_CHECKPOINT_VERSION,
        "seed": seed,
        "batch": batch,
        "limits": {
            "max_blocks": limits.max_blocks,
            "block_len": limits.block_len,
            "max_iters": limits.max_iters,
            "data_words": limits.data_words,
        },
        "config_digest": config_digest(config),
        "bug": spec_to_dict(bug) if bug is not None else None,
    }
    record["identity"] = manifest_identity(record)
    return record


def load_fuzz_checkpoint(
    path: str,
) -> Tuple[Dict[str, object], Dict[int, FuzzResult]]:
    """Load manifest + recorded results, tolerating a torn final line.

    Quarantined ``eval-failure`` records are tolerated but dropped; use
    :func:`load_fuzz_checkpoint_full` to get them too.
    """
    manifest, done, _ = load_fuzz_checkpoint_full(path)
    return manifest, done


def load_fuzz_checkpoint_full(
    path: str,
) -> Tuple[
    Dict[str, object], Dict[int, FuzzResult], Dict[int, TaskFailure]
]:
    """Load manifest, recorded results and quarantined evaluations.

    A later ``eval`` record for an index supersedes its ``eval-failure``
    record (a retry eventually succeeded). Streams the file line by line,
    verifying CRCs where present (v2) and reporting interior corruption
    with line numbers; a torn final line is tolerated."""
    if os.path.getsize(path) == 0:
        raise CheckpointError(f"{path}: empty fuzz checkpoint file")
    manifest: Optional[Dict[str, object]] = None
    done: Dict[int, FuzzResult] = {}
    failures: Dict[int, TaskFailure] = {}
    for lineno, record in iter_sealed_records(path):
        if manifest is None:
            if record.get("type") != "fuzz-manifest":
                raise CheckpointError(
                    f"{path}: not a fuzz checkpoint "
                    f"(got {record.get('type')!r})"
                )
            if record.get("version") not in FUZZ_SUPPORTED_VERSIONS:
                raise CheckpointError(
                    f"{path}: unsupported fuzz checkpoint version "
                    f"{record.get('version')!r}"
                )
            manifest = record
            continue
        kind = record.get("type")
        if kind == "eval":
            result = _result_from_record(record)
            done[result.index] = result
            failures.pop(result.index, None)
        elif kind == "eval-failure":
            index = record["index"]
            if index in done:
                continue  # a completed eval outranks any failure record
            failures[index] = TaskFailure.from_record(record["failure"])
        else:
            raise CheckpointError(
                f"{path}:{lineno}: unexpected record type {kind!r}"
            )
    if manifest is None:
        raise CheckpointError(f"{path}: no complete records")
    return manifest, done, failures


def _verify_fuzz_manifest(
    manifest: Dict[str, object],
    expected: Dict[str, object],
    path: str,
) -> None:
    for key in ("seed", "batch", "limits", "config_digest", "bug"):
        if manifest.get(key) != expected[key]:
            raise CheckpointError(
                f"{path}: checkpoint {key}={manifest.get(key)!r} does not "
                f"match this campaign's {key}={expected[key]!r}; refusing "
                "to resume"
            )


# -- the campaign ------------------------------------------------------------


class FuzzCampaign:
    """Holds the evolving corpus/coverage state across batches."""

    def __init__(
        self,
        seed: int,
        budget: int,
        config: Optional[CoreConfig] = None,
        batch: int = 32,
        limits: GeneratorLimits = GeneratorLimits(),
        shrink_budget: int = 250,
        artifacts_dir: Optional[str] = None,
        max_findings: int = 20,
        bug: Optional[BugSpec] = None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.seed = seed
        self.budget = budget
        self.batch = batch
        self.config = config or CoreConfig()
        self.limits = limits
        self.shrink_budget = shrink_budget
        self.artifacts_dir = artifacts_dir
        self.max_findings = max_findings
        self.bug = bug
        self.coverage = CoverageMap()
        self.corpus: List[CorpusEntry] = []
        self.findings: List[Finding] = []
        self._seen_signatures: Dict[str, int] = {}
        self.failure_runs = 0

    # -- scheduling ---------------------------------------------------------

    def schedule(self, index: int) -> FuzzTask:
        """Derive the genome for execution ``index`` from the corpus as of
        the last batch barrier (pure function of seed + past results)."""
        derived = derive_fuzz_seed(self.seed, index)
        rng = random.Random(derived)
        lim = self.limits
        if not self.corpus:
            origin = "seed"
            genome = seed_genome(
                rng, lim.max_blocks, lim.block_len, lim.max_iters,
                lim.data_words,
            )
        else:
            roll = rng.random()
            if roll < 0.15:
                origin = "seed"
                genome = seed_genome(
                    rng, lim.max_blocks, lim.block_len, lim.max_iters,
                    lim.data_words,
                )
            elif roll < 0.40 and len(self.corpus) >= 2:
                origin = "splice"
                left = rng.choice(self.corpus).genome
                right = rng.choice(self.corpus).genome
                genome = splice(rng, left, right)
            else:
                origin = "mutant"
                parent = rng.choice(self.corpus).genome
                genome = mutate(rng, parent, rounds=rng.randint(1, 3))
        return FuzzTask(
            index=index,
            derived_seed=derived,
            genome=genome,
            origin=origin,
            bug=self.bug,
        )

    # -- state folding ------------------------------------------------------

    def absorb(self, task: FuzzTask, result: FuzzResult) -> None:
        """Fold one result into coverage/corpus/findings (canonical order)."""
        new_keys = self.coverage.add(result.coverage)
        if new_keys:
            self.corpus.append(
                CorpusEntry(
                    index=task.index,
                    genome=task.genome,
                    origin=task.origin,
                    new_keys=tuple(new_keys),
                    coverage=result.coverage,
                    ok=result.ok,
                )
            )
        if result.ok:
            return
        self.failure_runs += 1
        signature = failure_signature(result.failures, result.coverage)
        if signature in self._seen_signatures:
            return
        self._seen_signatures[signature] = task.index
        if len(self.findings) >= self.max_findings:
            return
        self.findings.append(self._minimize(signature, task, result))

    def _minimize(
        self, signature: str, task: FuzzTask, result: FuzzResult
    ) -> Finding:
        def oracle(genome: ProgramGenome) -> OracleReport:
            return evaluate(
                build_program(genome), config=self.config, bug=self.bug
            )

        shrunk = shrink(
            task.genome, result.failures, oracle, budget=self.shrink_budget
        )
        finding = Finding(
            signature=signature,
            failures=result.failures,
            first_index=task.index,
            genome=shrunk.genome,
            report=shrunk.report,
            shrink_evaluations=shrunk.evaluations,
        )
        if self.artifacts_dir is not None:
            artifact = ReproArtifact(
                name="fail",
                genome=shrunk.genome,
                config=self.config,
                verdict=Verdict.from_report(shrunk.report),
                coverage=shrunk.report.coverage,
                bug=self.bug,
                seed=self.seed,
                origin=f"fuzz:{task.origin}@{task.index}",
            )
            finding.artifact_path = save_artifact(artifact, self.artifacts_dir)
        return finding

    def save_corpus(self, directory: str) -> List[str]:
        """Write every corpus entry as a (passing) repro artifact."""
        paths = []
        for entry in self.corpus:
            program = build_program(entry.genome)
            report = evaluate(program, config=self.config, bug=self.bug)
            artifact = ReproArtifact(
                name="cov",
                genome=entry.genome,
                config=self.config,
                verdict=Verdict.from_report(report),
                coverage=report.coverage,
                bug=self.bug,
                seed=self.seed,
                origin=f"fuzz:{entry.origin}@{entry.index}",
            )
            paths.append(save_artifact(artifact, directory))
        return paths


def run_fuzz(
    seed: int = 1,
    budget: int = 500,
    config: Optional[CoreConfig] = None,
    backend: Optional[Backend] = None,
    batch: int = 32,
    limits: GeneratorLimits = GeneratorLimits(),
    shrink_budget: int = 250,
    artifacts_dir: Optional[str] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    observers: Sequence[ProgressObserver] = (),
    save_corpus_dir: Optional[str] = None,
    bug: Optional[BugSpec] = None,
    snapshot_interval: int = 0,
    differential: bool = False,
    checkpoint_fsync: bool = False,
    shutdown: Optional[GracefulShutdown] = None,
) -> FuzzSummary:
    """Run one coverage-guided differential fuzzing campaign.

    Args:
        seed: Master seed; every scheduling decision derives from it.
        budget: Total oracle evaluations to schedule (shrinking is extra).
        config: Core configuration under test (paper defaults when None).
        backend: Execution backend (:class:`SerialBackend` when None);
            results are bit-identical for any backend/worker count.
        batch: Generation size — the corpus-update barrier. Part of the
            campaign identity: changing it changes the schedule.
        shrink_budget: Max oracle evaluations per finding minimization.
        artifacts_dir: Where failing repro artifacts are written.
        checkpoint_path: Append each completed evaluation to this JSONL.
        resume: Load ``checkpoint_path`` first; recorded evaluations are
            replayed through the driver instead of re-simulated.
        observers: Progress-event callables.
        save_corpus_dir: If set, dump the final corpus as artifacts.
        bug: Optional armed BugSpec applied to every evaluation — exercises
            the oracle/shrinker/artifact loop against a known-bad core.
        snapshot_interval: Accepted for CLI parity with ``repro campaign``;
            the fuzz oracle runs each generated program exactly once, so
            there is no repeated prefix to warm-start and the value has no
            effect on fuzzing throughput or results. It is deliberately
            NOT part of the fuzz manifest identity.
        differential: Accepted for CLI parity with ``repro campaign``;
            the fuzz oracle has no golden delta trace to run a
            differential suffix against, so this has no effect either.
        checkpoint_fsync: ``os.fsync`` every checkpoint record.
        shutdown: A :class:`~repro.exec.durability.GracefulShutdown`
            latch; once requested the backend stops dispatching and the
            driver stops after the current generation. A generation whose
            evaluations were only partially collected is *not* absorbed
            into the corpus — its completed records are already
            checkpointed, so a resume replays the full generation and the
            schedule evolves exactly as in an uninterrupted run.

    Returns:
        The :class:`FuzzSummary` (coverage map, corpus, findings).

    Fault tolerance: with a policy-enabled backend, an evaluation the
    execution layer gives up on (exception / timeout / worker crash after
    retries) lands in ``FuzzSummary.task_failures`` instead of aborting
    the campaign, is checkpointed as an ``eval-failure`` record (so a
    resume skips it), and contributes nothing to coverage/corpus — the
    downstream schedule evolves exactly as if the run had produced no
    novelty, which keeps resume and fresh runs consistent with each other.
    """
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    campaign = FuzzCampaign(
        seed=seed,
        budget=budget,
        config=config,
        batch=batch,
        limits=limits,
        shrink_budget=shrink_budget,
        artifacts_dir=artifacts_dir,
        bug=bug,
    )
    backend = backend if backend is not None else SerialBackend()
    context = ExecutionContext(
        programs={},
        config=campaign.config,
        runner=run_fuzz_task,
        snapshot_interval=snapshot_interval,
        differential=differential,
        shutdown=shutdown,
    )
    expected_manifest = _fuzz_manifest(
        seed, batch, limits, campaign.config, bug
    )

    restored: Dict[int, FuzzResult] = {}
    quarantined: Dict[int, TaskFailure] = {}
    if resume:
        manifest, restored, restored_failures = load_fuzz_checkpoint_full(
            checkpoint_path
        )
        _verify_fuzz_manifest(manifest, expected_manifest, checkpoint_path)
        quarantined.update(restored_failures)

    writer: Optional[_FuzzCheckpoint] = None
    if checkpoint_path is not None:
        writer = _FuzzCheckpoint(
            checkpoint_path,
            expected_manifest,
            resume=resume,
            fsync=checkpoint_fsync,
        )

    started = time.monotonic()
    executed = 0
    restored_used = 0

    def emit() -> None:
        elapsed = time.monotonic() - started
        throughput = executed / elapsed if elapsed > 0 and executed else 0.0
        done = restored_used + executed
        eta = (
            (budget - done) / throughput if throughput > 0 else None
        )
        event = ProgressEvent(
            done=done,
            total=budget,
            skipped=restored_used,
            elapsed_s=elapsed,
            throughput=throughput,
            eta_s=eta,
            benchmark=None,
            failed=len(quarantined),
        )
        for observer in observers:
            observer(event)

    try:
        index = 0
        while index < budget:
            size = min(batch, budget - index)
            tasks = [campaign.schedule(index + i) for i in range(size)]
            results: Dict[int, FuzzResult] = {}
            pending = []
            for task in tasks:
                if task.index in restored:
                    results[task.index] = restored[task.index]
                    restored_used += 1
                elif task.index in quarantined:
                    restored_used += 1  # known-bad; don't re-crash on it
                else:
                    pending.append(task)
            if pending and observers:
                emit()
            for task, outcome in backend.run(pending, context):
                if isinstance(outcome, TaskFailure):
                    quarantined[task.index] = outcome
                    if writer is not None:
                        writer.write_failure(task.index, outcome)
                else:
                    results[task.index] = outcome
                    if writer is not None:
                        writer.write(outcome)
                executed += 1
                emit()
            interrupted = shutdown is not None and shutdown.requested
            if interrupted:
                accounted = sum(
                    1
                    for task in tasks
                    if task.index in results or task.index in quarantined
                )
                if accounted < size:
                    # A partially-collected generation must not feed the
                    # corpus: its completed records are checkpointed, so a
                    # resume replays the whole generation and the schedule
                    # evolves exactly as in an uninterrupted run.
                    break
            by_index = {task.index: task for task in tasks}
            for i in sorted(results):
                campaign.absorb(by_index[i], results[i])
            index += size
            if interrupted:
                break
    finally:
        if writer is not None:
            writer.close()

    if save_corpus_dir is not None:
        campaign.save_corpus(save_corpus_dir)

    summary = FuzzSummary(
        seed=seed,
        budget=budget,
        batch=batch,
        executed=executed,
        restored=restored_used,
        coverage=campaign.coverage,
        corpus=campaign.corpus,
        findings=campaign.findings,
        failure_runs=campaign.failure_runs,
        elapsed_s=time.monotonic() - started,
        task_failures=dict(sorted(quarantined.items())),
    )
    return summary
