"""Microarchitectural coverage for the fuzzer.

The probe is an ordinary :class:`~repro.core.rrs.ports.RRSObserver`: it
rides the same port-event bus as the detectors, so it sees exactly the
RRS traffic a run actually produced. Each run is summarized as a set of
*feature buckets* — log2-bucketed counts of the control events that make
renaming hard (flush depth, recovery length, checkpoint pressure, Free
List occupancy extremes, LSQ replays, per-cycle rename-width utilization).
A run is "interesting" (enters the corpus) when it hits a bucket no prior
run hit, which steers mutation toward unexplored RRS control behaviour —
the CSR/microarchitectural guidance idea of ProcessorFuzz/DejaVuzz applied
to the renaming subsystem.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.core.rrs.ports import RRSObserver


def log_bucket(value: int) -> int:
    """Coarse log2 bucket: 0, 1, 2 stay distinct; 3 maps to 3, 4-7 to 4,
    8-15 to 5, ... so no two count ranges share a bucket."""
    return value if value <= 2 else value.bit_length() + 1


class CoverageProbe(RRSObserver):
    """Harvests one run's feature buckets from the RRS port events."""

    def __init__(self) -> None:
        self._keys: Set[str] = set()
        self._fl_occ = 0
        self._fl_min = 0
        self._fl_max = 0
        self._allocs_this_cycle = 0
        self._recovery_start = 0
        self._flushes = 0
        self._replays = 0
        self._ckpt_live = 0
        self._ckpt_live_max = 0
        self._ckpt_taken = 0
        self._ckpt_restored = 0
        self._empty_cycles = 0

    # -- port taps ----------------------------------------------------------

    def power_on(self, num_physical, num_logical, initial_free, initial_rat):
        self.__init__()
        self._fl_occ = len(initial_free)
        self._fl_min = self._fl_occ
        self._fl_max = self._fl_occ

    def fl_read(self, pdst: int) -> None:
        self._fl_occ -= 1
        self._fl_min = min(self._fl_min, self._fl_occ)
        self._allocs_this_cycle += 1

    def fl_write(self, pdst: int) -> None:
        self._fl_occ += 1
        self._fl_max = max(self._fl_max, self._fl_occ)

    def recovery_begin(self, cycle: int) -> None:
        self._recovery_start = cycle
        self._flushes += 1

    def recovery_end(self, cycle: int) -> None:
        self._keys.add(
            f"recovery_len:{log_bucket(cycle - self._recovery_start)}"
        )

    def flush_initiated(self, cycle: int, offender_seq: int, squashed: int) -> None:
        self._keys.add(f"flush_squash:{log_bucket(squashed)}")

    def load_replay(self, cycle: int, seq: int) -> None:
        self._replays += 1

    def checkpoint_content(self, slot: int, pos: int) -> None:
        self._ckpt_live += 1
        self._ckpt_live_max = max(self._ckpt_live_max, self._ckpt_live)
        self._ckpt_taken += 1

    def checkpoint_restored(self, slot: int) -> None:
        self._ckpt_restored += 1

    def checkpoint_freed(self, slot: int) -> None:
        self._ckpt_live = max(0, self._ckpt_live - 1)

    def pipeline_empty(self, cycle: int) -> None:
        self._empty_cycles += 1

    def cycle_end(self, cycle: int) -> None:
        # Rename-width utilization: how many Pdst allocations landed in
        # this cycle (0..width).
        self._keys.add(f"alloc_w:{self._allocs_this_cycle}")
        self._allocs_this_cycle = 0

    # -- run summary --------------------------------------------------------

    def buckets(self) -> Set[str]:
        """All feature buckets this run hit (aggregate counters folded in)."""
        keys = set(self._keys)
        keys.add(f"fl_min:{log_bucket(self._fl_min)}")
        keys.add(f"fl_max:{log_bucket(self._fl_max)}")
        keys.add(f"flushes:{log_bucket(self._flushes)}")
        keys.add(f"replays:{log_bucket(self._replays)}")
        keys.add(f"ckpt_live:{self._ckpt_live_max}")
        keys.add(f"ckpt_taken:{log_bucket(self._ckpt_taken)}")
        keys.add(f"ckpt_restored:{log_bucket(self._ckpt_restored)}")
        keys.add(f"pipe_empty:{log_bucket(self._empty_cycles)}")
        return keys


class CoverageMap:
    """Accumulated bucket hit-counts across a whole fuzzing campaign."""

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def add(self, keys: Iterable[str]) -> List[str]:
        """Fold one run's buckets in; returns the never-seen-before ones,
        sorted (deterministic regardless of input order)."""
        fresh = []
        for key in keys:
            if key not in self.counts:
                fresh.append(key)
                self.counts[key] = 0
            self.counts[key] += 1
        return sorted(fresh)

    def __len__(self) -> int:
        return len(self.counts)

    def by_feature(self) -> Dict[str, int]:
        """Distinct buckets hit per feature family (the report rows)."""
        families: Dict[str, int] = {}
        for key in self.counts:
            family = key.split(":", 1)[0]
            families[family] = families.get(family, 0) + 1
        return families

    def signature(self, keys: Iterable[str]) -> Tuple[str, ...]:
        """Canonical (sorted) form of one run's bucket set."""
        return tuple(sorted(keys))
