"""Greedy structural minimizer for failing fuzz inputs.

Given a genome whose oracle verdict is a failure, repeatedly try the
cheapest structural reductions — drop whole blocks, collapse loop trip
counts to 1, delete single operations, shrink the data region — keeping a
candidate only when it reproduces the *exact same* failure tuple (so a
Duplication finding cannot silently morph into, say, a timeout while
shrinking). Purely deterministic: candidate order is fixed, so the same
input always minimizes to the same repro.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Tuple

from repro.fuzz.genome import ProgramGenome
from repro.fuzz.oracle import OracleReport

#: ``oracle(genome) -> OracleReport`` — the engine binds config/bug in.
GenomeOracle = Callable[[ProgramGenome], OracleReport]


@dataclass
class ShrinkResult:
    """The minimized genome plus bookkeeping for the artifact."""

    genome: ProgramGenome
    report: OracleReport
    evaluations: int
    removed_blocks: int
    removed_ops: int


def _drop_block_candidates(genome: ProgramGenome) -> Iterator[ProgramGenome]:
    for index in range(len(genome.blocks)):
        blocks = genome.blocks[:index] + genome.blocks[index + 1:]
        if blocks:
            yield replace(genome, blocks=blocks)


def _iters_candidates(genome: ProgramGenome) -> Iterator[ProgramGenome]:
    for index, block in enumerate(genome.blocks):
        if block.iters > 1:
            blocks = list(genome.blocks)
            blocks[index] = replace(block, iters=1)
            yield replace(genome, blocks=tuple(blocks))


def _drop_op_candidates(genome: ProgramGenome) -> Iterator[ProgramGenome]:
    for bi, block in enumerate(genome.blocks):
        if len(block.ops) <= 1:
            continue
        for oi in range(len(block.ops)):
            blocks = list(genome.blocks)
            blocks[bi] = replace(
                block, ops=block.ops[:oi] + block.ops[oi + 1:]
            )
            yield replace(genome, blocks=tuple(blocks))


def _shrink_data_candidates(genome: ProgramGenome) -> Iterator[ProgramGenome]:
    length = len(genome.data)
    if length > 4:
        yield replace(genome, data=genome.data[: max(4, length // 2)])


_PASSES = (
    _drop_block_candidates,
    _iters_candidates,
    _drop_op_candidates,
    _shrink_data_candidates,
)


def shrink(
    genome: ProgramGenome,
    failures: Tuple[str, ...],
    oracle: GenomeOracle,
    budget: int = 300,
) -> ShrinkResult:
    """Minimize ``genome`` while preserving its exact failure tuple.

    Args:
        genome: The failing input.
        failures: The failure tuple the repro must keep producing.
        oracle: Evaluates a candidate genome.
        budget: Maximum oracle evaluations to spend.

    Returns:
        A :class:`ShrinkResult`; its report is the verdict of the final
        minimized genome (re-evaluated, never stale).
    """
    evaluations = 0
    removed_blocks = 0
    removed_ops = 0
    current = genome
    report = oracle(current)
    evaluations += 1
    if report.failures != failures:
        # The caller's verdict does not reproduce (should not happen for
        # deterministic oracles); return the input untouched.
        return ShrinkResult(genome, report, evaluations, 0, 0)

    progress = True
    while progress and evaluations < budget:
        progress = False
        for candidates in _PASSES:
            restart = True
            while restart and evaluations < budget:
                restart = False
                for candidate in candidates(current):
                    if evaluations >= budget:
                        break
                    attempt = oracle(candidate)
                    evaluations += 1
                    if attempt.failures != failures:
                        continue
                    if candidates is _drop_block_candidates:
                        removed_blocks += 1
                    elif candidates is _drop_op_candidates:
                        removed_ops += 1
                    current = candidate
                    report = attempt
                    progress = True
                    restart = True
                    break
    return ShrinkResult(current, report, evaluations, removed_blocks, removed_ops)
