"""Self-contained repro artifacts for fuzz findings.

An artifact is one JSON file holding everything needed to re-execute a
fuzz input bit-identically — the program genome, the full core
configuration, the (optional) armed bug spec — plus the recorded oracle
verdict and coverage signature. ``repro fuzz --replay a.json`` and the
pytest corpus loader (tests/test_corpus.py) rebuild the run from the file
alone and assert the verdict still holds, which turns every past finding
(and every interesting corpus seed) into a permanent regression test.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bugs.models import BugSpec
from repro.core.config import CoreConfig
from repro.exec.checkpoint import spec_from_dict, spec_to_dict
from repro.fuzz.genome import (
    ProgramGenome,
    build_program,
    genome_from_dict,
    genome_to_dict,
)
from repro.fuzz.oracle import OracleReport, evaluate

#: Artifact format identity; readers reject anything else.
ARTIFACT_FORMAT = "idld-fuzz-repro"
ARTIFACT_VERSION = 1


class ArtifactError(RuntimeError):
    """Raised on malformed or unsupported artifact files."""


# -- config (de)serialization ------------------------------------------------
#
# Thin delegates kept for existing imports: the canonical serialization is
# CoreConfig.to_dict/from_dict/digest (core/config.py), so artifacts, the
# campaign manifests and the sweep CLI can never drift apart on what a
# "design point" means. New config axes join artifacts automatically, and
# old artifact files (written before an axis existed) load as its default.


def config_to_dict(config: CoreConfig) -> Dict[str, object]:
    return config.to_dict()


def config_from_dict(data: Dict[str, object]) -> CoreConfig:
    return CoreConfig.from_dict(data)


def config_digest(config: CoreConfig) -> str:
    """Stable digest of a configuration (checkpoint identity checks)."""
    return config.digest()


# -- the artifact ------------------------------------------------------------


@dataclass(frozen=True)
class Verdict:
    """The recorded oracle outcome a replay must reproduce."""

    ok: bool
    failures: Tuple[str, ...]
    output_sha: str
    cycles: int
    committed: int

    @classmethod
    def from_report(cls, report: OracleReport) -> "Verdict":
        return cls(
            ok=report.ok,
            failures=report.failures,
            output_sha=report.output_sha,
            cycles=report.cycles,
            committed=report.committed,
        )


@dataclass(frozen=True)
class ReproArtifact:
    """One self-contained finding (or corpus seed)."""

    name: str
    genome: ProgramGenome
    config: CoreConfig
    verdict: Verdict
    coverage: Tuple[str, ...]
    bug: Optional[BugSpec] = None
    seed: Optional[int] = None
    origin: str = "fuzz"

    @property
    def artifact_id(self) -> str:
        """Content-derived identity (stable across re-discoveries)."""
        payload = json.dumps(
            {
                "genome": genome_to_dict(self.genome),
                "config": config_to_dict(self.config),
                "bug": spec_to_dict(self.bug) if self.bug else None,
            },
            sort_keys=True,
        )
        return hashlib.blake2b(payload.encode(), digest_size=6).hexdigest()


def artifact_to_dict(artifact: ReproArtifact) -> Dict[str, object]:
    return {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "name": artifact.name,
        "origin": artifact.origin,
        "seed": artifact.seed,
        "genome": genome_to_dict(artifact.genome),
        "config": config_to_dict(artifact.config),
        "bug": spec_to_dict(artifact.bug) if artifact.bug else None,
        "verdict": {
            "ok": artifact.verdict.ok,
            "failures": list(artifact.verdict.failures),
            "output_sha": artifact.verdict.output_sha,
            "cycles": artifact.verdict.cycles,
            "committed": artifact.verdict.committed,
        },
        "coverage": list(artifact.coverage),
    }


def artifact_from_dict(data: Dict[str, object]) -> ReproArtifact:
    if data.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(f"not a fuzz repro artifact: {data.get('format')!r}")
    if data.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(f"unsupported artifact version {data.get('version')!r}")
    verdict = data["verdict"]
    return ReproArtifact(
        name=data["name"],
        genome=genome_from_dict(data["genome"]),
        config=config_from_dict(data["config"]),
        verdict=Verdict(
            ok=verdict["ok"],
            failures=tuple(verdict["failures"]),
            output_sha=verdict["output_sha"],
            cycles=verdict["cycles"],
            committed=verdict["committed"],
        ),
        coverage=tuple(data.get("coverage", ())),
        bug=spec_from_dict(data["bug"]) if data.get("bug") else None,
        seed=data.get("seed"),
        origin=data.get("origin", "fuzz"),
    )


def save_artifact(artifact: ReproArtifact, directory: str) -> str:
    """Write the artifact under ``directory``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"{artifact.name}-{artifact.artifact_id}.json"
    )
    with open(path, "w") as handle:
        json.dump(artifact_to_dict(artifact), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact(path: str) -> ReproArtifact:
    try:
        with open(path) as handle:
            data = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return artifact_from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"{path}: malformed artifact ({exc})") from exc


def replay_artifact(artifact: ReproArtifact) -> Tuple[bool, OracleReport]:
    """Re-execute an artifact and compare against its recorded verdict.

    Matching is on the semantic outcome — ok flag, failure tuple and
    output digest. Cycle counts are informational (a future scheduling
    change may legitimately shift timing without changing the verdict).
    """
    program = build_program(artifact.genome, name=artifact.name)
    report = evaluate(program, config=artifact.config, bug=artifact.bug)
    matches = (
        report.ok == artifact.verdict.ok
        and report.failures == artifact.verdict.failures
        and report.output_sha == artifact.verdict.output_sha
    )
    return matches, report
