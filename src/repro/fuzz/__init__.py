"""Coverage-guided differential fuzzing of the renaming core.

Pipeline: :mod:`~repro.fuzz.genome` (mutable halting programs) →
:mod:`~repro.fuzz.oracle` (reference interpreter + PdstID census +
detector silence) → :mod:`~repro.fuzz.coverage` (RRS feature buckets) →
:mod:`~repro.fuzz.engine` (deterministic batched campaign on the
:mod:`repro.exec` backends) → :mod:`~repro.fuzz.shrink` /
:mod:`~repro.fuzz.artifacts` (minimized, replayable repro files).
"""

from repro.fuzz.artifacts import (
    ReproArtifact,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.fuzz.coverage import CoverageMap, CoverageProbe
from repro.fuzz.engine import FuzzSummary, run_fuzz
from repro.fuzz.genome import (
    ProgramGenome,
    build_program,
    mutate,
    seed_genome,
    splice,
)
from repro.fuzz.oracle import OracleReport, evaluate
from repro.fuzz.shrink import shrink

__all__ = [
    "CoverageMap",
    "CoverageProbe",
    "FuzzSummary",
    "OracleReport",
    "ProgramGenome",
    "ReproArtifact",
    "build_program",
    "evaluate",
    "load_artifact",
    "mutate",
    "replay_artifact",
    "run_fuzz",
    "save_artifact",
    "seed_genome",
    "shrink",
    "splice",
]
