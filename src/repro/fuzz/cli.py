"""``repro fuzz`` — the coverage-guided differential fuzzing CLI.

Examples::

    repro fuzz --seed 1 --budget 2000 --jobs 4          # one campaign
    repro fuzz --budget 2000 --jobs 4 --artifacts out/  # keep failing repros
    repro fuzz --budget 5000 --checkpoint fuzz.jsonl    # crash-safe
    repro fuzz --budget 5000 --resume fuzz.jsonl        # pick up a kill
    repro fuzz --replay tests/corpus/*.json             # re-verify artifacts

The same campaign (seed, budget, batch) produces bit-identical coverage,
corpus and findings for any ``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Coverage-guided differential fuzzing of the OoO core against "
            "the reference interpreter, the PdstID census and the "
            "IDLD/BV/Counter detectors."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign master seed [1]"
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=500,
        help="total oracle evaluations to schedule [500]",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; results are identical for any N [1]",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=32,
        help="generation size (corpus-update barrier); part of the "
        "campaign identity [32]",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=0,
        metavar="K",
        help=(
            "accepted for parity with 'repro campaign'; the fuzz oracle "
            "runs each generated program once, so warm-start snapshots "
            "never apply and this has no effect [0]"
        ),
    )
    parser.add_argument(
        "--differential",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "accepted for parity with 'repro campaign'; the fuzz oracle "
            "has no golden delta trace to run a differential suffix "
            "against, so this has no effect on fuzzing results [on]"
        ),
    )
    parser.add_argument(
        "--shrink-budget",
        type=int,
        default=250,
        dest="shrink_budget",
        help="max oracle evaluations spent minimizing each finding [250]",
    )
    parser.add_argument(
        "--artifacts",
        default=None,
        metavar="DIR",
        help="write failing repro artifacts (JSON) into this directory",
    )
    parser.add_argument(
        "--save-corpus",
        default=None,
        metavar="DIR",
        dest="save_corpus",
        help="write the final corpus (interesting passing inputs) as "
        "artifacts into this directory",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="append each completed evaluation to this JSONL checkpoint",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="resume an interrupted campaign from this checkpoint, "
        "replaying recorded evaluations instead of re-simulating them",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="print live progress to stderr [auto: on when stderr is a TTY]",
    )
    parser.add_argument(
        "--replay",
        nargs="+",
        default=None,
        metavar="ARTIFACT",
        help="skip fuzzing: replay these repro artifacts and verify each "
        "recorded verdict still reproduces",
    )
    from repro.cli import add_fault_args

    add_fault_args(parser)
    return parser.parse_args(argv)


def _replay(paths: List[str]) -> int:
    from repro.fuzz.artifacts import ArtifactError, load_artifact, replay_artifact

    failures = 0
    for path in paths:
        try:
            artifact = load_artifact(path)
        except (ArtifactError, OSError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        matches, report = replay_artifact(artifact)
        recorded = artifact.verdict
        want = "pass" if recorded.ok else "+".join(recorded.failures)
        if matches:
            print(f"ok   {path}: {want}")
        else:
            print(
                f"FAIL {path}: recorded {want!r} but replay produced "
                f"{report.verdict!r}"
            )
            failures += 1
    total = len(paths)
    print(f"replayed {total} artifacts, {failures} mismatches")
    return 1 if failures else 0


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)

    if args.replay is not None:
        return _replay(args.replay)

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.budget < 1:
        print(f"--budget must be >= 1, got {args.budget}", file=sys.stderr)
        return 2
    if args.batch < 1:
        print(f"--batch must be >= 1, got {args.batch}", file=sys.stderr)
        return 2
    if args.snapshot_interval < 0:
        print(
            f"--snapshot-interval must be >= 0, got {args.snapshot_interval}",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint and args.resume:
        print(
            "--checkpoint and --resume are mutually exclusive "
            "(--resume keeps appending to the file it loads)",
            file=sys.stderr,
        )
        return 2

    from repro.cli import policy_from_args, print_shutdown_notice
    from repro.exec.backends import ProcessPoolBackend, SerialBackend
    from repro.exec.checkpoint import CheckpointError
    from repro.exec.durability import SHUTDOWN_EXIT_CODE, GracefulShutdown
    from repro.exec.progress import ProgressPrinter
    from repro.exec.resilience import FaultToleranceError
    from repro.fuzz.engine import run_fuzz

    try:
        policy = policy_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = (
        ProcessPoolBackend(args.jobs, policy=policy)
        if args.jobs > 1
        else SerialBackend(policy=policy)
    )
    show_progress = (
        args.progress if args.progress is not None else sys.stderr.isatty()
    )
    observers = [ProgressPrinter()] if show_progress else []

    try:
        with GracefulShutdown() as shutdown:
            summary = run_fuzz(
                seed=args.seed,
                budget=args.budget,
                backend=backend,
                batch=args.batch,
                shrink_budget=args.shrink_budget,
                artifacts_dir=args.artifacts,
                checkpoint_path=args.resume or args.checkpoint,
                resume=args.resume is not None,
                observers=observers,
                save_corpus_dir=args.save_corpus,
                snapshot_interval=args.snapshot_interval,
                differential=args.differential,
                checkpoint_fsync=args.checkpoint_fsync,
                shutdown=shutdown,
            )
    except (CheckpointError, OSError) as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except FaultToleranceError as exc:
        print(f"fault tolerance: {exc}", file=sys.stderr)
        return 2
    if shutdown.requested:
        print_shutdown_notice(shutdown, args.resume or args.checkpoint, "fuzz")
        return SHUTDOWN_EXIT_CODE

    print("\n".join(summary.report_lines()))
    print(f"elapsed: {summary.elapsed_s:.1f}s (jobs={args.jobs})")
    return 1 if summary.findings or summary.quarantined else 0


if __name__ == "__main__":
    sys.exit(fuzz_main())
