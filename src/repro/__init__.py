"""IDLD reproduction: instantaneous detection of PdstID leakage/duplication.

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.isa` -- mini ISA, assembler, reference interpreter.
* :mod:`repro.core` -- cycle-level OoO core with the full RRS.
* :mod:`repro.idld` -- the IDLD checker and baseline detectors.
* :mod:`repro.bugs` -- bug models, injection, campaigns, classification.
* :mod:`repro.workloads` -- MiBench-analog benchmark programs.
* :mod:`repro.mdp` -- Store-Sets memory dependence predictor use case.
* :mod:`repro.rtl` -- structural area/energy cost model (Table II).
* :mod:`repro.analysis` -- outcome classes, buckets, report formatting.
"""

from repro.core import CoreConfig, OoOCore, RunResult, paper_rrs_config
from repro.idld import BitVectorScheme, CounterScheme, IDLDChecker
from repro.isa import Program, ProgramBuilder, assemble

__version__ = "1.0.0"

__all__ = [
    "BitVectorScheme",
    "CoreConfig",
    "CounterScheme",
    "IDLDChecker",
    "OoOCore",
    "Program",
    "ProgramBuilder",
    "RunResult",
    "assemble",
    "paper_rrs_config",
    "__version__",
]
