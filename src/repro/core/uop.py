"""Dynamic (in-flight) instruction state."""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.isa.instructions import Instruction


class UopState(enum.Enum):
    """Lifecycle of a dynamic instruction."""

    FETCHED = "fetched"
    WAITING = "waiting"
    EXECUTING = "executing"
    DONE = "done"
    SQUASHED = "squashed"


class Uop:
    """One dynamic instance of a static instruction.

    A plain ``__slots__`` class (not a dataclass): one Uop is allocated per
    fetched instruction, making this the hottest allocation site in the
    simulator; slots cut both the per-instance memory and the attribute
    access cost on every pipeline stage.

    Attributes:
        seq: Global rename sequence number (allocation order).
        pc: Static instruction index.
        inst: The decoded instruction.
        predicted_taken / predicted_target: Front-end speculation recorded
            at fetch for branches.
        src_pdsts: Physical sources captured at rename from the (possibly
            bug-corrupted) RAT.
        pdst: Allocated physical destination, or None.
        evicted_pdst: Previous RAT mapping recorded into the ROB.
        state: Lifecycle state.
        result: Writeback value (for dest-writing uops) or OUT payload.
        mem_address: Effective address for loads/stores once computed.
        taken / actual_target: Branch resolution outcome.
        fault: Faulting address detected at execute, raised at commit.
        fetch_cycle / done_cycle: Timestamps for statistics.
    """

    __slots__ = (
        "seq",
        "pc",
        "inst",
        "predicted_taken",
        "predicted_target",
        "pred_state",
        "src_pdsts",
        "pdst",
        "evicted_pdst",
        "state",
        "result",
        "mem_address",
        "taken",
        "actual_target",
        "fault",
        "fetch_cycle",
        "done_cycle",
        "wait_pdst",
        "src_mask",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        inst: Instruction,
        predicted_taken: bool = False,
        predicted_target: int = 0,
        pred_state: int = 0,
        src_pdsts: Optional[List[int]] = None,
        pdst: Optional[int] = None,
        evicted_pdst: Optional[int] = None,
        state: UopState = UopState.FETCHED,
        result: int = 0,
        mem_address: Optional[int] = None,
        taken: bool = False,
        actual_target: int = 0,
        fault: Optional[int] = None,
        fetch_cycle: int = 0,
        done_cycle: int = 0,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.predicted_taken = predicted_taken
        self.predicted_target = predicted_target
        self.pred_state = pred_state
        self.src_pdsts = [] if src_pdsts is None else src_pdsts
        self.pdst = pdst
        self.evicted_pdst = evicted_pdst
        self.state = state
        self.result = result
        self.mem_address = mem_address
        self.taken = taken
        self.actual_target = actual_target
        self.fault = fault
        self.fetch_cycle = fetch_cycle
        self.done_cycle = done_cycle
        # Issue-stage wakeup scoreboard: the first not-ready source this uop
        # stalled on, or None when it should attempt issue. Derived state —
        # deliberately absent from save_state(); a restored uop retries once
        # and re-blocks, which is behavior-identical (a source-blocked issue
        # attempt has no side effects).
        self.wait_pdst: Optional[int] = None
        # OR of ``1 << p`` over src_pdsts: readiness of all sources is one
        # AND against the PRF's flat ready scoreboard instead of a per-pdst
        # loop. Derived from src_pdsts (set at rename / from_state), so it
        # too stays out of save_state().
        self.src_mask = 0

    @property
    def live(self) -> bool:
        return self.state is not UopState.SQUASHED

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """All dynamic fields as a plain tuple (``inst`` is static and is
        re-derived from ``pc`` on load)."""
        return (
            self.seq,
            self.pc,
            self.predicted_taken,
            self.predicted_target,
            self.pred_state,
            tuple(self.src_pdsts),
            self.pdst,
            self.evicted_pdst,
            self.state,
            self.result,
            self.mem_address,
            self.taken,
            self.actual_target,
            self.fault,
            self.fetch_cycle,
            self.done_cycle,
        )

    @classmethod
    def from_state(cls, data: tuple, inst: Instruction) -> "Uop":
        uop = cls(seq=data[0], pc=data[1], inst=inst)
        uop.predicted_taken = data[2]
        uop.predicted_target = data[3]
        uop.pred_state = data[4]
        uop.src_pdsts = list(data[5])
        mask = 0
        for pdst in uop.src_pdsts:
            mask |= 1 << pdst
        uop.src_mask = mask
        uop.pdst = data[6]
        uop.evicted_pdst = data[7]
        uop.state = data[8]
        uop.result = data[9]
        uop.mem_address = data[10]
        uop.taken = data[11]
        uop.actual_target = data[12]
        uop.fault = data[13]
        uop.fetch_cycle = data[14]
        uop.done_cycle = data[15]
        return uop

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Uop(seq={self.seq}, pc={self.pc}, state={self.state.value})"

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"uop#{self.seq} pc={self.pc} {self.inst} [{self.state.value}]"
