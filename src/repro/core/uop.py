"""Dynamic (in-flight) instruction state."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa.instructions import Instruction


class UopState(enum.Enum):
    """Lifecycle of a dynamic instruction."""

    FETCHED = "fetched"
    WAITING = "waiting"
    EXECUTING = "executing"
    DONE = "done"
    SQUASHED = "squashed"


@dataclass
class Uop:
    """One dynamic instance of a static instruction.

    Attributes:
        seq: Global rename sequence number (allocation order).
        pc: Static instruction index.
        inst: The decoded instruction.
        predicted_taken / predicted_target: Front-end speculation recorded
            at fetch for branches.
        src_pdsts: Physical sources captured at rename from the (possibly
            bug-corrupted) RAT.
        pdst: Allocated physical destination, or None.
        evicted_pdst: Previous RAT mapping recorded into the ROB.
        state: Lifecycle state.
        result: Writeback value (for dest-writing uops) or OUT payload.
        mem_address: Effective address for loads/stores once computed.
        taken / actual_target: Branch resolution outcome.
        fault: Faulting address detected at execute, raised at commit.
        fetch_cycle / done_cycle: Timestamps for statistics.
    """

    seq: int
    pc: int
    inst: Instruction
    predicted_taken: bool = False
    predicted_target: int = 0
    pred_state: int = 0
    src_pdsts: List[int] = field(default_factory=list)
    pdst: Optional[int] = None
    evicted_pdst: Optional[int] = None
    state: UopState = UopState.FETCHED
    result: int = 0
    mem_address: Optional[int] = None
    taken: bool = False
    actual_target: int = 0
    fault: Optional[int] = None
    fetch_cycle: int = 0
    done_cycle: int = 0

    @property
    def live(self) -> bool:
        return self.state is not UopState.SQUASHED

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return f"uop#{self.seq} pc={self.pc} {self.inst} [{self.state.value}]"
