"""Exception types raised by the cycle-level core.

These map onto the paper's observable bug-effect classes (Section VI.C):

* :class:`SimulatorAssertion` -> the **Assert** class ("a high-level
  condition that the simulator is unable to handle").
* :class:`MemoryFault` -> the **Crash** class (committed access outside the
  legal memory window, the simulator analog of a segfault/kernel panic).

They are *only* raised for conditions a real machine could reach after a bug
(e.g. a Free List overflow caused by a duplicated reclaim); bug injection
itself never raises.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class SimulatorAssertion(SimulationError):
    """An internal microarchitectural invariant was violated.

    Corresponds to the paper's *Assert* outcome class: the simulator cannot
    decide how real hardware would behave past this point.
    """

    def __init__(self, cycle: int, message: str) -> None:
        super().__init__(f"cycle {cycle}: {message}")
        self.cycle = cycle


class MemoryFault(SimulationError):
    """A committed memory access fell outside the legal address window.

    Corresponds to the paper's *Crash* outcome class (process/system crash).
    """

    def __init__(self, cycle: int, address: int) -> None:
        super().__init__(f"cycle {cycle}: memory fault at address {address:#x}")
        self.cycle = cycle
        self.address = address


class DeadlockError(SimulationError):
    """The core made no forward progress for the configured window.

    Folded into the *Timeout* outcome class by the classifier.
    """

    def __init__(self, cycle: int, message: str = "no forward progress") -> None:
        super().__init__(f"cycle {cycle}: {message}")
        self.cycle = cycle


class DeadlineExceeded(Exception):
    """The simulation ran past its wall-clock budget (harness deadline).

    Deliberately *not* a :class:`SimulationError`: a deadline expiry is a
    property of the harness (a per-task resource budget), not an outcome
    of the simulated machine, so it must never be classified as a bug
    effect. It propagates out of :meth:`OoOCore.run` to the execution
    layer, which records the task as a structured timeout failure.
    """

    def __init__(self, cycle: int, budget_s: float) -> None:
        super().__init__(
            f"cycle {cycle}: simulation exceeded its {budget_s:.1f}s "
            "wall-clock budget"
        )
        self.cycle = cycle
        self.budget_s = budget_s
