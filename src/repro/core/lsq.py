"""Data memory and the store queue.

Stores write memory only at commit; loads execute speculatively, forwarding
from older in-flight stores when the address matches and conservatively
stalling when any older store address is still unknown (no memory
dependence speculation in the core -- the Store-Sets predictor of the
paper's Section V.F lives in its own substrate, :mod:`repro.mdp`).

Wrong-path or bug-corrupted addresses never raise at execute time; a
:class:`repro.core.errors.MemoryFault` fires only when a faulting access
*commits* (the paper's Crash class).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import MemoryFault, SimulatorAssertion
from repro.isa.instructions import WORD_MASK


@dataclass
class StoreQueueEntry:
    """One in-flight store."""

    seq: int
    address: Optional[int] = None
    value: Optional[int] = None

    @property
    def resolved(self) -> bool:
        return self.address is not None


class DataMemory:
    """Sparse word-addressed memory with a legality window."""

    def __init__(self, limit: int, initial: Optional[Dict[int, int]] = None) -> None:
        self.limit = limit
        self._words: Dict[int, int] = dict(initial or {})

    def read(self, address: int) -> int:
        """Speculative read; out-of-window reads return 0 (never raise)."""
        return self._words.get(address & WORD_MASK, 0)

    def committed_write(self, cycle: int, address: int, value: int) -> None:
        """Commit-time store; faults outside the legality window."""
        address &= WORD_MASK
        if address >= self.limit:
            raise MemoryFault(cycle, address)
        self._words[address] = value & WORD_MASK

    def check_committed_read(self, cycle: int, address: int) -> None:
        """Commit-time legality check for a load's address."""
        address &= WORD_MASK
        if address >= self.limit:
            raise MemoryFault(cycle, address)

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> dict:
        """Snapshot the committed word store (sparse dict copy)."""
        return dict(self._words)

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`save_state` snapshot."""
        self._words = dict(state)


class StoreQueue:
    """In-order queue of in-flight stores with forwarding search."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[StoreQueueEntry] = []
        # must-stall memo: load_seq -> address for which the ordering scan
        # last returned must_stall. Valid only while the queue is unchanged;
        # every mutation clears it. Replay-stalled loads re-run the scan
        # every cycle, so a livelocked (frozen) queue answers in O(1).
        self._stall_memo: Dict[int, int] = {}

    def reset(self) -> None:
        self._entries = []
        self._stall_memo = {}

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def allocate(self, seq: int) -> StoreQueueEntry:
        if self.full:
            raise SimulatorAssertion(0, "store queue overflow")
        entry = StoreQueueEntry(seq)
        self._entries.append(entry)
        if self._stall_memo:
            self._stall_memo = {}
        return entry

    def resolve(self, seq: int, address: int, value: int) -> None:
        """Record a store's computed address and data."""
        for entry in self._entries:
            if entry.seq == seq:
                entry.address = address & WORD_MASK
                entry.value = value & WORD_MASK
                if self._stall_memo:
                    self._stall_memo = {}
                return

    def forward_for_load(
        self, load_seq: int, address: int
    ) -> Tuple[bool, Optional[int]]:
        """Search older stores for a forwardable value.

        Returns:
            ``(must_stall, value)``. ``must_stall`` is True when an older
            store's address is still unknown (conservative ordering).
            ``value`` is the newest older matching store's data, or None to
            read memory.
        """
        address &= WORD_MASK
        if self._stall_memo.get(load_seq) == address:
            return True, None
        value: Optional[int] = None
        for entry in self._entries:
            if entry.seq >= load_seq:
                continue
            if entry.address is None:
                self._stall_memo[load_seq] = address
                return True, None
            if entry.address == address:
                value = entry.value
        return False, value

    def release(self, seq: int) -> Optional[StoreQueueEntry]:
        """Free the entry of a committing store (oldest-first by design)."""
        for i, entry in enumerate(self._entries):
            if entry.seq == seq:
                if self._stall_memo:
                    self._stall_memo = {}
                return self._entries.pop(i)
        return None

    def squash_after(self, offender_seq: int) -> None:
        """Drop entries younger than the flush offender."""
        self._entries = [e for e in self._entries if e.seq <= offender_seq]
        if self._stall_memo:
            self._stall_memo = {}

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the in-flight stores as plain tuples."""
        return tuple((e.seq, e.address, e.value) for e in self._entries)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        self._entries = [
            StoreQueueEntry(seq, address, value)
            for seq, address, value in state
        ]
        self._stall_memo = {}
