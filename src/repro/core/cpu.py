"""Cycle-level out-of-order core with a full register renaming subsystem.

The pipeline models exactly the machinery the paper's bug study needs:

* N-wide fetch with a bimodal branch predictor (wrong-path speculation),
* N-wide rename against the RRS arrays of Figure 1 (FL / RAT / ROB / RHT /
  CKPT), including same-cycle same-Ldst groups,
* out-of-order issue/execute over a merged physical register file with real
  values (so rename bugs corrupt dataflow organically, as in Figure 2),
* in-order commit with Pdst reclamation to the Free List,
* multi-cycle flush recovery behind a pluggable strategy
  (:mod:`repro.core.recovery`): the paper's checkpoint restore + RHT walks
  by default, with ROB-walk and checkpoint-free schemes as config axes.

Stages are evaluated in reverse pipeline order each cycle so structural
hazards behave like hardware reading last cycle's state. All RRS port
traffic flows through control signals that a bug injector can suppress
(:mod:`repro.core.rrs.signals`), and through observer events that the
detectors consume (:mod:`repro.core.rrs.ports`).
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.branch import BimodalPredictor, GSharePredictor
from repro.core.config import CoreConfig
from repro.core.errors import (
    DeadlineExceeded,
    DeadlockError,
    MemoryFault,
)
from repro.core.lsq import DataMemory, StoreQueue
from repro.core.recovery import make_recovery_strategy
from repro.core.regfile import PhysicalRegisterFile
from repro.core.rrs.checkpoint import CheckpointTable
from repro.core.rrs.free_list import make_free_list
from repro.core.rrs.ports import RRSObserver, listeners, overrides_hook
from repro.core.rrs.rat import RegisterAliasTable
from repro.core.rrs.rht import RegisterHistoryTable
from repro.core.rrs.rob import ReorderBuffer
from repro.core.rrs.signals import SignalFabric
from repro.core.uop import Uop, UopState
from repro.isa.instructions import (
    Instruction,
    NUM_LOGICAL_REGS,
    Opcode,
    WORD_MASK,
)
from repro.isa.program import Program
from repro.isa.semantics import branch_taken, execute_op


def _zero_idiom(inst: Instruction) -> bool:
    """Zero idioms renameable to the shared zero register (V.E)."""
    if inst.opcode is Opcode.LI and inst.imm == 0:
        return True
    return (
        inst.opcode in (Opcode.XOR, Opcode.SUB) and inst.rs1 == inst.rs2
    )


#: Sentinel finish cycle: "no in-flight op ever completes". Large enough
#: that ``_min_finish - 1`` still exceeds any reachable cycle budget.
_NEVER = 1 << 62

#: When non-None, cores constructed afterwards accumulate per-stage wall
#: time (ns) into this dict; see :func:`enable_stage_profiling`. A module
#: global rather than per-core state so the zero-overhead default path
#: stays a plain method call.
STAGE_PROFILE: Optional[Dict[str, int]] = None

_PROFILE_BUCKETS = (
    "fetch",
    "rename",
    "issue",
    "execute",
    "commit",
    "flush",
    "recovery",
    "observer",
    "fast_forward",
    "cycles",
)


def enable_stage_profiling() -> Dict[str, int]:
    """Turn on per-stage wall-time attribution for cores built afterwards.

    Returns the live accumulator dict: ns per pipeline-stage bucket, plus
    a ``cycles`` count of profiled steps. Profiled cores pay a
    ``perf_counter_ns`` pair per stage, so this is for the dedicated
    ``bench --profile`` pass, never the timed passes.
    """
    global STAGE_PROFILE
    STAGE_PROFILE = {bucket: 0 for bucket in _PROFILE_BUCKETS}
    return STAGE_PROFILE


def disable_stage_profiling() -> None:
    """Turn stage profiling back off (cores built afterwards are clean)."""
    global STAGE_PROFILE
    STAGE_PROFILE = None


@dataclass
class RunResult:
    """Outcome of a (possibly truncated) simulation.

    The commit trace is split into the committed PC sequence and the cycle
    stamps so the classifier can distinguish the paper's *Performance*
    class (same instructions, different cycles) from *Control Flow
    Deviation* (different instructions) cheaply.
    """

    program_name: str
    cycles: int
    halted: bool
    output: List[int]
    commit_pcs: List[int]
    commit_cycles: List[int]
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def committed(self) -> int:
        return len(self.commit_pcs)


class OoOCore:
    """The simulated core. One instance runs one program once."""

    def __init__(
        self,
        program: Program,
        config: Optional[CoreConfig] = None,
        observers: Sequence[RRSObserver] = (),
        fabric: Optional[SignalFabric] = None,
        parity_protect: bool = False,
    ) -> None:
        self.program = program
        self.config = config or CoreConfig()
        self.fabric = fabric or SignalFabric()
        self.observers: List[RRSObserver] = list(observers)
        # Per-event dispatch lists: only observers that override a hook are
        # called for it, so a hook nobody overrides costs nothing per event.
        self._on_recovery_begin = listeners(self.observers, "recovery_begin")
        self._on_recovery_end = listeners(self.observers, "recovery_end")
        self._on_flush_initiated = listeners(self.observers, "flush_initiated")
        self._on_checkpoint_restored = listeners(
            self.observers, "checkpoint_restored"
        )
        self._on_load_replay = listeners(self.observers, "load_replay")
        self._on_pipeline_empty = listeners(self.observers, "pipeline_empty")
        self._on_cycle_end = listeners(self.observers, "cycle_end")

        cfg = self.config
        self.zero_pdst = cfg.zero_pdst
        # Optional per-entry parity on the PdstID storage (the orthogonal
        # protection of Section V.D; see repro.idld.parity).
        self.parity: Dict[str, object] = {}
        if parity_protect:
            from repro.idld.parity import ParityStore

            self.parity = {
                "FL": ParityStore("FL"),
                "RAT": ParityStore("RAT"),
                "ROB": ParityStore("ROB"),
            }
        self.free_list = make_free_list(
            cfg.free_list_discipline, cfg.free_list_entries, self.fabric,
            self.observers, parity=self.parity.get("FL"),
        )
        self.rat = RegisterAliasTable(
            NUM_LOGICAL_REGS, self.fabric, self.observers,
            zero_pdst=self.zero_pdst, parity=self.parity.get("RAT"),
        )
        self.rob = ReorderBuffer(
            cfg.rob_entries, self.fabric, self.observers,
            zero_pdst=self.zero_pdst, parity=self.parity.get("ROB"),
        )
        self.rht = RegisterHistoryTable(cfg.rht_entries, self.fabric, self.observers)
        self.ckpt = CheckpointTable(cfg.num_checkpoints, self.fabric, self.observers)
        # One extra physical register backs the hardwired zero when the
        # zero-idiom optimization is on; it stays outside the token set.
        prf_size = cfg.num_physical_regs + (1 if self.zero_pdst is not None else 0)
        self.prf = PhysicalRegisterFile(prf_size)
        self.memory = DataMemory(cfg.memory_limit, program.initial_memory)
        self.store_queue = StoreQueue(cfg.store_queue_entries)
        if cfg.predictor_kind == "gshare":
            self.predictor = GSharePredictor(
                cfg.predictor_entries, cfg.predictor_history_bits
            )
        else:
            self.predictor = BimodalPredictor(cfg.predictor_entries)
        self.recovery_strategy = make_recovery_strategy(
            cfg.recovery_strategy, self
        )
        # Array-accelerated hot stages (flat bitmask wakeup scoreboard).
        # Resolved once: the toggle is a host-side throughput knob with
        # bit-identical observable behavior (see CoreConfig.accel).
        self._accel = cfg.accel_enabled()
        # Quiescence-aware fast-forward: legal only when every attached
        # per-cycle listener is bulk-replayable under the protocol in
        # ports.py. One unproven listener disables skipping for this core
        # entirely (the conservative fallback is exactly today's per-cycle
        # behavior, so an unknown observer can never change an outcome).
        env = os.environ.get("REPRO_FAST_FORWARD", "").strip().lower()
        ff_enabled = env not in ("0", "off", "false")
        replays: List = []
        for obs in self.observers:
            if overrides_hook(obs, "pipeline_empty") or overrides_hook(
                obs, "cycle_end"
            ):
                replay = getattr(obs, "fast_forward", None)
                if replay is None:
                    ff_enabled = False
                    replays = []
                    break
                replays.append(replay)
        self._ff_replay: Tuple = tuple(replays)
        self.fast_forward_enabled = ff_enabled
        self._profile = STAGE_PROFILE
        if self._profile is not None:
            # Bind the instrumented stepper as an instance attribute so the
            # default hot path keeps zero profiling overhead.
            self.step = self._step_profiled  # type: ignore[method-assign]
        # Static per-PC decode tables. Latency, issue-queue occupancy and
        # the zero-idiom test depend only on the instruction, yet rename
        # and issue consulted them for every uop; indexing by PC takes the
        # enum hashing and attribute chains off the per-cycle path.
        instructions = program.instructions
        self._latency_of = tuple(
            cfg.latencies.get(inst.opcode, 1) for inst in instructions
        )
        self._needs_queue = tuple(
            self._needs_issue_queue(inst) for inst in instructions
        )
        self._zero_idiom_of = tuple(
            _zero_idiom(inst) for inst in instructions
        )
        self._sources_of = tuple(
            inst.source_registers() for inst in instructions
        )
        # Occupancy threshold for the emergency-checkpoint guard in step().
        self._rht_emergency = cfg.rht_entries - cfg.width
        self.reset()

    # -- lifecycle -------------------------------------------------------------

    def reset(self) -> None:
        """Power-on: logical register i maps to Pdst i; the rest are free."""
        cfg = self.config
        initial_rat = list(range(NUM_LOGICAL_REGS))
        initial_free = list(range(NUM_LOGICAL_REGS, cfg.num_physical_regs))
        self.rat.reset(initial_rat)
        self.free_list.reset(initial_free)
        self.rob.reset()
        self.rht.reset()
        self.ckpt.reset(initial_rat)
        self.prf.reset()
        self.memory = DataMemory(cfg.memory_limit, self.program.initial_memory)
        self.store_queue.reset()
        self.predictor.reset()

        self.cycle = 0
        self.fabric.cycle = 0
        self.halted = False
        self.fetch_pc = 0
        self.fetch_stalled = False
        self.fetch_queue: Deque[Uop] = deque()
        self.issue_queue: List[Uop] = []
        # Actionable subsequence of issue_queue (seq order): uops worth an
        # issue attempt this cycle. Source-blocked uops leave the scan and
        # re-enter via the wakeup scoreboard when their pdst is written.
        self._issue_scan: List[Uop] = []
        self.executing: List[Tuple[int, Uop]] = []
        # Lower bound on the earliest finish cycle in ``executing``
        # (exactly the min when maintained by _execute_stage; a stale-low
        # value only costs a harmless extra stage evaluation). Gates the
        # execute stage and bounds fast-forward jumps.
        self._min_finish = _NEVER
        #: Cycles elapsed through fast-forward jumps rather than steps.
        #: Deliberately NOT in ``stats`` (and so absent from save_state):
        #: skipping must be invisible to every state digest.
        self.ff_cycles_skipped = 0
        self.pending_flushes: List[Uop] = []
        # Issue wakeup scoreboard: pdst -> uops whose issue attempt stalled
        # on that (not-ready) source. A blocked uop is skipped by the issue
        # stage until the pdst is written; skipping is behavior-identical
        # because a source-blocked issue attempt has no side effects.
        self._wakeups: Dict[int, List[Uop]] = {}
        #: In-progress recovery state; shape is strategy-specific.
        self.recovery = None
        self.allocs_since_checkpoint = 0
        self.output: List[int] = []
        self.commit_pcs: List[int] = []
        self.commit_cycles: List[int] = []
        self.last_progress_cycle = 0
        self.stats: Dict[str, int] = {
            "fetched": 0,
            "renamed": 0,
            "flushes": 0,
            "mispredicts": 0,
            "checkpoints": 0,
            "checkpoints_skipped": 0,
            "recovery_cycles": 0,
            "load_replays": 0,
        }
        for obs in self.observers:
            obs.power_on(
                cfg.num_physical_regs,
                NUM_LOGICAL_REGS,
                list(initial_free),
                list(initial_rat),
            )
            # Slot 0 anchors the power-on architectural state.
            obs.checkpoint_content(0, 0)
            obs.checkpoint_meta(0, 0)

    # -- main loop ----------------------------------------------------------------

    def run(
        self,
        max_cycles: int = 2_000_000,
        deadline: Optional[float] = None,
    ) -> RunResult:
        """Simulate until HALT commits or ``max_cycles`` elapse.

        Args:
            max_cycles: Simulated-cycle budget.
            deadline: Optional absolute ``time.monotonic()`` instant the
                harness allows this run to occupy; checked cooperatively
                every 1024 cycles so the per-cycle cost is negligible.

        Raises:
            SimulatorAssertion: The *Assert* outcome class.
            MemoryFault: The *Crash* outcome class.
            DeadlockError: Folded into the *Timeout* class by the campaign.
            DeadlineExceeded: The harness wall-clock budget expired (a
                resource-policy event, never a simulated-bug outcome).
        """
        self.run_cycles(max_cycles, deadline=deadline)
        return self.result()

    def run_cycles(
        self,
        until_cycle: int,
        deadline: Optional[float] = None,
        started: Optional[float] = None,
    ) -> float:
        """Advance until ``self.cycle >= until_cycle`` or HALT commits.

        The stepping loop of :meth:`run` (same deadlock and cooperative
        deadline checks) without the :meth:`result` construction, so
        callers that interleave simulation with state inspection — the
        differential convergence loop — don't pay an O(trace) trace copy
        per pause. ``started`` threads the wall-clock origin through
        successive chunks so :class:`DeadlineExceeded` reports the elapsed
        time of the whole run; the (possibly fresh) origin is returned for
        the next chunk.
        """
        if started is None:
            started = time.monotonic()
        ff = self.fast_forward_enabled
        fabric = self.fabric
        deadlock_cycles = self.config.deadlock_cycles
        fetch_cap = self.config.fetch_buffer_entries
        step = self.step  # possibly the profiled instance binding
        while not self.halted and self.cycle < until_cycle:
            step()
            if self.cycle - self.last_progress_cycle > deadlock_cycles:
                raise DeadlockError(self.cycle)
            if deadline is not None and not self.cycle & 1023:
                now = time.monotonic()
                if now > deadline:
                    raise DeadlineExceeded(self.cycle, now - started)
            # Quiescence-aware fast-forward. The cheap discriminators run
            # inline so a busy core pays one int compare per cycle: a step
            # that made progress can never open a quiescent span, and a
            # front end still fetching changes state every cycle. The full
            # (stage-by-stage) quiescence proof lives in
            # _try_fast_forward, which jumps only when every stage is
            # provably a no-op until the next event.
            if (
                ff
                and self.last_progress_cycle != self.cycle
                and self.recovery is None
                and not self.pending_flushes
                and not self.halted
                and self.cycle < until_cycle
                and (
                    self.fetch_stalled
                    or len(self.fetch_queue) >= fetch_cap
                )
                and not fabric.any_armed
            ):
                if self._profile is None:
                    self._try_fast_forward(until_cycle)
                else:
                    t0 = time.perf_counter_ns()
                    try:
                        self._try_fast_forward(until_cycle)
                    finally:
                        self._profile["fast_forward"] += (
                            time.perf_counter_ns() - t0
                        )
        return started

    def _try_fast_forward(self, until_cycle: int) -> None:
        """Bulk-advance over a span of provably event-free cycles.

        Caller (run_cycles) has already established: not halted, no
        recovery in progress, no pending flush, the signal fabric idle,
        and a fetch stage that cannot act (stalled or buffer full). This
        method completes the quiescence proof stage by stage -- commit,
        checkpoint anchor, rename, issue -- and jumps ``self.cycle`` to
        the earliest future event: the next execute completion, the
        deadlock horizon, or ``until_cycle``. Per-cycle observer hooks
        over the span are replayed in bulk through each listener's
        ``fast_forward`` method (ports.py protocol); per-cycle detector
        state and every save_state digest are exactly what step-by-step
        execution would have produced, or the jump is not taken.
        """
        rob = self.rob
        cfg = self.config
        if rob.empty:
            # The emergency checkpoint would mutate CKPT/RHT state.
            if self.rht.occupancy >= self.rht.capacity - cfg.width:
                return
            pipeline_empty = True
        else:
            slot = rob.head_slot
            uop = slot.uop if slot is not None else None
            if uop is not None and uop.state is UopState.DONE:
                return  # commit would make progress
            pipeline_empty = False
        if not self.ckpt.retire_settled(rob.head_pos, self.rht.head_pos):
            return  # anchor maintenance might still mutate CKPT/RHT
        if self.fetch_queue:
            # Rename must be structurally blocked on the head uop (gate
            # order mirrors _rename_stage: any one blocking gate stops
            # the whole group before the checkpoint-interval capture).
            if not rob.full and self.rht.occupancy < self.rht.capacity:
                head = self.fetch_queue[0]
                inst = head.inst
                eliminated = (
                    self.zero_pdst is not None
                    and self._zero_idiom_of[head.pc]
                )
                blocked = (
                    (
                        inst.writes_register
                        and not eliminated
                        and self.free_list.count <= 0
                    )
                    or (
                        self._needs_queue[head.pc]
                        and not eliminated
                        and len(self.issue_queue) >= cfg.issue_queue_entries
                    )
                    or (inst.is_store and self.store_queue.full)
                )
                if not blocked:
                    return  # rename would make progress
        # Issue: every actionable uop must stay un-issuable for the whole
        # span. Nothing writes the PRF before the next completion, so
        # source readiness is frozen; commit and rename are blocked, so
        # the store queue is frozen and a replay-stalled load stays
        # stalled. Source-blocked uops are left in the scan un-parked:
        # parking is save_state-invisible and the next real step re-parks
        # them with zero side effects.
        stalled_loads = 0
        prf = self.prf
        ready_mask = prf.ready_mask
        for uop in self._issue_scan:
            if self._accel:
                source_blocked = uop.src_mask & ~ready_mask
            else:
                source_blocked = False
                for pdst in uop.src_pdsts:
                    if not prf.is_ready(pdst):
                        source_blocked = True
                        break
            if source_blocked:
                continue
            inst = uop.inst
            if not inst.is_load:
                return  # would issue
            address = (prf.read(uop.src_pdsts[0]) + inst.imm) & WORD_MASK
            must_stall, _ = self.store_queue.forward_for_load(
                uop.seq, address
            )
            if not must_stall:
                return  # the load would issue
            stalled_loads += 1
        if stalled_loads and self._on_load_replay:
            return  # per-cycle replay events are not bulk-replayable
        cycle = self.cycle
        target = until_cycle
        if self._min_finish - 1 < target:
            target = self._min_finish - 1
        deadlock_at = self.last_progress_cycle + cfg.deadlock_cycles + 1
        wedged = deadlock_at <= target
        if wedged:
            target = deadlock_at
        span = target - cycle
        if span <= 0:
            return
        self.cycle = target
        self.fabric.cycle = target
        if stalled_loads:
            # Each replay-stalled load retries (and counts) every cycle.
            self.stats["load_replays"] += stalled_loads * span
        for replay in self._ff_replay:
            replay(cycle, target, pipeline_empty)
        self.ff_cycles_skipped += span
        if wedged:
            # Mirror the lockstep loop exactly: hooks for the deadlock
            # cycle have fired (above) before the raise.
            raise DeadlockError(target)

    def result(self) -> RunResult:
        stats = dict(self.stats)
        stats["cycles"] = self.cycle
        return RunResult(
            program_name=self.program.name,
            cycles=self.cycle,
            halted=self.halted,
            output=list(self.output),
            commit_pcs=list(self.commit_pcs),
            commit_cycles=list(self.commit_cycles),
            stats=stats,
        )

    def step(self) -> None:
        """Advance one clock cycle."""
        cycle = self.cycle + 1
        self.cycle = cycle
        self.fabric.cycle = cycle
        if self.recovery is not None:
            self.recovery_strategy.step()
            self.stats["recovery_cycles"] += 1
            self.last_progress_cycle = cycle
        else:
            self._commit_stage()
        # Stage gates: each skipped call is one the stage body would have
        # early-returned from (execute: nothing in flight finishes before
        # _min_finish; flush/issue: empty work lists), so gating is pure
        # call-overhead removal with identical state evolution.
        if self._min_finish <= cycle:
            self._execute_stage()
        if self.pending_flushes:
            self._flush_arbitration()
        if self._issue_scan:
            self._issue_stage()
        rob = self.rob
        if self.recovery is None and not self.halted:
            # Emergency-checkpoint guard inlined: it only ever applies to
            # an empty ROB with a nearly-full RHT, so the common cycle
            # pays two pointer compares instead of a call + properties.
            rht = self.rht
            if (
                rht._tail - rht._head >= self._rht_emergency
                and rob._tail - rob._head <= 0
            ):
                self._maybe_emergency_checkpoint()
            self._rename_stage()
            self._fetch_stage()
        if (
            self._on_pipeline_empty
            and rob._tail - rob._head <= 0
            and self.recovery is None
        ):
            for hook in self._on_pipeline_empty:
                hook(cycle)
        for hook in self._on_cycle_end:
            hook(cycle)

    def _step_profiled(self) -> None:
        """:meth:`step` with per-stage wall-time attribution.

        Bound over ``step`` as an instance attribute when the core is
        constructed under :func:`enable_stage_profiling`. Must mirror
        :meth:`step` exactly apart from the timers.
        """
        prof = self._profile
        perf = time.perf_counter_ns
        cycle = self.cycle + 1
        self.cycle = cycle
        self.fabric.cycle = cycle
        prof["cycles"] += 1
        t0 = perf()
        if self.recovery is not None:
            self.recovery_strategy.step()
            self.stats["recovery_cycles"] += 1
            self.last_progress_cycle = cycle
            t1 = perf()
            prof["recovery"] += t1 - t0
        else:
            self._commit_stage()
            t1 = perf()
            prof["commit"] += t1 - t0
        if self._min_finish <= cycle:
            self._execute_stage()
        t2 = perf()
        prof["execute"] += t2 - t1
        if self.pending_flushes:
            self._flush_arbitration()
            t3 = perf()
            prof["flush"] += t3 - t2
            t2 = t3
        if self._issue_scan:
            self._issue_stage()
        t3 = perf()
        prof["issue"] += t3 - t2
        if self.recovery is None and not self.halted:
            rht = self.rht
            if (
                rht._tail - rht._head >= self._rht_emergency
                and self.rob._tail - self.rob._head <= 0
            ):
                self._maybe_emergency_checkpoint()
            self._rename_stage()
            t4 = perf()
            prof["rename"] += t4 - t3
            self._fetch_stage()
            t3 = perf()
            prof["fetch"] += t3 - t4
        if (
            self._on_pipeline_empty
            and self.rob.empty
            and self.recovery is None
        ):
            for hook in self._on_pipeline_empty:
                hook(cycle)
        for hook in self._on_cycle_end:
            hook(cycle)
        prof["observer"] += perf() - t3

    # -- commit -------------------------------------------------------------------

    def _commit_stage(self, blocked: Optional[set] = None) -> None:
        # Hot path: the head peek and occupancy test read the ROB ring
        # directly (the head_slot property plus two property reads per
        # attempt were a measurable slice of commit time); commit_read()
        # still drives the reclaim bus with its gating and events intact.
        rob = self.rob
        slots = rob._slots
        rob_capacity = rob.capacity
        cycle = self.cycle
        done = UopState.DONE
        committed = 0
        for _ in range(self.config.width):
            head = rob._head
            if rob._tail - head <= 0:
                break
            uop: Uop = slots[head % rob_capacity].uop
            if uop is None or uop.state is not done:
                break
            if blocked is not None and id(uop) in blocked:
                # Checkpoint-free drain: stop at a resolved mispredict whose
                # own flush is still pending -- the work behind it is
                # wrong-path and must never commit.
                break
            inst = uop.inst
            if uop.fault is not None:
                raise MemoryFault(cycle, uop.fault)
            if inst.is_store:
                self.memory.committed_write(cycle, uop.mem_address, uop.result)
                self.store_queue.release(uop.seq)
            elif inst.is_load:
                self.memory.check_committed_read(cycle, uop.mem_address)
            elif inst.opcode is Opcode.OUT:
                self.output.append(uop.result)
            reclaim_has_dest, reclaim_pdst = rob.commit_read()
            if reclaim_has_dest:
                self.free_list.push(reclaim_pdst)
            self.commit_pcs.append(uop.pc)
            self.commit_cycles.append(cycle)
            committed += 1
            if inst.is_halt:
                self.halted = True
                break
        if committed:
            self.last_progress_cycle = cycle
        # Anchor maintenance: retire old checkpoints, free RHT entries.
        # retire_settled is a pure memo peek; when it holds, retire_anchor
        # and advance_head would both no-op, so skipping them is identical.
        if not self.ckpt.retire_settled(rob._head, self.rht._head):
            anchor = self.ckpt.retire_anchor(rob._head)
            if anchor is not None:
                self.rht.advance_head(anchor.rht_pos)

    # -- execute ---------------------------------------------------------------------

    def _execute_stage(self) -> None:
        if not self.executing:
            self._min_finish = _NEVER
            return
        cycle = self.cycle
        still: List[Tuple[int, Uop]] = []
        min_finish = _NEVER
        for finish, uop in self.executing:
            if uop.state is UopState.SQUASHED:
                continue
            if finish <= cycle:
                self._complete(uop)
            else:
                still.append((finish, uop))
                if finish < min_finish:
                    min_finish = finish
        self.executing = still
        self._min_finish = min_finish

    def _complete(self, uop: Uop) -> None:
        inst = uop.inst
        pdst = uop.pdst
        if pdst is not None:
            # Writeback inlined (prf.write is three statements and this is
            # the hottest producer path); keeps list + mask in lockstep.
            prf = self.prf
            prf._values[pdst] = uop.result
            prf._ready[pdst] = True
            prf.ready_mask |= 1 << pdst
            waiters = self._wakeups.pop(pdst, None)
            if waiters is not None:
                for waiter in waiters:
                    waiter.wait_pdst = None
                    if waiter.state is not UopState.SQUASHED:
                        self._scan_insert(waiter)
        uop.state = UopState.DONE
        uop.done_cycle = self.cycle
        if inst.is_branch:
            mispredicted = (
                uop.taken != uop.predicted_taken
                or uop.actual_target != uop.predicted_target
            )
            self.predictor.update(uop.pred_state, uop.taken, mispredicted)
            if mispredicted:
                self.stats["mispredicts"] += 1
                self.pending_flushes.append(uop)

    # -- flush arbitration ----------------------------------------------------------------

    def _flush_arbitration(self) -> None:
        if not self.pending_flushes:
            return
        self.pending_flushes = [
            u for u in self.pending_flushes if u.state is not UopState.SQUASHED
        ]
        if self.recovery is not None or not self.pending_flushes:
            return
        offender = min(self.pending_flushes, key=lambda u: u.seq)
        self.pending_flushes.remove(offender)
        self._begin_recovery(offender)

    def _begin_recovery(self, offender: Uop) -> None:
        self.stats["flushes"] += 1
        for hook in self._on_recovery_begin:
            hook(self.cycle)
        f_seq = offender.seq
        rht_tail_at_flush = self.rht.tail_pos
        # Squash younger in-flight work everywhere.
        squashed = len(self.fetch_queue)
        self.fetch_queue = deque()
        for uop in self.issue_queue:
            if uop.seq > f_seq:
                uop.state = UopState.SQUASHED
        self.issue_queue = [u for u in self.issue_queue if u.seq <= f_seq]
        self._issue_scan = [
            u for u in self.issue_queue if u.wait_pdst is None
        ]
        for _, uop in self.executing:
            if uop.seq > f_seq:
                uop.state = UopState.SQUASHED
        self.executing = [(c, u) for c, u in self.executing if u.seq <= f_seq]
        min_finish = _NEVER
        for finish, _surv in self.executing:
            if finish < min_finish:
                min_finish = finish
        self._min_finish = min_finish
        # Every renamed in-flight uop owns a ROB slot, so the ROB walk (plus
        # the not-yet-renamed fetch queue) counts each squash exactly once.
        for slot in self.rob.live_slots():
            if slot.seq > f_seq and slot.uop is not None:
                slot.uop.state = UopState.SQUASHED
                squashed += 1
        for hook in self._on_flush_initiated:
            hook(self.cycle, f_seq, squashed)
        self.store_queue.squash_after(f_seq)
        # Everything from the ROB squash onward is scheme-specific.
        self.recovery_strategy.begin(offender, f_seq, rht_tail_at_flush)

    # -- issue / execute entry -----------------------------------------------------------------

    def _scan_insert(self, uop: Uop) -> None:
        """Re-enter a woken uop into the actionable scan at its seq slot."""
        scan = self._issue_scan
        seq = uop.seq
        if not scan or scan[-1].seq <= seq:
            scan.append(uop)
            return
        lo, hi = 0, len(scan)
        while lo < hi:
            mid = (lo + hi) // 2
            if scan[mid].seq < seq:
                lo = mid + 1
            else:
                hi = mid
        scan.insert(lo, uop)

    def _issue_stage(self) -> None:
        scan = self._issue_scan
        if not scan:
            return
        issued = 0
        width = self.config.issue_width
        keep: List[Uop] = []
        keep_append = keep.append
        changed = False
        # The issue attempt is inlined (formerly _try_issue): it runs once
        # per actionable uop per cycle, and nothing inside the loop writes
        # the PRF, so the ready mask and every port below are loop
        # invariants.
        prf = self.prf
        prf_read = prf.read
        is_ready = prf.is_ready
        ready_mask = prf.ready_mask
        accel = self._accel
        wakeups = self._wakeups
        store_queue = self.store_queue
        memory_read = self.memory.read
        memory_limit = self.config.memory_limit
        latency_of = self._latency_of
        executing_append = self.executing.append
        cycle = self.cycle
        min_finish = self._min_finish
        stats = self.stats
        on_load_replay = self._on_load_replay
        executing_state = UopState.EXECUTING
        for i, uop in enumerate(scan):
            if issued >= width:
                # Width exhausted: the rest stays actionable, untried --
                # exactly what the full queue walk did.
                keep.extend(scan[i:])
                break
            inst = uop.inst
            # Flat-scoreboard wakeup check: all sources ready iff no bit of
            # src_mask is missing from the PRF ready mask. On a miss, park
            # on the first not-ready source in operand order -- identical
            # wait_pdst choice to the scalar walk the fallback runs.
            wait = None
            if not accel or uop.src_mask & ~ready_mask:
                for pdst in uop.src_pdsts:
                    if not is_ready(pdst):
                        wait = pdst
                        break
            if wait is not None:
                # Source-blocked: parked in the wakeup scoreboard.
                uop.wait_pdst = wait
                waiters = wakeups.get(wait)
                if waiters is None:
                    wakeups[wait] = [uop]
                else:
                    waiters.append(uop)
                changed = True
                continue
            if inst.is_load:
                # Loads check store-queue ordering before anything else: a
                # stalled load retries every cycle (replay counts and
                # events must match the unoptimized engine), so its path
                # reads only the address base instead of building the full
                # operand list.
                address = (prf_read(uop.src_pdsts[0]) + inst.imm) & WORD_MASK
                must_stall, forwarded = store_queue.forward_for_load(
                    uop.seq, address
                )
                if must_stall:
                    stats["load_replays"] += 1
                    for hook in on_load_replay:
                        hook(cycle, uop.seq)
                    # Replay-stalled load: must retry (and count) every
                    # cycle.
                    keep_append(uop)
                    continue
                uop.mem_address = address
                if address >= memory_limit:
                    uop.fault = address
                    uop.result = 0
                else:
                    uop.result = (
                        forwarded if forwarded is not None
                        else memory_read(address)
                    )
            else:
                values = [prf_read(p) for p in uop.src_pdsts]
                if inst.is_store:
                    address = (values[0] + inst.imm) & WORD_MASK
                    uop.mem_address = address
                    uop.result = values[1]
                    if address >= memory_limit:
                        uop.fault = address
                    store_queue.resolve(uop.seq, address, values[1])
                elif inst.is_branch:
                    uop.taken = branch_taken(inst.opcode, values[0], values[1])
                    uop.actual_target = (
                        inst.target if uop.taken else uop.pc + 1
                    )
                elif inst.opcode is Opcode.OUT:
                    uop.result = values[0]
                elif inst.opcode is Opcode.LI:
                    uop.result = inst.imm & WORD_MASK
                elif inst.uses_immediate:
                    uop.result = execute_op(inst.opcode, values[0], inst.imm)
                else:
                    uop.result = execute_op(inst.opcode, values[0], values[1])
            uop.state = executing_state
            finish = cycle + latency_of[uop.pc]
            executing_append((finish, uop))
            if finish < min_finish:
                min_finish = finish
            issued += 1
            changed = True
        self._min_finish = min_finish
        if changed:
            self._issue_scan = keep
        if issued:
            self.last_progress_cycle = self.cycle
            # Issued uops are EXECUTING now; everything still waiting keeps
            # its queue slot (and its claim on the issue-queue capacity).
            waiting = UopState.WAITING
            self.issue_queue = [
                u for u in self.issue_queue if u.state is waiting
            ]

    # -- rename --------------------------------------------------------------------------

    def _maybe_emergency_checkpoint(self) -> None:
        """Keep the RHT drainable when checkpoint slots ran dry.

        If nothing is in flight, the speculative RAT *is* the architectural
        RAT, so a checkpoint at the commit point is always legal; taking one
        lets the anchor advance and the RHT head move (see checkpoint.py).
        """
        if (
            self.rob.empty
            and self.rht.occupancy >= self.rht.capacity - self.config.width
        ):
            slot = self.ckpt.take(
                self.rob.head_pos,
                self.rht.tail_pos,
                self.rat.snapshot(),
                force=True,
            )
            if slot is not None:
                anchor = self.ckpt.retire_anchor(self.rob.head_pos)
                if anchor is not None:
                    self.rht.advance_head(anchor.rht_pos)

    def _rename_stage(self) -> None:
        fetch_queue = self.fetch_queue
        if not fetch_queue:
            return
        cfg = self.config
        rob = self.rob
        rht = self.rht
        rat = self.rat
        free_list = self.free_list
        issue_queue = self.issue_queue
        store_queue = self.store_queue
        ckpt = self.ckpt
        stats = self.stats
        rob_capacity = rob.capacity
        rht_capacity = rht.capacity
        iq_capacity = cfg.issue_queue_entries
        ckpt_interval = cfg.checkpoint_interval
        zero_pdst = self.zero_pdst
        zero_elim = zero_pdst is not None
        zero_idiom_of = self._zero_idiom_of
        needs_queue_of = self._needs_queue
        sources_of = self._sources_of
        # Per-uop rename work is inlined (formerly _rename_one) so the port
        # bindings below are hoisted once per cycle instead of once per
        # renamed instruction.
        rat_read = rat.read
        rat_write = rat.write
        rht_log = rht.log
        rob_allocate = rob.allocate
        free_pop = free_list.pop
        prf_mark = self.prf.mark_pending
        iq_append = issue_queue.append
        scan_append = self._issue_scan.append
        popleft = fetch_queue.popleft
        cycle = self.cycle
        waiting = UopState.WAITING
        done = UopState.DONE
        renamed = 0
        for _ in range(cfg.width):
            if not fetch_queue:
                break
            # Structural gates first (all pure checks, so the order among
            # them is free): a back-pressured cycle breaks before paying
            # for the per-instruction idiom/queue classification. The ROB
            # and RHT occupancy tests read the ring pointers directly;
            # FL count must go through the property because a suppressed
            # (bug-gated) pop freezes it mid-group.
            if rob._tail - rob._head >= rob_capacity:
                break
            if rht._tail - rht._head >= rht_capacity:
                break
            uop = fetch_queue[0]
            inst = uop.inst
            pc = uop.pc
            eliminated = zero_elim and zero_idiom_of[pc]
            needs_queue = needs_queue_of[pc] and not eliminated
            if inst.writes_register and not eliminated and free_list.count <= 0:
                break
            if needs_queue and len(issue_queue) >= iq_capacity:
                break
            if inst.is_store and store_queue.full:
                break
            if self.allocs_since_checkpoint >= ckpt_interval:
                taken = ckpt.take(rob._tail, rht._tail, rat.snapshot())
                if taken is not None:
                    stats["checkpoints"] += 1
                    self.allocs_since_checkpoint = 0
                else:
                    stats["checkpoints_skipped"] += 1
            popleft()
            seq = rob._tail
            uop.seq = seq
            if eliminated:
                # Eliminated at rename: no Pdst allocation, no execution.
                # The RAT points the destination at the shared zero
                # register with the duplicate-marking signal asserted.
                rd = inst.rd
                evicted = rat_read(rd)
                rat.write_zero_idiom(rd)
                rht_log(True, rd, zero_pdst)
                rob_allocate(seq, uop, True, evicted, zero_pdst)
                uop.pdst = None
                uop.evicted_pdst = evicted
                uop.src_pdsts = []
                uop.state = done
                uop.done_cycle = cycle
            else:
                srcs = [rat_read(s) for s in sources_of[pc]]
                uop.src_pdsts = srcs
                mask = 0
                for src in srcs:
                    mask |= 1 << src
                uop.src_mask = mask
                if inst.writes_register:
                    rd = inst.rd
                    pdst = free_pop()
                    evicted = rat_read(rd)
                    rat_write(rd, pdst)
                    # The RHT taps the allocation bus before the RAT write
                    # port, so it logs the *uncorrupted* identifier
                    # (Section III.B: a corrupted PdstID "is possible to
                    # recover... from RHT").
                    rht_log(True, rd, pdst)
                    rob_allocate(seq, uop, True, evicted, pdst)
                    prf_mark(pdst)
                    uop.pdst = pdst
                    uop.evicted_pdst = evicted
                else:
                    rht_log(False, 0, 0)
                    rob_allocate(seq, uop, False, 0, -1)
                if inst.is_store:
                    store_queue.allocate(seq)
                if needs_queue:
                    uop.state = waiting
                    iq_append(uop)
                    scan_append(uop)
                else:
                    uop.state = done
                    uop.done_cycle = cycle
            renamed += 1
            self.allocs_since_checkpoint += 1
        if renamed:
            stats["renamed"] += renamed
            self.last_progress_cycle = cycle

    @staticmethod
    def _needs_issue_queue(inst: Instruction) -> bool:
        return inst.opcode not in (Opcode.NOP, Opcode.JMP, Opcode.HALT)

    # -- fetch ------------------------------------------------------------------------------

    def _fetch_stage(self) -> None:
        if self.fetch_stalled:
            return
        cfg = self.config
        fetch_queue = self.fetch_queue
        buffer_entries = cfg.fetch_buffer_entries
        instructions = self.program.instructions
        program_len = len(self.program)
        cycle = self.cycle
        pc = self.fetch_pc
        fetched = 0
        for _ in range(cfg.width):
            if len(fetch_queue) >= buffer_entries:
                break
            if not 0 <= pc < program_len:
                self.fetch_stalled = True
                break
            inst = instructions[pc]
            uop = Uop(seq=-1, pc=pc, inst=inst, fetch_cycle=cycle)
            fetched += 1
            fetch_queue.append(uop)
            if inst.is_halt:
                self.fetch_stalled = True
                break
            if inst.is_jump:
                pc = inst.target
            elif inst.is_branch:
                predicted, uop.pred_state = self.predictor.predict(pc)
                uop.predicted_taken = predicted
                target = inst.target if predicted else pc + 1
                uop.predicted_target = target
                pc = target
            else:
                pc += 1
        self.fetch_pc = pc
        if fetched:
            self.stats["fetched"] += fetched

    # -- warm-start snapshot/restore ----------------------------------------------------------

    def save_state(self, light_trace: bool = False) -> dict:
        """Capture the complete dynamic core state as plain containers.

        In-flight :class:`Uop` objects are interned so the identity sharing
        between the fetch/issue/execute queues, the flush list, and the ROB
        slots survives a round trip. ``inst`` references are not stored;
        they are re-derived from each uop's ``pc`` on load.

        With ``light_trace`` the (monotonically growing) output and commit
        traces are stored as *lengths* only; :meth:`load_state` then slices
        the prefixes out of the golden :class:`RunResult` the snapshot came
        from. This keeps per-snapshot cost O(pipeline), not O(trace).
        """
        uops: List[Uop] = []
        index: Dict[int, int] = {}

        def ref(uop: Optional[Uop]) -> int:
            if uop is None:
                return -1
            key = id(uop)
            pos = index.get(key)
            if pos is None:
                pos = len(uops)
                index[key] = pos
                uops.append(uop)
            return pos

        fetch_queue = tuple(ref(u) for u in self.fetch_queue)
        issue_queue = tuple(ref(u) for u in self.issue_queue)
        executing = tuple((finish, ref(u)) for finish, u in self.executing)
        pending_flushes = tuple(ref(u) for u in self.pending_flushes)
        rob = self.rob.save_state(ref)
        recovery = self.recovery_strategy.save_recovery()
        if light_trace:
            trace = (len(self.output), len(self.commit_pcs))
        else:
            trace = (
                list(self.output),
                list(self.commit_pcs),
                list(self.commit_cycles),
            )
        return {
            "cycle": self.cycle,
            "halted": self.halted,
            "fetch_pc": self.fetch_pc,
            "fetch_stalled": self.fetch_stalled,
            "allocs_since_checkpoint": self.allocs_since_checkpoint,
            "last_progress_cycle": self.last_progress_cycle,
            "stats": dict(self.stats),
            "light_trace": light_trace,
            "trace": trace,
            "uops": tuple(u.save_state() for u in uops),
            "fetch_queue": fetch_queue,
            "issue_queue": issue_queue,
            "executing": executing,
            "pending_flushes": pending_flushes,
            "recovery": recovery,
            "rob": rob,
            "free_list": self.free_list.save_state(),
            "rat": self.rat.save_state(),
            "rht": self.rht.save_state(),
            "ckpt": self.ckpt.save_state(),
            "prf": self.prf.save_state(),
            "memory": self.memory.save_state(),
            "store_queue": self.store_queue.save_state(),
            "predictor": self.predictor.save_state(),
            "parity": {
                name: store.save_state()
                for name, store in self.parity.items()
            },
        }

    def load_state(
        self,
        state: dict,
        trace_source: Optional[RunResult] = None,
    ) -> None:
        """Restore a :meth:`save_state` snapshot into this core.

        The core must have been constructed over the same program and
        config the snapshot came from. The fabric's clock is synchronized
        but its armings are untouched, so a freshly-armed injection fabric
        resumes with its bug still pending.
        """
        instructions = self.program.instructions
        uops = [
            Uop.from_state(data, instructions[data[1]])
            for data in state["uops"]
        ]
        self.cycle = state["cycle"]
        self.fabric.cycle = state["cycle"]
        self.halted = state["halted"]
        self.fetch_pc = state["fetch_pc"]
        self.fetch_stalled = state["fetch_stalled"]
        self.allocs_since_checkpoint = state["allocs_since_checkpoint"]
        self.last_progress_cycle = state["last_progress_cycle"]
        self.stats = dict(state["stats"])
        self.fetch_queue = deque(uops[i] for i in state["fetch_queue"])
        self.issue_queue = [uops[i] for i in state["issue_queue"]]
        # Restored uops all carry wait_pdst=None, so the whole queue starts
        # actionable; blocked ones re-park on their first (side-effect-free)
        # failed attempt.
        self._issue_scan = list(self.issue_queue)
        self.executing = [(finish, uops[i]) for finish, i in state["executing"]]
        min_finish = _NEVER
        for finish, _u in self.executing:
            if finish < min_finish:
                min_finish = finish
        self._min_finish = min_finish
        self.pending_flushes = [uops[i] for i in state["pending_flushes"]]
        # Restored uops come back with wait_pdst=None: each blocked uop
        # retries once (a no-side-effect failure) and re-blocks, so the
        # scoreboard never needs to be part of the snapshot.
        self._wakeups = {}
        self.recovery = self.recovery_strategy.load_recovery(state["recovery"])
        if state["light_trace"]:
            if trace_source is None:
                raise ValueError(
                    "light-trace snapshot needs the golden RunResult it "
                    "was captured from"
                )
            out_len, committed = state["trace"]
            self.output = list(trace_source.output[:out_len])
            self.commit_pcs = list(trace_source.commit_pcs[:committed])
            self.commit_cycles = list(trace_source.commit_cycles[:committed])
        else:
            output, commit_pcs, commit_cycles = state["trace"]
            self.output = list(output)
            self.commit_pcs = list(commit_pcs)
            self.commit_cycles = list(commit_cycles)
        self.rob.load_state(state["rob"], uops)
        self.free_list.load_state(state["free_list"])
        self.rat.load_state(state["rat"])
        self.rht.load_state(state["rht"])
        self.ckpt.load_state(state["ckpt"])
        self.prf.load_state(state["prf"])
        self.memory.load_state(state["memory"])
        self.store_queue.load_state(state["store_queue"])
        self.predictor.load_state(state["predictor"])
        for name, sub in state["parity"].items():
            if name in self.parity:
                self.parity[name].load_state(sub)

    def fingerprint(self) -> tuple:
        """A cheap structural digest used as a convergence pre-filter.

        Every component is a function of :meth:`save_state`-visible state
        (never of ``stats``, which the differential deep compare excludes):
        if two states are structurally equal their fingerprints are equal,
        so a fingerprint mismatch cheaply rules out the expensive deep
        compare without ever ruling out a true convergence.
        """
        return (
            self.halted,
            self.fetch_pc,
            self.fetch_stalled,
            len(self.output),
            len(self.commit_pcs),
            len(self.fetch_queue),
            len(self.issue_queue),
            len(self.executing),
            len(self.pending_flushes),
            self.recovery is None,
            self.allocs_since_checkpoint,
            self.last_progress_cycle,
            self.free_list.count,
            self.rht.occupancy,
        )

    # -- probes -------------------------------------------------------------------------------

    def rrs_id_census(self) -> Dict[int, int]:
        """Count where every PdstID currently lives across FL/RAT/ROB.

        The closed-loop invariant (Section V.A) says this is exactly
        {0..P-1}, once each, whenever the pipeline is quiescent. The
        persistence probe (Figure 4) calls this after HALT commits.
        """
        census: Dict[int, int] = {}
        for pdst in self.free_list.contents():
            census[pdst] = census.get(pdst, 0) + 1
        for pdst in self.rat.contents():
            if pdst != self.zero_pdst:
                census[pdst] = census.get(pdst, 0) + 1
        for pdst in self.rob.live_evicted_ids():
            census[pdst] = census.get(pdst, 0) + 1
        return census

    def census_is_clean(self) -> bool:
        """True when every PdstID appears exactly once in the census."""
        census = self.rrs_id_census()
        if len(census) != self.config.num_physical_regs:
            return False
        return all(count == 1 for count in census.values())
