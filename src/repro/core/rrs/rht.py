"""Register History Table: the per-instruction RAT-change log.

"RHT is a FIFO hardware structure used to log the RAT changes per
instruction, i.e., the logical destination register (if any) for an
instruction and its allocated PdstID." (Section II)

Every renamed instruction writes one entry (destination-less instructions
write an invalid entry) so that flush recovery can locate any instruction
by pure pointer arithmetic from a checkpointed position: a *positive walk*
replays entries between the restored checkpoint and the offending
instruction into the RAT, and a *negative walk* returns the PdstIDs
allocated after the offending instruction to the Free List (Section II).

The walk read pointers are gated per step by the RHT read enable (the
paper's footnote: "RHT uses two read pointers to perform a positive and
negative walk during recovery"); a suppressed step repeats an entry. The
write port (array + write pointer) is gated by the write enable, and the
tail restore on flushes by the RHT recovery signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.ports import RRSObserver
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind


@dataclass
class RHTEntry:
    """Physical storage of one RHT entry (reused as the ring wraps)."""

    has_dest: bool = False
    ldst: int = 0
    new_pdst: int = 0


class RegisterHistoryTable:
    """Circular FIFO log with injectable control signals."""

    def __init__(
        self,
        capacity: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fabric = fabric
        self._observers = observers
        self._entries: List[RHTEntry] = [RHTEntry() for _ in range(capacity)]
        #: Logical monotonic positions; slot index = position % capacity.
        self._head = 0
        self._tail = 0

    def reset(self) -> None:
        self._entries = [RHTEntry() for _ in range(self.capacity)]
        self._head = 0
        self._tail = 0

    # -- occupancy ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._tail - self._head

    @property
    def full(self) -> bool:
        return self.occupancy >= self.capacity

    @property
    def tail_pos(self) -> int:
        return self._tail

    @property
    def head_pos(self) -> int:
        return self._head

    # -- write (rename) -------------------------------------------------------------

    def log(self, has_dest: bool, ldst: int, new_pdst: int) -> None:
        """Append one entry for a renamed instruction.

        Gated by the RHT write enable: a suppressed write leaves the slot's
        stale contents in place *and* freezes the write pointer, so all
        later entries shift by one relative to the sequence numbering the
        recovery walks assume.

        Raises:
            SimulatorAssertion: On append to a full RHT (rename must guard).
        """
        fabric = self._fabric
        tail = self._tail
        if tail - self._head >= self.capacity:
            raise SimulatorAssertion(fabric.cycle, "RHT overflow")
        if not fabric.hot or fabric.asserted(
            ArrayName.RHT, SignalKind.WRITE_ENABLE
        ):
            entry = self._entries[tail % self.capacity]
            entry.has_dest = has_dest
            entry.ldst = ldst
            entry.new_pdst = new_pdst
            self._tail = tail + 1

    # -- walk reads -----------------------------------------------------------------

    def read_slot(self, pos: int) -> RHTEntry:
        """Raw slot access at a logical position (walks do the gating)."""
        return self._entries[pos % self.capacity]

    def walk_advance(self) -> bool:
        """Consult the walk read-pointer enable for one step.

        Returns True when the pointer may advance; a False (suppressed)
        consult means this walk step will be repeated.
        """
        fabric = self._fabric
        return not fabric.hot or fabric.asserted(
            ArrayName.RHT, SignalKind.READ_ENABLE
        )

    # -- recovery / retirement ---------------------------------------------------------

    def restore_tail(self, new_tail: int) -> bool:
        """Move the write pointer back on a flush (Table I recovery action).

        Gated by the RHT recovery signal; returns True when it happened.
        """
        if self._fabric.asserted(ArrayName.RHT, SignalKind.RECOVERY):
            if new_tail < self._head:
                raise SimulatorAssertion(
                    self._fabric.cycle,
                    f"RHT tail restore {new_tail} below head {self._head}",
                )
            self._tail = new_tail
            return True
        return False

    def advance_head(self, new_head: int) -> None:
        """Free entries older than ``new_head`` (anchor checkpoint retired).

        Not a Table I control signal: head advancement is the reclamation
        side of the log and is driven by checkpoint retirement.
        """
        if new_head > self._head:
            self._head = min(new_head, self._tail)

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot every entry (stale slots included: a tail restore after
        a suppressed write replays whatever the storage holds) + pointers."""
        return (
            tuple((e.has_dest, e.ldst, e.new_pdst) for e in self._entries),
            self._head,
            self._tail,
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        entries, head, tail = state
        for entry, (has_dest, ldst, new_pdst) in zip(self._entries, entries):
            entry.has_dest = has_dest
            entry.ldst = ldst
            entry.new_pdst = new_pdst
        self._head = head
        self._tail = tail
