"""Checkpoint table: periodic RAT snapshots for fast flush recovery.

"CKPT is used to take regularly snapshots of the RAT... The Checkpoint
signal is generated at regular intervals; in our design at every fixed
number of ROB entry allocations" (Sections II, III.A).

A checkpoint records the RAT image plus the rename-sequence position and
the RHT write-pointer position at capture time; recovery selects "the
closest previous checkpoint to the offending instruction" and walks the
RHT forward from the recorded position.

The content capture is gated by the CKPT checkpoint signal. A suppressed
capture updates the slot's position metadata while the array keeps its
stale image -- the Section III.C scenario where the RAT "is recovered from
a wrong checkpoint since the correct checkpoint was not taken".

Slot lifetime: one *anchor* checkpoint (the youngest at or below the commit
point) is always retained so that any flush -- whose offender is by
definition uncommitted -- finds a usable snapshot; older slots are freed as
the anchor advances, and younger slots are freed when a flush squashes past
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.rrs.ports import RRSObserver, listeners
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind


@dataclass
class CheckpointSlot:
    """One CKPT entry."""

    index: int
    valid: bool = False
    #: Rename sequence position: the snapshot reflects the RAT after all
    #: instructions with seq < pos were renamed.
    pos: int = -1
    #: RHT write-pointer position at capture time (positive walks start here).
    rht_pos: int = -1
    rat_image: List[int] = field(default_factory=list)


class CheckpointTable:
    """Fixed set of checkpoint slots with injectable capture signal."""

    def __init__(
        self,
        num_slots: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
    ) -> None:
        if num_slots < 1:
            raise ValueError("need at least one checkpoint slot")
        self._fabric = fabric
        self._observers = observers
        self._on_content = listeners(observers, "checkpoint_content")
        self._on_meta = listeners(observers, "checkpoint_meta")
        self._on_freed = listeners(observers, "checkpoint_freed")
        self._slots = [CheckpointSlot(i) for i in range(num_slots)]
        # retire_anchor() runs every cycle from the commit stage but can
        # only change its answer after a slot mutation; memoize on a
        # monotonically bumped table version to make the idle case O(1).
        self._version = 0
        self._retire_memo: Optional[tuple] = None

    def reset(self, initial_rat: Sequence[int]) -> None:
        """Power-on: slot 0 anchors the initial architectural state."""
        self._version += 1
        self._retire_memo = None
        for slot in self._slots:
            slot.valid = False
            slot.pos = -1
            slot.rht_pos = -1
            slot.rat_image = []
        slot0 = self._slots[0]
        slot0.valid = True
        slot0.pos = 0
        slot0.rht_pos = 0
        slot0.rat_image = list(initial_rat)

    # -- capture --------------------------------------------------------------

    def _find_free_slot(self) -> Optional[CheckpointSlot]:
        for slot in self._slots:
            if not slot.valid:
                return slot
        return None

    def take(
        self, pos: int, rht_pos: int, rat_image: Sequence[int], force: bool = False
    ) -> Optional[CheckpointSlot]:
        """Capture a checkpoint at rename position ``pos``.

        Args:
            pos: Rename sequence the snapshot corresponds to.
            rht_pos: RHT write-pointer position at capture time.
            rat_image: The live RAT contents (copied on capture).
            force: When True and no slot is free, recycle the oldest slot
                (used by the commit-point emergency checkpoint that keeps
                the RHT drainable; legal only when nothing is in flight).

        Returns:
            The slot used, or None when no slot was available (the
            checkpoint is skipped; recovery simply walks further).
        """
        slot = self._find_free_slot()
        self._version += 1
        if slot is None:
            if not force:
                return None
            slot = min(
                (s for s in self._slots if s.valid), key=lambda s: s.pos
            )
            for hook in self._on_freed:
                hook(slot.index)
        # Metadata always advances; the content capture is gated.
        slot.valid = True
        slot.pos = pos
        slot.rht_pos = rht_pos
        if self._fabric.asserted(ArrayName.CKPT, SignalKind.CHECKPOINT):
            slot.rat_image = list(rat_image)
            for hook in self._on_content:
                hook(slot.index, pos)
        for hook in self._on_meta:
            hook(slot.index, pos)
        return slot

    # -- selection / lifetime -------------------------------------------------------

    def select_for(self, offender_seq: int) -> Optional[CheckpointSlot]:
        """Closest previous checkpoint: youngest with pos <= offender+1."""
        best = None
        for slot in self._slots:
            if slot.valid and slot.pos <= offender_seq + 1:
                if best is None or slot.pos > best.pos:
                    best = slot
        return best

    def free_younger_than(self, pos: int) -> None:
        """Release slots captured past a squash point."""
        self._version += 1
        for slot in self._slots:
            if slot.valid and slot.pos > pos:
                slot.valid = False
                for hook in self._on_freed:
                    hook(slot.index)

    def retire_anchor(self, commit_seq: int) -> Optional[CheckpointSlot]:
        """Advance the anchor to the youngest slot at/below the commit point.

        Frees every older slot and returns the anchor (None only if the
        table is in a bug-corrupted state with no usable slot).
        """
        memo = self._retire_memo
        if (
            memo is not None
            and memo[0] == commit_seq
            and memo[1] == self._version
        ):
            # No slot changed since the last call with this commit point:
            # re-running the scan would free nothing and pick the same
            # anchor, so the memoized answer is exact.
            return memo[2]
        anchor = None
        for slot in self._slots:
            if slot.valid and slot.pos <= commit_seq:
                if anchor is None or slot.pos > anchor.pos:
                    anchor = slot
        if anchor is not None:
            for slot in self._slots:
                if slot.valid and slot.pos < anchor.pos:
                    slot.valid = False
                    self._version += 1
                    for hook in self._on_freed:
                        hook(slot.index)
        self._retire_memo = (commit_seq, self._version, anchor)
        return anchor

    def retire_settled(self, commit_seq: int, rht_head: int) -> bool:
        """True when the commit stage's per-cycle anchor maintenance —
        ``retire_anchor(commit_seq)`` followed by an RHT
        ``advance_head(anchor.rht_pos)`` — is provably a pure no-op: the
        memo covers this exact commit point at the current table version
        (so the scan would free nothing and return the same anchor), and
        that anchor would not move the RHT head past ``rht_head``. The
        core's quiescence predicate consults this before fast-forwarding;
        unlike :meth:`retire_anchor` it never mutates anything, so a
        ``False`` answer simply forces one more real step (which settles
        the memo) rather than changing behavior.
        """
        memo = self._retire_memo
        if memo is None or memo[0] != commit_seq or memo[1] != self._version:
            return False
        anchor = memo[2]
        return anchor is None or anchor.rht_pos <= rht_head

    # -- probes -------------------------------------------------------------------

    def valid_slots(self) -> List[CheckpointSlot]:
        return [slot for slot in self._slots if slot.valid]

    def __len__(self) -> int:
        return len(self._slots)

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot every slot (invalid slots keep their stale images, which
        a suppressed-capture bug can later restore from)."""
        return tuple(
            (s.valid, s.pos, s.rht_pos, tuple(s.rat_image))
            for s in self._slots
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        self._version += 1
        self._retire_memo = None
        for slot, (valid, pos, rht_pos, rat_image) in zip(self._slots, state):
            slot.valid = valid
            slot.pos = pos
            slot.rht_pos = rht_pos
            slot.rat_image = list(rat_image)
