"""Free List: FIFO of free physical register identifiers.

"FL is a first-in-first-out hardware structure, where PdstIDs are
initialized each time the processor core is powered on" (Section II).
Implemented as a circular buffer whose head (read) and tail (write)
pointers advance under control of the Table I read/write enables, so a
suppressed enable produces exactly the hardware failure mode: a stale
value re-delivered (duplication) or a dropped reclaim (leakage).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.ports import RRSObserver, listeners
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- idld)
    from repro.idld.parity import ParityStore


class FreeList:
    """Circular FIFO of PdstIDs with bug-injectable control signals."""

    def __init__(
        self,
        capacity: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
        parity: Optional["ParityStore"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fabric = fabric
        self._observers = observers
        self._on_read = listeners(observers, "fl_read")
        self._on_write = listeners(observers, "fl_write")
        self._parity = parity
        self._array: List[int] = [0] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0

    def reset(self, initial_ids: Iterable[int]) -> None:
        """Power-on initialization with the initially-free PdstIDs."""
        ids = list(initial_ids)
        if len(ids) > self.capacity:
            raise ValueError("more initial ids than capacity")
        self._array = [0] * self.capacity
        if self._parity is not None:
            self._parity.reset()
        for i, pdst in enumerate(ids):
            self._array[i] = pdst
            if self._parity is not None:
                self._parity.on_write(i, pdst)
        self._head = 0
        self._tail = len(ids) % self.capacity
        self._count = len(ids)

    @property
    def count(self) -> int:
        """Number of free registers according to the FIFO pointers."""
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    def peek(self) -> int:
        """Value currently driven on the read bus (head entry)."""
        return self._array[self._head]

    def pop(self) -> int:
        """Allocate one PdstID.

        Returns whatever the read bus carries. If the read enable was
        suppressed by a bug, the pointers do not advance (the same PdstID
        will be delivered again -- a duplication) and no observer event is
        emitted (the XOR update is gated by the same enable).

        Raises:
            SimulatorAssertion: On pop from an empty FIFO (rename must guard
                with :attr:`count`; reaching here means a bug corrupted the
                occupancy, which real hardware could not recover from).
        """
        if self._count <= 0:
            raise SimulatorAssertion(
                self._fabric.cycle, "Free List underflow (pop from empty)"
            )
        value = self._array[self._head]
        if self._parity is not None:
            self._parity.on_read(self._head, value, self._fabric.cycle)
        if self._fabric.asserted(ArrayName.FL, SignalKind.READ_ENABLE):
            self._head = (self._head + 1) % self.capacity
            self._count -= 1
            for hook in self._on_read:
                hook(value)
        return value

    def push(self, pdst: int) -> None:
        """Reclaim one PdstID.

        If the write enable was suppressed by a bug, the value is dropped
        (leakage) and no observer event fires.

        Raises:
            SimulatorAssertion: On push to a full FIFO (reachable only after
                a duplication bug inflates the reclaim stream).
        """
        if self._fabric.asserted(ArrayName.FL, SignalKind.WRITE_ENABLE):
            if self._count >= self.capacity:
                raise SimulatorAssertion(
                    self._fabric.cycle, "Free List overflow (push to full)"
                )
            self._array[self._tail] = pdst
            if self._parity is not None:
                self._parity.on_write(self._tail, pdst)
            self._tail = (self._tail + 1) % self.capacity
            self._count += 1
            for hook in self._on_write:
                hook(pdst)

    def corrupt_stored(self, offset: int, xor_mask: int) -> int:
        """Fault injection: flip bits of the ``offset``-th live entry
        (head-relative) *without* updating any parity -- an at-rest upset.

        Returns the corrupted value.

        Raises:
            ValueError: If the offset is outside the live window or the
                mask is zero.
        """
        if xor_mask == 0:
            raise ValueError("xor_mask must be nonzero")
        if not 0 <= offset < self._count:
            raise ValueError(f"offset {offset} outside live window")
        index = (self._head + offset) % self.capacity
        self._array[index] ^= xor_mask
        return self._array[index]

    def contents(self) -> List[int]:
        """Snapshot of the live FIFO contents, head first (for probes)."""
        return [
            self._array[(self._head + i) % self.capacity]
            for i in range(self._count)
        ]

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the full backing array and pointers (stale slots too:
        a suppressed read re-delivers whatever the storage holds)."""
        return (tuple(self._array), self._head, self._tail, self._count)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        array, head, tail, count = state
        self._array = list(array)
        self._head = head
        self._tail = tail
        self._count = count
