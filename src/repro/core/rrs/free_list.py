"""Free List: pool of free physical register identifiers.

"FL is a first-in-first-out hardware structure, where PdstIDs are
initialized each time the processor core is powered on" (Section II).

The organization is a *policy axis* (``CoreConfig.free_list_discipline``):

* :class:`FifoFreeList` -- the paper's circular buffer whose head (read)
  and tail (write) pointers advance under control of the Table I
  read/write enables, so a suppressed enable produces exactly the hardware
  failure mode: a stale value re-delivered (duplication) or a dropped
  reclaim (leakage).
* :class:`StackFreeList` -- LIFO reuse through a single top-of-stack
  pointer (several real cores recycle the most recently freed Pdst
  first). The same enables gate the pointer, with the same failure modes.

Both expose one interface (``pop``/``push``/``count``/``contents``/
``corrupt_stored``/``save_state``), so the core, the detectors and the
fault injector are discipline-agnostic. ``FreeList`` remains an alias of
the FIFO discipline for existing imports.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.ports import RRSObserver, listeners
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- idld)
    from repro.idld.parity import ParityStore


class FifoFreeList:
    """Circular FIFO of PdstIDs with bug-injectable control signals."""

    discipline = "fifo"

    def __init__(
        self,
        capacity: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
        parity: Optional["ParityStore"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fabric = fabric
        self._observers = observers
        self._on_read = listeners(observers, "fl_read")
        self._on_write = listeners(observers, "fl_write")
        self._parity = parity
        self._array: List[int] = [0] * capacity
        self._head = 0
        self._tail = 0
        self._count = 0

    def reset(self, initial_ids: Iterable[int]) -> None:
        """Power-on initialization with the initially-free PdstIDs."""
        ids = list(initial_ids)
        if len(ids) > self.capacity:
            raise ValueError("more initial ids than capacity")
        self._array = [0] * self.capacity
        if self._parity is not None:
            self._parity.reset()
        for i, pdst in enumerate(ids):
            self._array[i] = pdst
            if self._parity is not None:
                self._parity.on_write(i, pdst)
        self._head = 0
        self._tail = len(ids) % self.capacity
        self._count = len(ids)

    @property
    def count(self) -> int:
        """Number of free registers according to the FIFO pointers."""
        return self._count

    @property
    def empty(self) -> bool:
        return self._count == 0

    def peek(self) -> int:
        """Value currently driven on the read bus (head entry)."""
        return self._array[self._head]

    def pop(self) -> int:
        """Allocate one PdstID.

        Returns whatever the read bus carries. If the read enable was
        suppressed by a bug, the pointers do not advance (the same PdstID
        will be delivered again -- a duplication) and no observer event is
        emitted (the XOR update is gated by the same enable).

        Raises:
            SimulatorAssertion: On pop from an empty FIFO (rename must guard
                with :attr:`count`; reaching here means a bug corrupted the
                occupancy, which real hardware could not recover from).
        """
        fabric = self._fabric
        if self._count <= 0:
            raise SimulatorAssertion(
                fabric.cycle, "Free List underflow (pop from empty)"
            )
        head = self._head
        value = self._array[head]
        if self._parity is not None:
            self._parity.on_read(head, value, fabric.cycle)
        if not fabric.hot or fabric.asserted(
            ArrayName.FL, SignalKind.READ_ENABLE
        ):
            self._head = (head + 1) % self.capacity
            self._count -= 1
            for hook in self._on_read:
                hook(value)
        return value

    def push(self, pdst: int) -> None:
        """Reclaim one PdstID.

        If the write enable was suppressed by a bug, the value is dropped
        (leakage) and no observer event fires.

        Raises:
            SimulatorAssertion: On push to a full FIFO (reachable only after
                a duplication bug inflates the reclaim stream).
        """
        fabric = self._fabric
        if not fabric.hot or fabric.asserted(
            ArrayName.FL, SignalKind.WRITE_ENABLE
        ):
            if self._count >= self.capacity:
                raise SimulatorAssertion(
                    fabric.cycle, "Free List overflow (push to full)"
                )
            tail = self._tail
            self._array[tail] = pdst
            if self._parity is not None:
                self._parity.on_write(tail, pdst)
            self._tail = (tail + 1) % self.capacity
            self._count += 1
            for hook in self._on_write:
                hook(pdst)

    def corrupt_stored(self, offset: int, xor_mask: int) -> int:
        """Fault injection: flip bits of the ``offset``-th live entry
        (delivery order: 0 is the next pop) *without* updating any parity
        -- an at-rest upset.

        Returns the corrupted value.

        Raises:
            ValueError: If the offset is outside the live window or the
                mask is zero.
        """
        if xor_mask == 0:
            raise ValueError("xor_mask must be nonzero")
        if not 0 <= offset < self._count:
            raise ValueError(f"offset {offset} outside live window")
        index = (self._head + offset) % self.capacity
        self._array[index] ^= xor_mask
        return self._array[index]

    def contents(self) -> List[int]:
        """Snapshot of the live contents in delivery order (for probes)."""
        return [
            self._array[(self._head + i) % self.capacity]
            for i in range(self._count)
        ]

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the full backing array and pointers (stale slots too:
        a suppressed read re-delivers whatever the storage holds)."""
        return (tuple(self._array), self._head, self._tail, self._count)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        array, head, tail, count = state
        self._array = list(array)
        self._head = head
        self._tail = tail
        self._count = count


class StackFreeList:
    """LIFO stack of PdstIDs with bug-injectable control signals.

    One top-of-stack pointer replaces the FIFO's head/tail pair: ``pop``
    reads the entry below the top and the read enable gates the pointer
    decrement (a suppressed enable re-delivers the same identifier --
    duplication), ``push`` writes at the top gated by the write enable (a
    suppressed enable drops the reclaim -- leakage). Storage below the
    pointer is never cleared, so stale slots behave like standard-cell
    memory, exactly as in the FIFO.
    """

    discipline = "stack"

    def __init__(
        self,
        capacity: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
        parity: Optional["ParityStore"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fabric = fabric
        self._observers = observers
        self._on_read = listeners(observers, "fl_read")
        self._on_write = listeners(observers, "fl_write")
        self._parity = parity
        self._array: List[int] = [0] * capacity
        #: Live entry count; the read bus drives ``_array[_top - 1]``.
        self._top = 0

    def reset(self, initial_ids: Iterable[int]) -> None:
        """Power-on initialization with the initially-free PdstIDs.

        The ids fill the stack bottom-up, so the *last* initial id is the
        first allocated -- the LIFO twin of the FIFO's delivery order.
        """
        ids = list(initial_ids)
        if len(ids) > self.capacity:
            raise ValueError("more initial ids than capacity")
        self._array = [0] * self.capacity
        if self._parity is not None:
            self._parity.reset()
        for i, pdst in enumerate(ids):
            self._array[i] = pdst
            if self._parity is not None:
                self._parity.on_write(i, pdst)
        self._top = len(ids)

    @property
    def count(self) -> int:
        """Number of free registers according to the stack pointer."""
        return self._top

    @property
    def empty(self) -> bool:
        return self._top == 0

    def peek(self) -> int:
        """Value currently driven on the read bus (top entry)."""
        return self._array[self._top - 1]

    def pop(self) -> int:
        """Allocate one PdstID (see :meth:`FifoFreeList.pop`)."""
        if self._top <= 0:
            raise SimulatorAssertion(
                self._fabric.cycle, "Free List underflow (pop from empty)"
            )
        index = self._top - 1
        value = self._array[index]
        if self._parity is not None:
            self._parity.on_read(index, value, self._fabric.cycle)
        fabric = self._fabric
        if not fabric.hot or fabric.asserted(
            ArrayName.FL, SignalKind.READ_ENABLE
        ):
            self._top -= 1
            for hook in self._on_read:
                hook(value)
        return value

    def push(self, pdst: int) -> None:
        """Reclaim one PdstID (see :meth:`FifoFreeList.push`)."""
        fabric = self._fabric
        if not fabric.hot or fabric.asserted(
            ArrayName.FL, SignalKind.WRITE_ENABLE
        ):
            if self._top >= self.capacity:
                raise SimulatorAssertion(
                    self._fabric.cycle, "Free List overflow (push to full)"
                )
            self._array[self._top] = pdst
            if self._parity is not None:
                self._parity.on_write(self._top, pdst)
            self._top += 1
            for hook in self._on_write:
                hook(pdst)

    def corrupt_stored(self, offset: int, xor_mask: int) -> int:
        """Fault injection: flip bits of the ``offset``-th live entry
        (delivery order: 0 is the next pop, i.e. the top of stack)."""
        if xor_mask == 0:
            raise ValueError("xor_mask must be nonzero")
        if not 0 <= offset < self._top:
            raise ValueError(f"offset {offset} outside live window")
        index = self._top - 1 - offset
        self._array[index] ^= xor_mask
        return self._array[index]

    def contents(self) -> List[int]:
        """Snapshot of the live contents in delivery order (for probes)."""
        return [self._array[self._top - 1 - i] for i in range(self._top)]

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the full backing array and the stack pointer."""
        return (tuple(self._array), self._top)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        array, top = state
        self._array = list(array)
        self._top = top


#: Alias kept for existing imports: the paper's organization is the FIFO.
FreeList = FifoFreeList

_DISCIPLINES = {
    FifoFreeList.discipline: FifoFreeList,
    StackFreeList.discipline: StackFreeList,
}


def make_free_list(
    discipline: str,
    capacity: int,
    fabric: SignalFabric,
    observers: Sequence[RRSObserver],
    parity: Optional["ParityStore"] = None,
):
    """Instantiate the free list for a ``CoreConfig.free_list_discipline``."""
    try:
        cls = _DISCIPLINES[discipline]
    except KeyError:
        raise ValueError(
            f"unknown free list discipline {discipline!r}; "
            f"choose one of {tuple(_DISCIPLINES)}"
        ) from None
    return cls(capacity, fabric, observers, parity=parity)
