"""Register Alias Table: the speculative logical->physical mapping.

"RAT is a hardware array that keeps the most recent mapping of each logical
register identifier to a PdstID" (Section II). The write port is gated by
the Table I write enable (Figure 2's walkthrough bug lives here) and routes
its data through the fabric's PdstID-corruption hook (the *PdstID
Corruption* bug model corrupts the value "when it is written in the RAT",
Section III.A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.rrs.ports import RRSObserver, listeners
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- idld)
    from repro.idld.parity import ParityStore


class RegisterAliasTable:
    """Array of logical-register to PdstID mappings."""

    def __init__(
        self,
        num_logical: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
        zero_pdst: int = None,
        parity: Optional["ParityStore"] = None,
    ) -> None:
        self.num_logical = num_logical
        self._fabric = fabric
        self._observers = observers
        self._on_write = listeners(observers, "rat_write")
        self._on_write_zero_idiom = listeners(observers, "rat_write_zero_idiom")
        self._on_write_over_zero = listeners(observers, "rat_write_over_zero")
        self._zero_pdst = zero_pdst
        self._parity = parity
        self._table: List[int] = list(range(num_logical))
        if parity is None:
            # Without parity the read port is a bare array index with no
            # side effects; bind it straight to the list's C-level getitem.
            # Every table update below (including bulk restore/load_state)
            # slice-assigns in place so the binding stays valid.
            self.read = self._table.__getitem__

    def reset(self, initial_mappings: Sequence[int]) -> None:
        """Power-on initialization (logical register i -> mapping[i])."""
        if len(initial_mappings) != self.num_logical:
            raise ValueError("need one initial mapping per logical register")
        self._table[:] = initial_mappings
        if self._parity is not None:
            self._parity.reset()
            for lreg, pdst in enumerate(self._table):
                self._parity.on_write(lreg, pdst)

    def read(self, lreg: int) -> int:
        """Rename-time source lookup (also used to read the evicted id)."""
        value = self._table[lreg]
        if self._parity is not None:
            self._parity.on_read(lreg, value, self._fabric.cycle)
        return value

    def write(self, ldst: int, new_pdst: int) -> int:
        """Update the mapping of ``ldst`` through the regular write port.

        The data passes through the PdstID-corruption hook first; the array
        update itself is gated by the RAT write enable. Returns the value
        that was *driven to* the array (post-corruption) so rename can
        forward it, whether or not the write landed.
        """
        fabric = self._fabric
        if not fabric.hot:
            driven = new_pdst
            landed = True
        else:
            driven = fabric.corrupt_pdst(new_pdst)
            landed = fabric.asserted(ArrayName.RAT, SignalKind.WRITE_ENABLE)
        if landed:
            old = self._table[ldst]
            if self._parity is not None:
                self._parity.on_read(ldst, old, self._fabric.cycle)
            self._table[ldst] = driven
            if self._parity is not None:
                self._parity.on_write(ldst, driven)
            if old == self._zero_pdst:
                # Remapping a shared-zero instance: only the inserted
                # identifier enters the code (the shared id is untracked).
                for hook in self._on_write_over_zero:
                    hook(ldst, driven)
            else:
                for hook in self._on_write:
                    hook(ldst, old, driven)
        return driven

    def write_zero_idiom(self, ldst: int) -> None:
        """Point ``ldst`` at the shared zero register (Section V.E).

        The write itself is gated by the regular write enable; the
        duplicate-marking signal decides how the IDLD taps see it. With the
        mark asserted (normal), only the evicted id is folded; a suppressed
        mark makes the write look like a regular insertion of the shared
        identifier -- the exact bug the paper argues IDLD catches ("if this
        signal, due to a bug, is not activated it will cause IDLD
        assertion").
        """
        if self._zero_pdst is None:
            raise ValueError("zero-idiom elimination is not enabled")
        if self._fabric.asserted(ArrayName.RAT, SignalKind.WRITE_ENABLE):
            old = self._table[ldst]
            if self._parity is not None:
                self._parity.on_read(ldst, old, self._fabric.cycle)
            self._table[ldst] = self._zero_pdst
            if self._parity is not None:
                self._parity.on_write(ldst, self._zero_pdst)
            marked = self._fabric.asserted(ArrayName.RAT, SignalKind.DUP_MARK)
            if old == self._zero_pdst:
                if not marked:
                    # Untagged shared-id insertion over a shared id.
                    for hook in self._on_write_over_zero:
                        hook(ldst, self._zero_pdst)
                return
            if marked:
                for hook in self._on_write_zero_idiom:
                    hook(ldst, old)
            else:
                for hook in self._on_write:
                    hook(ldst, old, self._zero_pdst)

    def restore(self, snapshot: Sequence[int]) -> bool:
        """Recovery-time bulk restore from a checkpoint image.

        Gated by the RAT recovery signal ("Checkpoint to RAT", Table I).
        Returns True when the restore actually happened.
        """
        if self._fabric.asserted(ArrayName.RAT, SignalKind.RECOVERY):
            self._table[:] = snapshot
            if self._parity is not None:
                for lreg, pdst in enumerate(self._table):
                    self._parity.on_write(lreg, pdst)
            return True
        return False

    def corrupt_stored(self, ldst: int, xor_mask: int) -> int:
        """Fault injection: flip stored mapping bits without touching the
        parity bit (an at-rest upset). Returns the corrupted value."""
        if xor_mask == 0:
            raise ValueError("xor_mask must be nonzero")
        self._table[ldst] ^= xor_mask
        return self._table[ldst]

    def snapshot(self) -> List[int]:
        """Copy of the current mapping (checkpoint capture / probes)."""
        return list(self._table)

    def contents(self) -> List[int]:
        """Alias of :meth:`snapshot` for probe symmetry with the FIFOs."""
        return list(self._table)

    # -- warm-start snapshot/restore -----------------------------------------
    #
    # Named save_state/load_state to stay clearly apart from the
    # microarchitectural snapshot()/restore() pair above, which model the
    # checkpoint-capture and signal-gated recovery ports.

    def save_state(self) -> tuple:
        """Snapshot the mapping table for the warm-start layer."""
        return (tuple(self._table),)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot (not signal-gated)."""
        self._table[:] = state[0]
