"""Observer interface over the RRS array ports.

Detectors (IDLD, the bit-vector scheme, ...) attach to the core as
:class:`RRSObserver` instances. Arrays notify observers **only for port
actions that actually happened** -- an action whose control signal was
de-asserted (by a bug) produces no event, exactly as the gated XOR-update
hardware of the paper would behave.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Tuple


class RRSObserver:
    """Base class: every hook is a no-op; detectors override what they need.

    Event vocabulary (all PdstIDs are raw, unextended identifiers):

    * ``fl_read`` / ``fl_write`` -- Free List allocation / reclamation port.
    * ``rat_write`` -- RAT update through the regular write port; carries
      the evicted (old) and inserted (new) mapping.
    * ``rob_pdst_write`` / ``rob_pdst_read`` -- the ROB's evicted-PdstID
      field, written at rename and read at commit; ``seq`` is the global
      rename sequence number of the owning instruction.
    * ``recovery_begin`` / ``recovery_end`` -- brackets of the multi-cycle
      flush-recovery flow; invariance checks are suspended in between
      (Section V.C).
    * ``checkpoint_content`` -- the CKPT slot captured the live RAT (the
      checkpoint signal was asserted); detectors snapshot their own state.
    * ``checkpoint_meta`` -- the slot's position metadata advanced; emitted
      even when the content capture was suppressed by a bug.
    * ``checkpoint_restored`` -- the RAT recovery signal fired and the slot
      was copied back into the RAT.
    * ``checkpoint_freed`` -- the slot was released (retired or squashed).
    * ``pipeline_empty`` -- no instruction in flight this cycle (used by the
      bit-vector scheme's leakage probe).
    * ``flush_initiated`` -- a mispredicted branch won flush arbitration;
      carries how many younger in-flight uops were squashed (used by the
      fuzzing coverage probe, :mod:`repro.fuzz.coverage`).
    * ``load_replay`` -- a load could not issue because an older store's
      address was still unknown and will retry next cycle (the LSQ replay
      pressure signal).
    * ``cycle_end`` -- end-of-cycle synchronization point where invariance
      is evaluated.
    """

    def power_on(
        self,
        num_physical: int,
        num_logical: int,
        initial_free: list,
        initial_rat: list,
    ) -> None:
        """Core reset: logical register i -> ``initial_rat[i]``; the ids in
        ``initial_free`` populate the Free List."""

    def fl_read(self, pdst: int) -> None:
        """A PdstID left the Free List through its read port."""

    def fl_write(self, pdst: int) -> None:
        """A PdstID entered the Free List through its write port."""

    def rat_write(self, ldst: int, old_pdst: int, new_pdst: int) -> None:
        """RAT[ldst] was overwritten: ``old_pdst`` evicted, ``new_pdst`` in."""

    def rat_write_zero_idiom(self, ldst: int, old_pdst: int) -> None:
        """RAT[ldst] was pointed at the shared zero register with the
        duplicate-marking signal asserted (Section V.E): only the evicted
        ``old_pdst`` is tracked; the shared identifier is invisible to the
        code by design."""

    def rat_write_over_zero(self, ldst: int, new_pdst: int) -> None:
        """RAT[ldst] held the shared zero register and was remapped to
        ``new_pdst``: only the inserted identifier is tracked."""

    def rob_pdst_write(self, pdst: int, seq: int) -> None:
        """An evicted PdstID was recorded in the ROB entry of ``seq``."""

    def rob_pdst_read(self, pdst: int, seq: int) -> None:
        """An evicted PdstID was read out of the ROB at commit of ``seq``."""

    def recovery_begin(self, cycle: int) -> None:
        """A pipeline-flush recovery flow started."""

    def recovery_end(self, cycle: int) -> None:
        """The recovery flow finished; checking may resume."""

    def checkpoint_content(self, slot: int, pos: int) -> None:
        """CKPT ``slot`` captured the RAT as of rename sequence ``pos``."""

    def checkpoint_meta(self, slot: int, pos: int) -> None:
        """CKPT ``slot``'s position metadata was set to ``pos``."""

    def checkpoint_restored(self, slot: int) -> None:
        """CKPT ``slot`` was copied back into the RAT."""

    def checkpoint_freed(self, slot: int) -> None:
        """CKPT ``slot`` was released."""

    def pipeline_empty(self, cycle: int) -> None:
        """The pipeline holds no in-flight instruction this cycle."""

    def flush_initiated(self, cycle: int, offender_seq: int, squashed: int) -> None:
        """A flush began at ``cycle``: ``squashed`` uops younger than
        ``offender_seq`` were discarded across the front end, scheduler,
        execution units and ROB."""

    def load_replay(self, cycle: int, seq: int) -> None:
        """The load with rename sequence ``seq`` was held back by an
        unresolved older store and will replay."""

    def cycle_end(self, cycle: int) -> None:
        """All port traffic for ``cycle`` has been delivered."""

    # Bulk-replay protocol (quiescence-aware fast-forward)
    # ----------------------------------------------------
    #
    # The core may skip a span of cycles it can prove are no-ops: no port
    # traffic, no state change, only the per-cycle ``pipeline_empty`` /
    # ``cycle_end`` hooks would have fired. An observer that overrides
    # either of those hooks *may additionally* define::
    #
    #     def fast_forward(self, start_cycle, end_cycle, pipeline_empty):
    #
    # which must leave the observer in exactly the state a per-cycle
    # replay would: for every cycle c in (start_cycle, end_cycle], first
    # ``pipeline_empty(c)`` (iff the flag is set), then ``cycle_end(c)``.
    # The method is deliberately **not** defined on this base class: its
    # absence is the conservative signal. Any attached observer that
    # overrides a per-cycle hook without providing ``fast_forward``
    # disables skipping for that core entirely (today's per-cycle
    # behavior), so an unproven listener can never change an outcome.


def overrides_hook(observer: RRSObserver, hook: str) -> bool:
    """True when ``observer``'s class overrides the named base-class hook."""
    return getattr(type(observer), hook) is not getattr(RRSObserver, hook)


def listeners(
    observers: Iterable[RRSObserver], hook: str
) -> Tuple[Callable[..., None], ...]:
    """Bound methods of the observers that actually override ``hook``.

    Arrays and the core build these dispatch lists once at attach time, so
    the per-event hot path calls only real handlers: an observer that keeps
    the base-class no-op for a hook costs zero calls on that event, and an
    empty tuple short-circuits the dispatch entirely.
    """
    out: List[Callable[..., None]] = []
    for obs in observers:
        if overrides_hook(obs, hook):
            out.append(getattr(obs, hook))
    return tuple(out)
