"""ReOrder Buffer: in-order commit FIFO with an evicted-PdstID field.

"Each ROB entry has a field to hold the PdstID that is evicted from the RAT
by the instruction (if the instruction writes to a register). The Pdst is
reclaimed (i.e., its PdstID returned in the FL) when the instruction
retires." (Section II)

Bug-injection fidelity notes:

* The evicted-PdstID *field* write at allocation is gated by the ROB write
  enable; a suppressed write leaves the slot's previous occupant's value in
  place (standard-cell memory keeps state), so the eventual commit reclaims
  a stale identifier -- leaking the true one and duplicating the stale one.
* The reclaim read pointer is physically separate from the architectural
  commit sequencing. A suppressed read enable leaves the read pointer in
  place **permanently** (the pointer missed one increment), so every later
  reclaim is shifted by one entry -- the "duplication the next time the
  array is read" behaviour of Section III.C, with long organic aftermath.
* Moving the write (tail) pointer back on a flush is gated by the ROB
  recovery signal.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING, List, Optional, Sequence

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.ports import RRSObserver, listeners
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core <- idld)
    from repro.idld.parity import ParityStore


class ROBSlot:
    """Physical storage of one ROB entry (reused as the ring wraps).

    A ``__slots__`` class: the ROB allocates ``capacity`` of these per core
    and touches them on every rename/commit, so attribute access cost and
    per-instance size matter.
    """

    __slots__ = ("seq", "has_dest", "evicted_pdst", "new_pdst", "uop")

    def __init__(
        self,
        seq: int = -1,
        has_dest: bool = False,
        evicted_pdst: int = 0,
        new_pdst: int = -1,
        uop: object = None,
    ) -> None:
        self.seq = seq
        self.has_dest = has_dest
        self.evicted_pdst = evicted_pdst
        self.new_pdst = new_pdst
        self.uop = uop


class ReorderBuffer:
    """Circular FIFO of :class:`ROBSlot` with injectable control signals."""

    def __init__(
        self,
        capacity: int,
        fabric: SignalFabric,
        observers: Sequence[RRSObserver],
        zero_pdst: int = None,
        parity: Optional["ParityStore"] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._fabric = fabric
        self._observers = observers
        self._on_pdst_write = listeners(observers, "rob_pdst_write")
        self._on_pdst_read = listeners(observers, "rob_pdst_read")
        self._zero_pdst = zero_pdst
        self._parity = parity
        self._slots: List[ROBSlot] = [ROBSlot() for _ in range(capacity)]
        #: Logical (monotonic) positions; slot index = position % capacity.
        self._head = 0
        self._tail = 0
        #: Reclaim read pointer; equals ``_head`` unless a read-enable bug
        #: left it lagging.
        self._read_ptr = 0
        #: Output latch of the recovery-walk read port (ROB-walk recovery
        #: strategies); holds the last identifier the port delivered.
        self._walk_bus = 0

    def reset(self) -> None:
        self._slots = [ROBSlot() for _ in range(self.capacity)]
        self._head = 0
        self._tail = 0
        self._read_ptr = 0
        self._walk_bus = 0
        if self._parity is not None:
            self._parity.reset()

    # -- occupancy ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._tail - self._head

    @property
    def full(self) -> bool:
        return self.count >= self.capacity

    @property
    def empty(self) -> bool:
        return self.count <= 0

    @property
    def head_slot(self) -> Optional[ROBSlot]:
        """The oldest live entry, or None when empty."""
        if self.empty:
            return None
        return self._slots[self._head % self.capacity]

    # -- allocation (rename) -----------------------------------------------------

    def allocate(
        self, seq: int, uop: object, has_dest: bool, evicted_pdst: int, new_pdst: int
    ) -> None:
        """Append one entry at the tail.

        The PdstID field write is gated by the write enable; instruction
        bookkeeping (seq/uop/has_dest) always lands -- the bug models of the
        paper concern the PdstID dataflow, not instruction sequencing.

        Raises:
            SimulatorAssertion: On allocation into a full ROB (rename must
                guard with :attr:`full`).
        """
        fabric = self._fabric
        tail = self._tail
        if tail - self._head >= self.capacity:
            raise SimulatorAssertion(fabric.cycle, "ROB overflow")
        slot = self._slots[tail % self.capacity]
        slot.seq = seq
        slot.uop = uop
        slot.has_dest = has_dest
        slot.new_pdst = new_pdst
        if has_dest:
            if not fabric.hot or fabric.asserted(
                ArrayName.ROB, SignalKind.WRITE_ENABLE
            ):
                slot.evicted_pdst = evicted_pdst
                if self._parity is not None:
                    self._parity.on_write(tail % self.capacity, evicted_pdst)
                if evicted_pdst != self._zero_pdst:
                    for hook in self._on_pdst_write:
                        hook(evicted_pdst, seq)
                # A shared-zero eviction is untracked by design (V.E).
            # else: the slot keeps its previous occupant's evicted_pdst.
        self._tail = tail + 1

    # -- commit -----------------------------------------------------------------

    def commit_read(self):
        """Retire the head entry and read the reclaim port.

        Returns ``(reclaim_has_dest, reclaim_pdst)``: what the reclaim data
        bus carries for this commit -- normally the head entry's own evicted
        field, but a lagging read pointer delivers an older slot's value.
        The read-enable consult happens once per commit; a suppressed enable
        freezes the read pointer (and emits no observer event), while the
        bus value still flows to the Free List.

        Raises:
            SimulatorAssertion: On commit from an empty ROB.
        """
        fabric = self._fabric
        if self._tail - self._head <= 0:
            raise SimulatorAssertion(fabric.cycle, "ROB underflow")
        read_slot = self._slots[self._read_ptr % self.capacity]
        reclaim_has_dest = read_slot.has_dest
        reclaim_pdst = read_slot.evicted_pdst
        if self._parity is not None and reclaim_has_dest:
            self._parity.on_read(
                self._read_ptr % self.capacity, reclaim_pdst, fabric.cycle
            )
        if reclaim_has_dest and reclaim_pdst == self._zero_pdst:
            # Shared-zero evictions never return to the FL and are
            # untracked by the code (Section V.E).
            self._read_ptr += 1
            self._head += 1
            return False, reclaim_pdst
        if reclaim_has_dest:
            # Only PdstID reclaims involve the read port; destination-less
            # entries retire without touching it.
            if not fabric.hot or fabric.asserted(
                ArrayName.ROB, SignalKind.READ_ENABLE
            ):
                self._read_ptr += 1
                reclaim_seq = read_slot.seq
                for hook in self._on_pdst_read:
                    hook(reclaim_pdst, reclaim_seq)
        else:
            self._read_ptr += 1
        self._head += 1
        return reclaim_has_dest, reclaim_pdst

    # -- flush recovery -------------------------------------------------------------

    def walk_read_pdst(self, pdst: int, seq: int) -> int:
        """One gated read of a squashed entry's PdstID field during a
        ROB-walk recovery flow.

        Data flows from the addressed field through the reclaim read port:
        an asserted read enable latches the value onto the walk bus and
        emits the observer event; a suppressed enable leaves the latch
        holding the *previously* delivered identifier, so the walk consumes
        a stale value -- and the missing XOR fold leaves the code nonzero
        at recovery end. Returns the bus value the walk must use.
        """
        fabric = self._fabric
        if not fabric.hot or fabric.asserted(
            ArrayName.ROB, SignalKind.READ_ENABLE
        ):
            self._walk_bus = pdst
            for hook in self._on_pdst_read:
                hook(pdst, seq)
        return self._walk_bus

    def squash_after(self, offender_seq: int) -> bool:
        """Move the write pointer back to ``offender_seq + 1`` (Table I).

        Gated by the ROB recovery signal; returns True when the squash
        actually happened. Squashed entries are *not* read out -- this is
        exactly why the ROBxor needs checkpoint-assisted recovery
        (Section V.C).
        """
        new_tail = offender_seq + 1
        if new_tail > self._tail:
            raise SimulatorAssertion(
                self._fabric.cycle,
                f"squash target {new_tail} beyond ROB tail {self._tail}",
            )
        if self._fabric.asserted(ArrayName.ROB, SignalKind.RECOVERY):
            self._tail = max(new_tail, self._head)
            return True
        return False

    # -- probes --------------------------------------------------------------------

    def corrupt_stored(self, live_index: int, xor_mask: int) -> int:
        """Fault injection: flip the evicted-PdstID field of the
        ``live_index``-th live entry (head-relative) without touching its
        parity bit. Returns the corrupted value."""
        if xor_mask == 0:
            raise ValueError("xor_mask must be nonzero")
        if not 0 <= live_index < self.count:
            raise ValueError(f"index {live_index} outside live window")
        slot = self._slots[(self._head + live_index) % self.capacity]
        slot.evicted_pdst ^= xor_mask
        return slot.evicted_pdst

    def live_evicted_ids(self) -> List[int]:
        """Evicted PdstIDs held by live dest-writing entries (probe only);
        shared-zero instances are outside the tracked token set."""
        ids = []
        for pos in range(self._head, self._tail):
            slot = self._slots[pos % self.capacity]
            if slot.has_dest and slot.evicted_pdst != self._zero_pdst:
                ids.append(slot.evicted_pdst)
        return ids

    def live_slots(self) -> List[ROBSlot]:
        """Live entries oldest-first (probe only)."""
        return [
            self._slots[pos % self.capacity]
            for pos in range(self._head, self._tail)
        ]

    @property
    def head_pos(self) -> int:
        return self._head

    @property
    def tail_pos(self) -> int:
        return self._tail

    @property
    def read_lag(self) -> int:
        """How far the reclaim pointer lags commit (nonzero only after bugs)."""
        return self._head - self._read_ptr

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self, uop_ref: Callable[[object], int]) -> tuple:
        """Snapshot pointers plus the data fields of *every* slot.

        Stale slots (outside the live window) matter too: a lagging reclaim
        pointer reads them, and a suppressed field write leaves a previous
        occupant's identifier behind. Only live slots' ``uop`` references
        are recorded (via ``uop_ref``, the core's uop interning map); stale
        slots' uops are never dereferenced, so they restore as None.
        """
        head, tail = self._head, self._tail
        live = {pos % self.capacity for pos in range(head, tail)}
        slots = tuple(
            (
                slot.seq,
                slot.has_dest,
                slot.evicted_pdst,
                slot.new_pdst,
                uop_ref(slot.uop) if index in live else -1,
            )
            for index, slot in enumerate(self._slots)
        )
        return (head, tail, self._read_ptr, slots, self._walk_bus)

    def load_state(self, state: tuple, uops: Sequence[object]) -> None:
        """Restore a :meth:`save_state` snapshot; ``uops`` resolves the
        interned uop references recorded at capture time."""
        head, tail, read_ptr, slots = state[:4]
        self._head = head
        self._tail = tail
        self._read_ptr = read_ptr
        self._walk_bus = state[4] if len(state) > 4 else 0
        for slot, (seq, has_dest, evicted_pdst, new_pdst, ref) in zip(
            self._slots, slots
        ):
            slot.seq = seq
            slot.has_dest = has_dest
            slot.evicted_pdst = evicted_pdst
            slot.new_pdst = new_pdst
            slot.uop = uops[ref] if ref >= 0 else None
