"""Register Renaming Subsystem arrays and control signals (Figure 1)."""

from repro.core.rrs.checkpoint import CheckpointSlot, CheckpointTable
from repro.core.rrs.free_list import (
    FifoFreeList,
    FreeList,
    StackFreeList,
    make_free_list,
)
from repro.core.rrs.ports import RRSObserver
from repro.core.rrs.rat import RegisterAliasTable
from repro.core.rrs.rht import RegisterHistoryTable, RHTEntry
from repro.core.rrs.rob import ReorderBuffer, ROBSlot
from repro.core.rrs.signals import (
    ArmedCorruption,
    ArmedSuppression,
    ArrayName,
    DUPLICATION_SIGNALS,
    EXTENDED_SIGNALS,
    LEAKAGE_SIGNALS,
    SignalFabric,
    SignalKind,
    TABLE_I,
)

__all__ = [
    "ArmedCorruption",
    "ArmedSuppression",
    "ArrayName",
    "CheckpointSlot",
    "CheckpointTable",
    "DUPLICATION_SIGNALS",
    "EXTENDED_SIGNALS",
    "FifoFreeList",
    "FreeList",
    "LEAKAGE_SIGNALS",
    "RHTEntry",
    "ROBSlot",
    "RRSObserver",
    "RegisterAliasTable",
    "RegisterHistoryTable",
    "ReorderBuffer",
    "SignalFabric",
    "SignalKind",
    "StackFreeList",
    "TABLE_I",
    "make_free_list",
]
