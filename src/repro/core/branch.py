"""Branch direction predictors.

Deterministic predictors with enough real mispredictions on data-dependent
branches to exercise the flush recovery flows (checkpoint restore + RHT
walks) that Section V.C's IDLD bookkeeping exists for, but accurate enough
on patterned loop branches that wrong-path time stays at realistic levels.
Targets are direct, so no BTB is modeled: a predicted-taken branch
redirects fetch to its encoded target.
"""

from __future__ import annotations

from typing import List


class BimodalPredictor:
    """2-bit saturating counter table, initialized weakly-not-taken.

    ``predict`` returns ``(taken, state)``; the opaque state must be handed
    back to ``update`` so training hits the entry that actually predicted.
    """

    def __init__(self, entries: int = 512) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        self.entries = entries
        self._counters: List[int] = [1] * entries

    def reset(self) -> None:
        self._counters = [1] * self.entries

    def predict(self, pc: int):
        """Predict the branch at ``pc``; returns (taken, predictor state)."""
        idx = pc % self.entries
        return self._counters[idx] >= 2, idx

    def update(self, state: int, taken: bool, mispredicted: bool) -> None:
        """Train on the resolved outcome."""
        counter = self._counters[state]
        if taken:
            self._counters[state] = min(3, counter + 1)
        else:
            self._counters[state] = max(0, counter - 1)

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the counter table."""
        return (tuple(self._counters),)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        self._counters = list(state[0])


class GSharePredictor:
    """Global-history-XOR-PC indexed 2-bit counters (the default).

    The speculative global history shifts each prediction in at fetch and
    is resynchronized to the architectural history when a mispredict
    resolves -- the standard checkpoint-free approximation for a simulator
    whose front end runs ahead of resolution. The predict-time table index
    travels with the branch so training always hits the predicting entry.
    """

    def __init__(self, entries: int = 1024, history_bits: int = 10) -> None:
        if entries < 1:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._counters: List[int] = [1] * entries
        self._spec_history = 0
        self._arch_history = 0

    def reset(self) -> None:
        self._counters = [1] * self.entries
        self._spec_history = 0
        self._arch_history = 0

    def predict(self, pc: int):
        """Predict the branch at ``pc``; returns (taken, predictor state)."""
        idx = (pc ^ self._spec_history) % self.entries
        taken = self._counters[idx] >= 2
        self._spec_history = (
            (self._spec_history << 1) | int(taken)
        ) & self._history_mask
        return taken, idx

    def update(self, state: int, taken: bool, mispredicted: bool) -> None:
        """Train the predicting entry; repair history on a mispredict."""
        counter = self._counters[state]
        if taken:
            self._counters[state] = min(3, counter + 1)
        else:
            self._counters[state] = max(0, counter - 1)
        self._arch_history = (
            (self._arch_history << 1) | int(taken)
        ) & self._history_mask
        if mispredicted:
            # The front end restarts from the redirect with a clean history.
            self._spec_history = self._arch_history

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot counters + speculative/architectural histories."""
        return (tuple(self._counters), self._spec_history, self._arch_history)

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        counters, spec, arch = state
        self._counters = list(counters)
        self._spec_history = spec
        self._arch_history = arch
