"""Cycle-level out-of-order core with a full register renaming subsystem."""

from repro.core.config import CoreConfig, paper_rrs_config
from repro.core.cpu import OoOCore, RunResult
from repro.core.errors import (
    DeadlockError,
    MemoryFault,
    SimulationError,
    SimulatorAssertion,
)

__all__ = [
    "CoreConfig",
    "DeadlockError",
    "MemoryFault",
    "OoOCore",
    "RunResult",
    "SimulationError",
    "SimulatorAssertion",
    "paper_rrs_config",
]
