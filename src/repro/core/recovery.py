"""Pluggable flush-recovery strategies (``CoreConfig.recovery_strategy``).

The paper's core recovers from a mispredicted branch by restoring the RAT
from the closest previous checkpoint and walking the RHT (Section II); the
design-space study needs the same pipeline to also run *other* published
recovery microarchitectures so the detectors can be shown to generalize.
Each strategy owns the scheme-specific part of a flush: everything from
the ROB squash onward at flush initiation, the per-cycle recovery work,
and the packing of in-progress recovery state for warm-start snapshots.
The common prefix -- flush arbitration, squashing fetch/issue/execute and
the store queue, the ``flush_initiated``/``recovery_begin`` events -- stays
in :class:`~repro.core.cpu.OoOCore` and is identical for every strategy.

Strategies:

* ``checkpoint`` -- the paper's design, verbatim: checkpoint restore plus
  positive/negative RHT walks at ``recovery_walk_width`` entries/cycle.
* ``rob-walk`` -- no RAT restore: squashed ROB entries are read back
  youngest-first through the reclaim read port, each undoing its RAT
  write (from the evicted field) and returning its allocation (from the
  new-Pdst field) to the Free List.
* ``checkpoint-free`` -- recovery-at-drain: commit continues through the
  recovery window until all older work has retired, then the squashed
  entries unwind exactly as in ``rob-walk``. Uses no CKPT restore path.

Detector neutrality: with the IDLD checker's recovery compensation
(:mod:`repro.idld.checker`), every unwind step is XOR-balanced -- the two
walk-port reads, the RAT write and the FL push cancel exactly -- so a
bug-free recovery ends with a zero syndrome on every strategy, while any
suppressed enable inside the flow leaves a nonzero code at
``recovery_end``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Tuple

from repro.core.errors import SimulatorAssertion

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cpu import OoOCore
    from repro.core.uop import Uop


@dataclass
class _Recovery:
    """In-progress checkpoint-walk recovery state (Section II / V.C)."""

    offender_seq: int
    redirect_pc: int
    pos_ptr: int
    pos_end: int  # exclusive
    neg_ptr: int
    neg_end: int  # exclusive lower bound (walk runs neg_ptr down to neg_end)
    new_rht_tail: int


@dataclass
class _WalkRecovery:
    """In-progress ROB-walk / checkpoint-free recovery state."""

    offender_seq: int
    redirect_pc: int
    new_rht_tail: int
    #: Squashed-entry undo log, youngest first: (seq, ldst, evicted, new).
    records: Tuple[Tuple[int, int, int, int], ...]
    idx: int
    #: checkpoint-free only: still committing older work before the unwind.
    draining: bool


class RecoveryStrategy:
    """Base class: one instance per core, stateless between recoveries
    (the in-progress state lives on ``core.recovery``)."""

    name = "?"

    def __init__(self, core: "OoOCore") -> None:
        self.core = core

    def begin(self, offender: "Uop", f_seq: int, rht_tail_at_flush: int) -> None:
        raise NotImplementedError

    def step(self) -> None:
        raise NotImplementedError

    def save_recovery(self):
        """Pack ``core.recovery`` as plain containers for save_state."""
        raise NotImplementedError

    def load_recovery(self, rec):
        """Unpack a :meth:`save_recovery` value (None stays None)."""
        raise NotImplementedError

    def _finish(self, redirect_pc: int, new_rht_tail: int) -> None:
        core = self.core
        core.rht.restore_tail(new_rht_tail)
        core.fetch_pc = redirect_pc
        core.fetch_stalled = not (0 <= core.fetch_pc < len(core.program))
        core.allocs_since_checkpoint = 0
        core.recovery = None
        for hook in core._on_recovery_end:
            hook(core.cycle)


class CheckpointRecovery(RecoveryStrategy):
    """The paper's flow: RAT restore from the closest previous checkpoint,
    a positive RHT walk to replay renames up to the offender, and a
    negative RHT walk to return wrong-path PdstIDs to the FL."""

    name = "checkpoint"

    def begin(self, offender: "Uop", f_seq: int, rht_tail_at_flush: int) -> None:
        core = self.core
        core.rob.squash_after(f_seq)
        # Select and restore the closest previous checkpoint.
        ckpt = core.ckpt.select_for(f_seq)
        if ckpt is None:
            raise SimulatorAssertion(
                core.cycle, "no checkpoint available for recovery"
            )
        if core.rat.restore(ckpt.rat_image):
            for hook in core._on_checkpoint_restored:
                hook(ckpt.index)
        core.ckpt.free_younger_than(f_seq + 1)
        pos_start = ckpt.rht_pos
        pos_end = ckpt.rht_pos + (f_seq - ckpt.pos) + 1  # exclusive
        neg_end = pos_end  # exclusive lower bound for the negative walk
        core.recovery = _Recovery(
            offender_seq=f_seq,
            redirect_pc=offender.actual_target,
            pos_ptr=pos_start,
            pos_end=pos_end,
            neg_ptr=rht_tail_at_flush - 1,
            neg_end=neg_end,
            new_rht_tail=pos_end,
        )

    def step(self) -> None:
        core = self.core
        rec = core.recovery
        steps = core.config.recovery_walk_width
        rht = core.rht
        rat = core.rat
        entries = rht._entries
        rht_capacity = rht.capacity
        walk_advance = rht.walk_advance
        zero_pdst = core.zero_pdst
        pos_ptr = rec.pos_ptr
        pos_end = rec.pos_end
        while steps > 0 and pos_ptr < pos_end:
            entry = entries[pos_ptr % rht_capacity]
            if entry.has_dest:
                new_pdst = entry.new_pdst
                if new_pdst == zero_pdst and zero_pdst is not None:
                    rat.write_zero_idiom(entry.ldst)
                else:
                    rat.write(entry.ldst, new_pdst)
            if walk_advance():
                pos_ptr += 1
            steps -= 1
        rec.pos_ptr = pos_ptr
        neg_ptr = rec.neg_ptr
        neg_end = rec.neg_end
        if steps > 0 and neg_ptr >= neg_end:
            free_push = core.free_list.push
            while steps > 0 and neg_ptr >= neg_end:
                entry = entries[neg_ptr % rht_capacity]
                if entry.has_dest and entry.new_pdst != zero_pdst:
                    free_push(entry.new_pdst)
                if walk_advance():
                    neg_ptr -= 1
                steps -= 1
            rec.neg_ptr = neg_ptr
        if pos_ptr >= pos_end and neg_ptr < neg_end:
            self._finish(rec.redirect_pc, rec.new_rht_tail)

    def save_recovery(self):
        rec = self.core.recovery
        return None if rec is None else (
            rec.offender_seq, rec.redirect_pc, rec.pos_ptr, rec.pos_end,
            rec.neg_ptr, rec.neg_end, rec.new_rht_tail,
        )

    def load_recovery(self, rec):
        return None if rec is None else _Recovery(*rec)


class RobWalkRecovery(RecoveryStrategy):
    """Unwind squashed ROB entries youngest-first, no checkpoint restore.

    Each undo step reads the entry's evicted and allocated PdstID fields
    through the gated walk port, writes the evicted mapping back through
    the regular RAT write port and pushes the allocation back to the FL,
    at ``recovery_walk_width`` entries per cycle.
    """

    name = "rob-walk"
    #: checkpoint-free overrides: commit drains before the unwind starts.
    drain = False

    def begin(self, offender: "Uop", f_seq: int, rht_tail_at_flush: int) -> None:
        core = self.core
        rob_tail_before = core.rob.tail_pos
        records = []
        for slot in reversed(core.rob.live_slots()):  # youngest first
            if slot.seq <= f_seq:
                break
            if not slot.has_dest or slot.uop is None:
                continue
            records.append(
                (slot.seq, slot.uop.inst.rd, slot.evicted_pdst, slot.new_pdst)
            )
        core.rob.squash_after(f_seq)
        # Wrong-path checkpoints are released on every scheme: they anchor
        # RHT reclamation, and a stale one must never outlive its squash.
        core.ckpt.free_younger_than(f_seq + 1)
        # RHT/ROB lockstep (one log per allocation) locates the offender's
        # RHT position by pure pointer arithmetic -- no checkpoint needed.
        squashed = rob_tail_before - (f_seq + 1)
        core.recovery = _WalkRecovery(
            offender_seq=f_seq,
            redirect_pc=offender.actual_target,
            new_rht_tail=rht_tail_at_flush - squashed,
            records=tuple(records),
            idx=0,
            draining=self.drain,
        )

    def step(self) -> None:
        core = self.core
        rec = core.recovery
        if rec.draining:
            if not self._drain_step():
                return
            rec.draining = False
        steps = core.config.recovery_walk_width
        records = rec.records
        total = len(records)
        idx = rec.idx
        unwind = self._unwind_one
        while steps > 0 and idx < total:
            unwind(*records[idx])
            idx += 1
            steps -= 1
        rec.idx = idx
        if idx >= total:
            self._finish(rec.redirect_pc, rec.new_rht_tail)

    def _drain_step(self) -> bool:  # pragma: no cover - checkpoint-free only
        raise NotImplementedError

    def _unwind_one(self, seq: int, ldst: int, evicted: int, new_pdst: int) -> None:
        core = self.core
        zero = core.zero_pdst
        rob = core.rob
        # Read both PdstID fields through the gated walk port; a suppressed
        # enable substitutes the port latch's stale value downstream.
        if evicted != zero:
            evicted = rob.walk_read_pdst(evicted, seq)
        if new_pdst != zero:
            new_pdst = rob.walk_read_pdst(new_pdst, seq)
        # Undo the RAT write: the evicted mapping returns through the
        # regular write port (shared-zero evictions via the idiom port).
        if evicted == zero and zero is not None:
            core.rat.write_zero_idiom(ldst)
        else:
            core.rat.write(ldst, evicted)
        # Return the wrong-path allocation to the Free List.
        if new_pdst != zero:
            core.free_list.push(new_pdst)

    def save_recovery(self):
        rec = self.core.recovery
        return None if rec is None else (
            rec.offender_seq, rec.redirect_pc, rec.new_rht_tail,
            rec.records, rec.idx, rec.draining,
        )

    def load_recovery(self, rec):
        if rec is None:
            return None
        offender_seq, redirect_pc, new_rht_tail, records, idx, draining = rec
        return _WalkRecovery(
            offender_seq=offender_seq,
            redirect_pc=redirect_pc,
            new_rht_tail=new_rht_tail,
            records=tuple(tuple(r) for r in records),
            idx=idx,
            draining=draining,
        )


class CheckpointFreeRecovery(RobWalkRecovery):
    """Recovery-at-drain: older work keeps committing through the recovery
    window; once the pipeline has drained to the flush point the squashed
    entries unwind as in ``rob-walk``. The CKPT restore path is never used
    -- checkpoints only serve as RHT-reclamation anchors."""

    name = "checkpoint-free"
    drain = True

    def _drain_step(self) -> bool:
        """Commit up to ``width`` older instructions; True once drained.

        The drain must stop at a resolved mispredict older than the
        current flush point: committing *it* would commit the wrong-path
        work behind it. The pending flush takes over as the next recovery
        the moment this one finishes.
        """
        core = self.core
        blocked = {id(u) for u in core.pending_flushes}
        core._commit_stage(blocked=blocked)
        if core.rob.empty:
            return True
        head = core.rob.head_slot
        return head is not None and id(head.uop) in blocked


_STRATEGIES = {
    CheckpointRecovery.name: CheckpointRecovery,
    RobWalkRecovery.name: RobWalkRecovery,
    CheckpointFreeRecovery.name: CheckpointFreeRecovery,
}


def make_recovery_strategy(name: str, core: "OoOCore") -> RecoveryStrategy:
    """Instantiate the strategy for a ``CoreConfig.recovery_strategy``."""
    try:
        cls = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery strategy {name!r}; "
            f"choose one of {tuple(_STRATEGIES)}"
        ) from None
    return cls(core)
