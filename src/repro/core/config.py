"""Core configuration.

Defaults mirror the RRS configuration of the paper's Section VI.A: 128
physical registers (which size the Free List and the Register History Table
at 128 entries each), a 96-entry ReOrder Buffer, a 32-entry Register Alias
Table and 4 RAT checkpoints. Rename width defaults to 4 (the paper sweeps
1/2/4/6/8 for the RTL study; the bug-modeling study uses a superscalar
configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.isa.instructions import NUM_LOGICAL_REGS, Opcode

#: Execution latency (cycles) per opcode; anything absent defaults to 1.
DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
    Opcode.LD: 2,
    Opcode.ST: 1,
}


@dataclass
class CoreConfig:
    """Static configuration of the out-of-order core and its RRS.

    Attributes:
        width: Superscalar width used for fetch, rename and commit.
        issue_width: Maximum instructions issued to execution per cycle.
        num_physical_regs: Size of the merged physical register file; also
            sizes the FL and RHT per the paper.
        rob_entries: ReOrder Buffer capacity.
        num_checkpoints: RAT checkpoint slots (CKPT table size).
        checkpoint_interval: A checkpoint is taken every this many ROB
            allocations ("at every fixed number of ROB entry allocations").
        issue_queue_entries: Scheduler capacity.
        fetch_buffer_entries: Decoded-instruction buffer between fetch and
            rename.
        store_queue_entries: In-flight store capacity.
        recovery_walk_width: RHT entries processed per cycle during the
            positive/negative recovery walks (flush recovery is multi-cycle,
            Section V.C).
        memory_limit: First illegal data address; committed accesses at or
            beyond it raise :class:`repro.core.errors.MemoryFault`.
        latencies: Per-opcode execute latencies.
        predictor_entries: Branch predictor 2-bit-counter table size.
        deadlock_cycles: Declare deadlock after this many cycles without a
            commit or a flush while instructions are in flight.
    """

    width: int = 4
    issue_width: int = 0  # 0 -> same as width
    num_physical_regs: int = 128
    rob_entries: int = 96
    num_checkpoints: int = 4
    checkpoint_interval: int = 24
    issue_queue_entries: int = 48
    fetch_buffer_entries: int = 16
    store_queue_entries: int = 24
    recovery_walk_width: int = 4
    memory_limit: int = 1 << 20
    latencies: Dict[Opcode, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    predictor_kind: str = "gshare"  # "gshare" | "bimodal"
    predictor_entries: int = 1024
    predictor_history_bits: int = 10
    deadlock_cycles: int = 20_000
    #: Section V.E optimization: rename zero idioms (``li rd, 0`` and
    #: ``xor rd, rs, rs``) to a shared hardwired-zero register instead of
    #: allocating a Pdst. The RAT asserts a duplicate-marking signal so
    #: IDLD skips the shared identifier; suppressing that signal is itself
    #: an injectable bug the checker must catch.
    zero_idiom_elimination: bool = False

    def __post_init__(self) -> None:
        if self.issue_width <= 0:
            self.issue_width = self.width
        if self.num_physical_regs <= NUM_LOGICAL_REGS:
            raise ValueError(
                "need more physical than logical registers "
                f"({self.num_physical_regs} <= {NUM_LOGICAL_REGS})"
            )
        if self.rob_entries < self.width:
            raise ValueError("ROB must hold at least one rename group")
        if self.num_checkpoints < 1:
            raise ValueError("need at least one checkpoint slot")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")
        if self.predictor_kind not in ("gshare", "bimodal"):
            raise ValueError(f"unknown predictor kind {self.predictor_kind!r}")
        # The RHT must be able to hold every in-flight instruction plus the
        # committed-but-unreclaimed tail behind the anchor checkpoint.
        min_rht = self.rob_entries + self.checkpoint_interval
        if self.rht_entries < min_rht:
            raise ValueError(
                f"RHT too small: {self.rht_entries} < rob_entries + "
                f"checkpoint_interval = {min_rht}"
            )

    @property
    def rht_entries(self) -> int:
        """RHT capacity; sized by the physical register count per the paper."""
        return self.num_physical_regs

    @property
    def free_list_entries(self) -> int:
        """FL capacity; sized by the physical register count per the paper."""
        return self.num_physical_regs

    @property
    def pdst_bits(self) -> int:
        """Bits needed to encode one PdstID."""
        return max(1, (self.num_physical_regs - 1).bit_length())

    @property
    def zero_pdst(self):
        """The hardwired-zero register id, or None when the optimization is
        off. It sits outside the tracked token set {0..num_physical-1}."""
        if self.zero_idiom_elimination:
            return self.num_physical_regs
        return None


def paper_rrs_config(width: int = 4) -> CoreConfig:
    """The exact RRS geometry of the paper's Section VI.A at a given width."""
    return CoreConfig(
        width=width,
        num_physical_regs=128,
        rob_entries=96,
        num_checkpoints=4,
        checkpoint_interval=24,
    )
