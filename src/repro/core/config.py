"""Core configuration.

Defaults mirror the RRS configuration of the paper's Section VI.A: 128
physical registers (which size the Free List and the Register History Table
at 128 entries each), a 96-entry ReOrder Buffer, a 32-entry Register Alias
Table and 4 RAT checkpoints. Rename width defaults to 4 (the paper sweeps
1/2/4/6/8 for the RTL study; the bug-modeling study uses a superscalar
configuration).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from typing import Dict, Optional

from repro.isa.instructions import NUM_LOGICAL_REGS, Opcode

#: Execution latency (cycles) per opcode; anything absent defaults to 1.
DEFAULT_LATENCIES: Dict[Opcode, int] = {
    Opcode.MUL: 3,
    Opcode.DIV: 12,
    Opcode.REM: 12,
    Opcode.LD: 2,
    Opcode.ST: 1,
}

#: Free-list disciplines the core can instantiate (see core/rrs/free_list.py).
FREE_LIST_DISCIPLINES = ("fifo", "stack")

#: Flush-recovery strategies the core can instantiate (see core/recovery.py).
RECOVERY_STRATEGIES = ("checkpoint", "rob-walk", "checkpoint-free")


@dataclass
class CoreConfig:
    """Static configuration of the out-of-order core and its RRS.

    Attributes:
        width: Superscalar width used for fetch, rename and commit.
        issue_width: Maximum instructions issued to execution per cycle.
        num_physical_regs: Size of the merged physical register file; also
            sizes the FL and RHT per the paper.
        rob_entries: ReOrder Buffer capacity.
        num_checkpoints: RAT checkpoint slots (CKPT table size).
        checkpoint_interval: A checkpoint is taken every this many ROB
            allocations ("at every fixed number of ROB entry allocations").
        issue_queue_entries: Scheduler capacity.
        fetch_buffer_entries: Decoded-instruction buffer between fetch and
            rename.
        store_queue_entries: In-flight store capacity.
        recovery_walk_width: RHT entries processed per cycle during the
            positive/negative recovery walks (flush recovery is multi-cycle,
            Section V.C).
        memory_limit: First illegal data address; committed accesses at or
            beyond it raise :class:`repro.core.errors.MemoryFault`.
        latencies: Per-opcode execute latencies.
        predictor_entries: Branch predictor 2-bit-counter table size.
        deadlock_cycles: Declare deadlock after this many cycles without a
            commit or a flush while instructions are in flight.
    """

    width: int = 4
    issue_width: int = 0  # 0 -> same as width
    num_physical_regs: int = 128
    rob_entries: int = 96
    num_checkpoints: int = 4
    checkpoint_interval: int = 24
    issue_queue_entries: int = 48
    fetch_buffer_entries: int = 16
    store_queue_entries: int = 24
    recovery_walk_width: int = 4
    memory_limit: int = 1 << 20
    latencies: Dict[Opcode, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES)
    )
    predictor_kind: str = "gshare"  # "gshare" | "bimodal"
    predictor_entries: int = 1024
    predictor_history_bits: int = 10
    deadlock_cycles: int = 20_000
    #: Section V.E optimization: rename zero idioms (``li rd, 0`` and
    #: ``xor rd, rs, rs``) to a shared hardwired-zero register instead of
    #: allocating a Pdst. The RAT asserts a duplicate-marking signal so
    #: IDLD skips the shared identifier; suppressing that signal is itself
    #: an injectable bug the checker must catch.
    zero_idiom_elimination: bool = False
    #: Free List organization: "fifo" (the paper's circular queue) or
    #: "stack" (LIFO reuse, as in several real cores). Purely a policy
    #: axis -- the detectors must work unchanged on either.
    free_list_discipline: str = "fifo"
    #: Flush-recovery scheme: "checkpoint" (RAT restore + RHT walks, the
    #: paper's design), "rob-walk" (unwind squashed ROB entries youngest
    #: first), or "checkpoint-free" (drain older work, then unwind --
    #: recovery without the CKPT restore path).
    recovery_strategy: str = "checkpoint"
    #: Array-accelerated hot stages (bitmask wakeup scoreboard, min-finish
    #: execute gating). Pure throughput knob with bit-identical observable
    #: behavior, so it is **excluded** from :meth:`to_dict` and therefore
    #: from the design-point :meth:`digest` -- two runs differing only in
    #: ``accel`` are the same design point. None defers to the
    #: ``REPRO_ACCEL`` environment variable (default on); True/False pin it.
    accel: Optional[bool] = None

    def accel_enabled(self) -> bool:
        """Resolve the accelerator toggle: explicit field wins, else the
        ``REPRO_ACCEL`` environment variable, else on."""
        if self.accel is not None:
            return self.accel
        env = os.environ.get("REPRO_ACCEL", "").strip().lower()
        return env not in ("0", "off", "false", "python")

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.issue_width <= 0:
            self.issue_width = self.width
        if self.issue_width > self.width:
            raise ValueError(
                f"issue_width {self.issue_width} exceeds width {self.width}; "
                "the scheduler cannot issue more than one rename group per "
                "cycle (set issue_width=0 to track width)"
            )
        if self.num_physical_regs <= NUM_LOGICAL_REGS:
            raise ValueError(
                "need more physical than logical registers "
                f"({self.num_physical_regs} <= {NUM_LOGICAL_REGS})"
            )
        if self.rob_entries < self.width:
            raise ValueError("ROB must hold at least one rename group")
        if self.num_checkpoints < 1:
            raise ValueError("need at least one checkpoint slot")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")
        for name in (
            "issue_queue_entries",
            "fetch_buffer_entries",
            "store_queue_entries",
            "recovery_walk_width",
            "memory_limit",
            "predictor_entries",
            "predictor_history_bits",
            "deadlock_cycles",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        if self.predictor_kind not in ("gshare", "bimodal"):
            raise ValueError(f"unknown predictor kind {self.predictor_kind!r}")
        if self.free_list_discipline not in FREE_LIST_DISCIPLINES:
            raise ValueError(
                f"unknown free_list_discipline "
                f"{self.free_list_discipline!r}; "
                f"choose one of {FREE_LIST_DISCIPLINES}"
            )
        if self.recovery_strategy not in RECOVERY_STRATEGIES:
            raise ValueError(
                f"unknown recovery_strategy {self.recovery_strategy!r}; "
                f"choose one of {RECOVERY_STRATEGIES}"
            )
        # The RHT must be able to hold every in-flight instruction plus the
        # committed-but-unreclaimed tail behind the anchor checkpoint.
        min_rht = self.rob_entries + self.checkpoint_interval
        if self.rht_entries < min_rht:
            raise ValueError(
                f"RHT too small: {self.rht_entries} < rob_entries + "
                f"checkpoint_interval = {min_rht}"
            )

    @property
    def rht_entries(self) -> int:
        """RHT capacity; sized by the physical register count per the paper."""
        return self.num_physical_regs

    @property
    def free_list_entries(self) -> int:
        """FL capacity; sized by the physical register count per the paper."""
        return self.num_physical_regs

    @property
    def pdst_bits(self) -> int:
        """Bits needed to encode one PdstID."""
        return max(1, (self.num_physical_regs - 1).bit_length())

    @property
    def zero_pdst(self):
        """The hardwired-zero register id, or None when the optimization is
        off. It sits outside the tracked token set {0..num_physical-1}."""
        if self.zero_idiom_elimination:
            return self.num_physical_regs
        return None

    # -- canonical (de)serialization -----------------------------------------
    #
    # The single source of truth for a *design point*: task construction,
    # campaign/fuzz checkpoint manifests, fuzz repro artifacts and the
    # sweep CLI all round-trip configurations through these two methods.

    def to_dict(self) -> Dict[str, object]:
        """Serialize every constructor field as JSON-safe plain data.

        ``latencies`` becomes ``{opcode name: cycles}`` in opcode-name
        order; ``issue_width`` is emitted resolved (never the 0 sentinel),
        so a round trip compares equal.
        """
        data = {}
        for spec in fields(self):
            # ``accel`` is a host-side throughput toggle, not part of the
            # simulated design; keeping it out of the canonical dict keeps
            # checkpoint manifests and digests stable across hosts.
            if spec.name in ("latencies", "accel"):
                continue
            data[spec.name] = getattr(self, spec.name)
        data["latencies"] = {
            op.value: cycles for op, cycles in sorted(
                self.latencies.items(), key=lambda item: item[0].value
            )
        }
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CoreConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys are ignored (a newer writer's file still loads) and
        absent keys fall back to the dataclass defaults (an older file
        predating an axis loads as that axis's default).
        """
        known = {spec.name for spec in fields(cls)}
        kwargs = {
            name: value
            for name, value in data.items()
            if name in known and name != "latencies"
        }
        if data.get("latencies") is not None:
            kwargs["latencies"] = {
                Opcode(name): int(cycles)
                for name, cycles in data["latencies"].items()
            }
        return cls(**kwargs)

    def digest(self) -> str:
        """Stable short hash of the design point (identity checks)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


def paper_rrs_config(
    width: int = 4,
    free_list_discipline: str = "fifo",
    recovery_strategy: str = "checkpoint",
) -> CoreConfig:
    """The exact RRS geometry of the paper's Section VI.A at a given width.

    The two policy axes default to the paper's design (FIFO free list,
    checkpoint-restore recovery); the sweep CLI varies them per cell.
    """
    return CoreConfig(
        width=width,
        num_physical_regs=128,
        rob_entries=96,
        num_checkpoints=4,
        checkpoint_interval=24,
        free_list_discipline=free_list_discipline,
        recovery_strategy=recovery_strategy,
    )
