"""Merged physical register file and readiness scoreboard.

"The results of operations are stored in a single physical register file
that combines the architectural and speculative state" (Section II). The
value storage is deliberately bug-transparent: rename bugs that map two
producers onto the same physical register, or a consumer onto a stale one,
corrupt dataflow *through values*, which is how leakage/duplication
eventually manifests architecturally (Figure 2's walkthrough).
"""

from __future__ import annotations

from typing import List


class PhysicalRegisterFile:
    """Values + ready bits for every physical register.

    Alongside the per-register ready list (the canonical representation
    that ``save_state`` serializes), the file maintains ``ready_mask``, a
    flat scoreboard: one Python integer with bit ``p`` set iff register
    ``p`` is ready. The issue stage's accelerated path tests all of a
    uop's sources with a single ``src_mask & ~ready_mask`` instead of a
    per-source ``is_ready`` loop; both representations are updated by the
    same two mutators, so they can never disagree.
    """

    def __init__(self, num_regs: int) -> None:
        if num_regs < 1:
            raise ValueError("num_regs must be positive")
        self.num_regs = num_regs
        self._values: List[int] = [0] * num_regs
        self._ready: List[bool] = [True] * num_regs
        #: Flat readiness scoreboard: bit ``p`` == ``self._ready[p]``.
        self.ready_mask: int = (1 << num_regs) - 1
        # Both ports are bare array indexes with no side effects, so bind
        # them straight to the list's C-level getitem. Every mutator below
        # edits the lists in place (never rebinds them), which keeps these
        # bindings valid for the life of the file.
        self.read = self._values.__getitem__
        self.is_ready = self._ready.__getitem__

    def reset(self) -> None:
        """Power-on: all registers hold zero and are ready."""
        self._values[:] = [0] * self.num_regs
        self._ready[:] = [True] * self.num_regs
        self.ready_mask = (1 << self.num_regs) - 1

    def mark_pending(self, pdst: int) -> None:
        """A newly-allocated destination awaits its producer."""
        self._ready[pdst] = False
        self.ready_mask &= ~(1 << pdst)

    def write(self, pdst: int, value: int) -> None:
        """Producer writeback: store the value and wake consumers."""
        self._values[pdst] = value
        self._ready[pdst] = True
        self.ready_mask |= 1 << pdst

    # ``read`` and ``is_ready`` are instance attributes bound in __init__
    # (direct list getitem); the defs here document the port signatures and
    # serve any subclass that re-binds them.
    def is_ready(self, pdst: int) -> bool:  # pragma: no cover - shadowed
        return self._ready[pdst]

    def read(self, pdst: int) -> int:  # pragma: no cover - shadowed
        return self._values[pdst]

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot values + ready bits."""
        return (tuple(self._values), tuple(self._ready))

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        values, ready = state
        # Slice-assign keeps the list identities stable for the bound ports.
        self._values[:] = values
        self._ready[:] = ready
        mask = 0
        for pdst, bit in enumerate(ready):
            if bit:
                mask |= 1 << pdst
        self.ready_mask = mask
