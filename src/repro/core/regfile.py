"""Merged physical register file and readiness scoreboard.

"The results of operations are stored in a single physical register file
that combines the architectural and speculative state" (Section II). The
value storage is deliberately bug-transparent: rename bugs that map two
producers onto the same physical register, or a consumer onto a stale one,
corrupt dataflow *through values*, which is how leakage/duplication
eventually manifests architecturally (Figure 2's walkthrough).
"""

from __future__ import annotations

from typing import List


class PhysicalRegisterFile:
    """Values + ready bits for every physical register."""

    def __init__(self, num_regs: int) -> None:
        if num_regs < 1:
            raise ValueError("num_regs must be positive")
        self.num_regs = num_regs
        self._values: List[int] = [0] * num_regs
        self._ready: List[bool] = [True] * num_regs

    def reset(self) -> None:
        """Power-on: all registers hold zero and are ready."""
        self._values = [0] * self.num_regs
        self._ready = [True] * self.num_regs

    def mark_pending(self, pdst: int) -> None:
        """A newly-allocated destination awaits its producer."""
        self._ready[pdst] = False

    def write(self, pdst: int, value: int) -> None:
        """Producer writeback: store the value and wake consumers."""
        self._values[pdst] = value
        self._ready[pdst] = True

    def is_ready(self, pdst: int) -> bool:
        return self._ready[pdst]

    def read(self, pdst: int) -> int:
        return self._values[pdst]

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot values + ready bits."""
        return (tuple(self._values), tuple(self._ready))

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        values, ready = state
        self._values = list(values)
        self._ready = list(ready)
