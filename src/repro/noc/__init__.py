"""Credit-based NoC link: the generic-flow use case of Section V.F."""

from repro.noc.link import (
    CreditLink,
    Flit,
    LinkAssertion,
    LinkStats,
    run_traffic,
)
from repro.noc.signals import ArmedNocSuppression, NocSignal, NocSignalFabric

__all__ = [
    "ArmedNocSuppression",
    "CreditLink",
    "Flit",
    "LinkAssertion",
    "LinkStats",
    "NocSignal",
    "NocSignalFabric",
    "run_traffic",
]
