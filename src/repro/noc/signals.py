"""Control signals of the NoC credit link, with bug injection."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class NocSignal(enum.Enum):
    """Injectable link control signals."""

    #: Deliver an in-flight flit into the receive buffer.
    FLIT_DELIVER = "flit_deliver"
    #: Return a credit upstream when a buffer slot drains.
    CREDIT_RETURN = "credit_return"
    #: Decrement the sender's credit counter on injection.
    CREDIT_CONSUME = "credit_consume"


@dataclass
class ArmedNocSuppression:
    """One-shot de-assertion of one link control signal."""

    signal: NocSignal
    from_cycle: int
    fired: bool = False
    fired_cycle: Optional[int] = None


class NocSignalFabric:
    """Consultation point for the link's control signals."""

    def __init__(self) -> None:
        self.cycle = 0
        self._suppressions: List[ArmedNocSuppression] = []

    def arm(self, signal: NocSignal, from_cycle: int) -> ArmedNocSuppression:
        armed = ArmedNocSuppression(signal, from_cycle)
        self._suppressions.append(armed)
        return armed

    def asserted(self, signal: NocSignal) -> bool:
        for armed in self._suppressions:
            if (
                not armed.fired
                and armed.signal is signal
                and self.cycle >= armed.from_cycle
            ):
                armed.fired = True
                armed.fired_cycle = self.cycle
                return False
        return True
