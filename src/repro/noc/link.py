"""A credit-based NoC link guarded by the generic flow checker.

Section V.F's closing claim is that the IDLD recipe transfers to "bus
communication, exchanges between NoC links, FIFOs etc." -- any closed loop
of tokens. A credit-managed link has two such loops at once:

* **flits**: every flit injected upstream must arrive in the receive
  buffer and be drained by the consumer (loss = leakage; a delivery into a
  full buffer = the duplication analog);
* **credits**: every credit consumed at injection must return when its
  buffer slot drains; the per-VC credit population is a fixed resource
  exactly like the Pdst pool.

Two :class:`repro.idld.flow.FlowInvariantChecker` instances guard the two
loops; the link's control signals (deliver, credit-return, credit-consume)
are injectable through :class:`repro.noc.signals.NocSignalFabric`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.idld.flow import FlowInvariantChecker
from repro.noc.signals import NocSignal, NocSignalFabric


class LinkAssertion(Exception):
    """A hardware-impossible state was reached (e.g. buffer overflow)."""

    def __init__(self, cycle: int, message: str) -> None:
        super().__init__(f"cycle {cycle}: {message}")
        self.cycle = cycle


@dataclass
class Flit:
    """One link transfer unit."""

    flit_id: int
    vc: int
    payload: int


@dataclass
class LinkStats:
    """Run statistics."""

    injected: int = 0
    delivered: int = 0
    drained: int = 0
    stalled_injections: int = 0
    cycles: int = 0


class CreditLink:
    """Point-to-point link with per-VC credit flow control.

    Args:
        num_vcs: Virtual channels.
        buffer_depth: Receive-buffer slots per VC (= credits per VC).
        wire_latency: Cycles a flit or credit spends on the wire.
        drain_rate: Flits the consumer drains per cycle (across VCs).
        id_space: Flit identifier space (must exceed the maximum number of
            flits in flight so ids are unique while outstanding).
        fabric: Signal fabric (bug injection).
    """

    def __init__(
        self,
        num_vcs: int = 2,
        buffer_depth: int = 4,
        wire_latency: int = 3,
        drain_rate: int = 1,
        id_space: int = 64,
        fabric: Optional[NocSignalFabric] = None,
    ) -> None:
        if buffer_depth < 1 or num_vcs < 1:
            raise ValueError("need at least one VC and one buffer slot")
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.wire_latency = wire_latency
        self.drain_rate = drain_rate
        self.id_space = id_space
        self.fabric = fabric or NocSignalFabric()

        self.cycle = 0
        self.credits: List[int] = [buffer_depth] * num_vcs
        self.flit_wire: List[Tuple[int, Flit]] = []
        self.credit_wire: List[Tuple[int, int]] = []  # (arrive_cycle, vc)
        self.rx_buffers: List[List[Flit]] = [[] for _ in range(num_vcs)]
        self.delivered_payloads: List[int] = []
        self.stats = LinkStats()
        self._next_flit_id = 0

        #: The two flow guards of the module docstring.
        self.flit_guard = FlowInvariantChecker(id_space)
        self.credit_guard = FlowInvariantChecker(num_vcs)

    # -- sender side ------------------------------------------------------------

    def try_inject(self, vc: int, payload: int) -> bool:
        """Inject one flit on ``vc`` if a credit is available."""
        if self.credits[vc] <= 0:
            self.stats.stalled_injections += 1
            return False
        flit = Flit(self._next_flit_id % self.id_space, vc, payload)
        self._next_flit_id += 1
        if self.fabric.asserted(NocSignal.CREDIT_CONSUME):
            self.credits[vc] -= 1
            self.credit_guard.source(vc)
        # A suppressed consume leaves the counter high: the sender will
        # over-inject and eventually overrun the receive buffer.
        self.flit_guard.source(flit.flit_id)
        self.flit_wire.append((self.cycle + self.wire_latency, flit))
        self.stats.injected += 1
        return True

    # -- one cycle ----------------------------------------------------------------

    def step(self) -> None:
        self.cycle += 1
        self.fabric.cycle = self.cycle
        self.stats.cycles = self.cycle
        self._deliver_flits()
        self._drain_buffers()
        self._receive_credits()
        self.flit_guard.tick(self.cycle)
        self.credit_guard.tick(self.cycle)
        if self.idle:
            self.flit_guard.quiescent(self.cycle)
            self.credit_guard.quiescent(self.cycle)

    def _deliver_flits(self) -> None:
        arriving = [f for f in self.flit_wire if f[0] <= self.cycle]
        self.flit_wire = [f for f in self.flit_wire if f[0] > self.cycle]
        for _, flit in arriving:
            if self.fabric.asserted(NocSignal.FLIT_DELIVER):
                buffer = self.rx_buffers[flit.vc]
                if len(buffer) >= self.buffer_depth:
                    raise LinkAssertion(
                        self.cycle,
                        f"VC{flit.vc} receive-buffer overflow",
                    )
                buffer.append(flit)
                self.stats.delivered += 1
            # Suppressed delivery: the flit vanishes on the wire (leakage).

    def _drain_buffers(self) -> None:
        drained = 0
        for vc in range(self.num_vcs):
            while drained < self.drain_rate and self.rx_buffers[vc]:
                flit = self.rx_buffers[vc].pop(0)
                self.delivered_payloads.append(flit.payload)
                self.flit_guard.sink(flit.flit_id)
                self.stats.drained += 1
                drained += 1
                if self.fabric.asserted(NocSignal.CREDIT_RETURN):
                    self.credit_wire.append(
                        (self.cycle + self.wire_latency, vc)
                    )
                # Suppressed return: the credit leaks; the VC's usable
                # window shrinks permanently (starvation/deadlock risk).

    def _receive_credits(self) -> None:
        arriving = [c for c in self.credit_wire if c[0] <= self.cycle]
        self.credit_wire = [c for c in self.credit_wire if c[0] > self.cycle]
        for _, vc in arriving:
            if self.credits[vc] >= self.buffer_depth:
                raise LinkAssertion(
                    self.cycle, f"VC{vc} credit counter overflow"
                )
            self.credits[vc] += 1
            self.credit_guard.sink(vc)

    # -- probes ----------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No flits or credits anywhere in the loop."""
        return (
            not self.flit_wire
            and not self.credit_wire
            and all(not buffer for buffer in self.rx_buffers)
        )

    def credit_census_clean(self) -> bool:
        """Ground truth: each VC's credits + in-loop occupancy == depth."""
        for vc in range(self.num_vcs):
            in_buffer = len(self.rx_buffers[vc])
            on_flit_wire = sum(1 for _, f in self.flit_wire if f.vc == vc)
            on_credit_wire = sum(1 for _, v in self.credit_wire if v == vc)
            total = self.credits[vc] + in_buffer + on_flit_wire + on_credit_wire
            if total != self.buffer_depth:
                return False
        return True


def run_traffic(
    link: CreditLink,
    num_flits: int,
    seed: int = 5,
    inject_rate: float = 0.6,
    max_cycles: int = 50_000,
) -> LinkStats:
    """Drive a seeded bursty traffic pattern through a link.

    Returns once every flit is injected and the loop is idle, or at the
    cycle budget (a starved/hung link never reaches idle).
    """
    rng = random.Random(seed)
    to_send = num_flits
    while link.cycle < max_cycles:
        if to_send > 0 and rng.random() < inject_rate:
            vc = rng.randrange(link.num_vcs)
            if link.try_inject(vc, payload=rng.getrandbits(16)):
                to_send -= 1
        link.step()
        if to_send == 0 and link.idle:
            break
    return link.stats
