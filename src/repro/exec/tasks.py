"""Task decomposition of an injection campaign.

A campaign is a flat list of :class:`InjectionTask` units, one per
(benchmark, bug model, run index) triple, generated up-front in a canonical
order. Each task carries a ``derived_seed`` computed from the master seed
with a stable hash, so every task owns an independent random stream: the
specs it draws are identical whether the task runs first or last, serially
or on any number of workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.bugs.models import BugModel, PRIMARY_MODELS

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.campaign import InjectionResult
    from repro.bugs.snapshot import SnapshotProvider
    from repro.core.config import CoreConfig
    from repro.core.cpu import RunResult
    from repro.isa.program import Program

#: Domain separator for seed derivation; bump if the scheme ever changes.
SEED_NAMESPACE = "idld-campaign-v1"


def derive_seed(
    master_seed: int, benchmark: str, model: BugModel, run_index: int
) -> int:
    """Derive a per-task seed from the campaign master seed.

    Uses a stable cryptographic hash (not Python's randomized ``hash()``)
    so the value is identical across processes, platforms and Python
    versions.
    """
    key = f"{SEED_NAMESPACE}:{master_seed}:{benchmark}:{model.value}:{run_index}"
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class InjectionTask:
    """One unit of campaign work: a single injection with its own seed.

    Attributes:
        index: Position in the canonical campaign order; results are
            re-sorted by this after execution, whatever the backend did.
        benchmark: Workload name (key into the campaign's program dict).
        model: The bug model to draw from.
        run_index: Which of the ``runs_per_model`` repetitions this is.
        derived_seed: Task-local seed (see :func:`derive_seed`).
        max_attempts: Redraws allowed until the injection activates.
    """

    index: int
    benchmark: str
    model: BugModel
    run_index: int
    derived_seed: int
    max_attempts: int = 6
    #: Design-point digest (CoreConfig.digest()) the task was generated
    #: for, or None when the campaign runs the default configuration. A
    #: task is only meaningful against the core geometry it was drawn for
    #: (inject-cycle windows, Pdst widths and array sizes all depend on
    #: it), so the digest travels with the task and into checkpoints.
    design_point: Optional[str] = None

    @property
    def key(self) -> str:
        """Stable identity used for checkpoint/resume matching."""
        return f"{self.benchmark}/{self.model.value}/{self.run_index}"


def generate_tasks(
    benchmarks: Sequence[str],
    runs_per_model: int,
    models: Iterable[BugModel] = PRIMARY_MODELS,
    seed: int = 1,
    max_attempts: int = 6,
    config: Optional["CoreConfig"] = None,
) -> List[InjectionTask]:
    """Generate the full campaign task list in canonical order.

    The order is benchmark-major, then model, then run index — matching the
    historical serial loop, so exports keep their row order. ``config``
    stamps each task with the campaign's design-point digest; seed
    derivation is deliberately config-independent (the same master seed
    explores the same injection streams at every design point).
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if runs_per_model < 0:
        raise ValueError(f"runs_per_model must be >= 0, got {runs_per_model}")
    design_point = None if config is None else config.digest()
    tasks: List[InjectionTask] = []
    for benchmark in benchmarks:
        for model in models:
            for run_index in range(runs_per_model):
                tasks.append(
                    InjectionTask(
                        index=len(tasks),
                        benchmark=benchmark,
                        model=model,
                        run_index=run_index,
                        derived_seed=derive_seed(
                            seed, benchmark, model, run_index
                        ),
                        max_attempts=max_attempts,
                        design_point=design_point,
                    )
                )
    return tasks


def execute_task(
    task: InjectionTask,
    program: "Program",
    golden: "RunResult",
    config: Optional["CoreConfig"] = None,
    snapshots: Optional["SnapshotProvider"] = None,
    deadline: Optional[float] = None,
    differential: bool = False,
) -> "InjectionResult":
    """Execute one task: draw from its private stream until activation.

    Pure with respect to the task — no shared RNG, no global state — so
    backends may run tasks in any order or process. ``snapshots`` and
    ``differential`` are throughput-only knobs: warm-started and
    differentially-executed attempts produce bit-identical results, so
    neither joins the task's identity. ``deadline`` (absolute
    ``time.monotonic()``) is the whole-task wall-clock budget shared by
    all redraw attempts; expiry raises
    :class:`~repro.core.errors.DeadlineExceeded` to the execution layer.
    """
    from repro.bugs.campaign import run_injection
    from repro.bugs.injector import draw_attempts
    from repro.core.config import CoreConfig

    result = None
    for spec in draw_attempts(
        task.model,
        task.derived_seed,
        golden.cycles,
        config or CoreConfig(),
        task.max_attempts,
    ):
        result = run_injection(
            program, golden, spec, config, snapshots=snapshots,
            deadline=deadline, differential=differential,
        )
        if result.activated:
            break
    assert result is not None  # max_attempts >= 1 is enforced at generation
    return result


@dataclass(frozen=True)
class BatchedInjectionTask:
    """A group of same-benchmark tasks executed back-to-back in one dispatch.

    Batching amortizes the per-task execution overhead — pool dispatch,
    future bookkeeping, checkpoint round-trips of the parent loop — across
    every member while leaving the members' *results* untouched: a batch is
    executed by running each member exactly as :func:`execute_task` would,
    against the same shared provider, so campaign outputs are bit-identical
    for any batch size (including 1, i.e. batching off).

    Members share a (benchmark, inject-window) group key — their first-draw
    inject cycles land in the same snapshot-interval window — so the warm
    restores of a batch walk the same region of the golden timeline and the
    provider's snapshots/delta stay hot in cache between members.

    The batch is the unit of dispatch, retry and quarantine; the engine
    fans results (or a failure) back out to the per-member checkpoint
    records, so resume works at task granularity and a re-run never
    re-executes completed members.
    """

    members: Tuple[InjectionTask, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a batch needs at least one member task")
        benchmarks = {t.benchmark for t in self.members}
        if len(benchmarks) != 1:
            raise ValueError(
                f"batch members must share one benchmark, got {benchmarks}"
            )

    @property
    def index(self) -> int:
        """Dispatch-ordering position: the first member's campaign index."""
        return self.members[0].index

    @property
    def benchmark(self) -> str:
        return self.members[0].benchmark

    @property
    def key(self) -> str:
        """Stable identity for retry/quarantine tracking (checkpoint records
        stay per-member, so this key never lands in artifacts)."""
        return f"batch/{self.members[0].key}*{len(self.members)}"


def execute_batch(
    batch: BatchedInjectionTask,
    program: "Program",
    golden: "RunResult",
    config: Optional["CoreConfig"] = None,
    snapshots: Optional["SnapshotProvider"] = None,
    deadline: Optional[float] = None,
    differential: bool = False,
) -> List["InjectionResult"]:
    """Execute every member of a batch, in member order.

    One result per member, each bit-identical to an unbatched
    :func:`execute_task` of that member. ``deadline`` covers the whole
    batch (the execution layer scales the per-task budget by the member
    count before computing it).
    """
    return [
        execute_task(
            task, program, golden, config,
            snapshots=snapshots, deadline=deadline, differential=differential,
        )
        for task in batch.members
    ]


def group_into_batches(
    tasks: Sequence[InjectionTask],
    goldens: "Dict[str, RunResult]",
    config: Optional["CoreConfig"],
    snapshot_interval: int,
    batch_size: int,
) -> List[Union[InjectionTask, BatchedInjectionTask]]:
    """Group pending tasks into dispatch batches by (benchmark, window).

    The group key is the snapshot-interval window of each task's *first*
    spec draw (replayed here from the task's derived seed — cheap, and the
    worker redraws identically), so one warm restore region serves a whole
    batch. Groups are chunked to at most ``batch_size`` members, singleton
    chunks stay plain :class:`InjectionTask`, and the batch list is ordered
    by first-member campaign index. Purely a dispatch-shape transform:
    the member set, member order inside a group, and every result are
    independent of ``batch_size``.
    """
    import random

    from repro.bugs.injector import draw_spec
    from repro.core.config import CoreConfig

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if batch_size == 1:
        return list(tasks)
    cfg = config or CoreConfig()
    window = snapshot_interval if snapshot_interval > 0 else 0
    groups: "Dict[tuple, List[InjectionTask]]" = {}
    for task in tasks:
        golden_cycles = goldens[task.benchmark].cycles
        spec = draw_spec(
            task.model, random.Random(task.derived_seed), golden_cycles, cfg
        )
        bucket = spec.inject_cycle // window if window else 0
        groups.setdefault((task.benchmark, bucket), []).append(task)
    out: List[Union[InjectionTask, BatchedInjectionTask]] = []
    for members in groups.values():
        for start in range(0, len(members), batch_size):
            chunk = members[start:start + batch_size]
            if len(chunk) == 1:
                out.append(chunk[0])
            else:
                out.append(BatchedInjectionTask(members=tuple(chunk)))
    out.sort(key=lambda unit: unit.index)
    return out
