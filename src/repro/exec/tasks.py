"""Task decomposition of an injection campaign.

A campaign is a flat list of :class:`InjectionTask` units, one per
(benchmark, bug model, run index) triple, generated up-front in a canonical
order. Each task carries a ``derived_seed`` computed from the master seed
with a stable hash, so every task owns an independent random stream: the
specs it draws are identical whether the task runs first or last, serially
or on any number of workers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.bugs.models import BugModel, PRIMARY_MODELS

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.campaign import InjectionResult
    from repro.bugs.snapshot import SnapshotProvider
    from repro.core.config import CoreConfig
    from repro.core.cpu import RunResult
    from repro.isa.program import Program

#: Domain separator for seed derivation; bump if the scheme ever changes.
SEED_NAMESPACE = "idld-campaign-v1"


def derive_seed(
    master_seed: int, benchmark: str, model: BugModel, run_index: int
) -> int:
    """Derive a per-task seed from the campaign master seed.

    Uses a stable cryptographic hash (not Python's randomized ``hash()``)
    so the value is identical across processes, platforms and Python
    versions.
    """
    key = f"{SEED_NAMESPACE}:{master_seed}:{benchmark}:{model.value}:{run_index}"
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class InjectionTask:
    """One unit of campaign work: a single injection with its own seed.

    Attributes:
        index: Position in the canonical campaign order; results are
            re-sorted by this after execution, whatever the backend did.
        benchmark: Workload name (key into the campaign's program dict).
        model: The bug model to draw from.
        run_index: Which of the ``runs_per_model`` repetitions this is.
        derived_seed: Task-local seed (see :func:`derive_seed`).
        max_attempts: Redraws allowed until the injection activates.
    """

    index: int
    benchmark: str
    model: BugModel
    run_index: int
    derived_seed: int
    max_attempts: int = 6
    #: Design-point digest (CoreConfig.digest()) the task was generated
    #: for, or None when the campaign runs the default configuration. A
    #: task is only meaningful against the core geometry it was drawn for
    #: (inject-cycle windows, Pdst widths and array sizes all depend on
    #: it), so the digest travels with the task and into checkpoints.
    design_point: Optional[str] = None

    @property
    def key(self) -> str:
        """Stable identity used for checkpoint/resume matching."""
        return f"{self.benchmark}/{self.model.value}/{self.run_index}"


def generate_tasks(
    benchmarks: Sequence[str],
    runs_per_model: int,
    models: Iterable[BugModel] = PRIMARY_MODELS,
    seed: int = 1,
    max_attempts: int = 6,
    config: Optional["CoreConfig"] = None,
) -> List[InjectionTask]:
    """Generate the full campaign task list in canonical order.

    The order is benchmark-major, then model, then run index — matching the
    historical serial loop, so exports keep their row order. ``config``
    stamps each task with the campaign's design-point digest; seed
    derivation is deliberately config-independent (the same master seed
    explores the same injection streams at every design point).
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    if runs_per_model < 0:
        raise ValueError(f"runs_per_model must be >= 0, got {runs_per_model}")
    design_point = None if config is None else config.digest()
    tasks: List[InjectionTask] = []
    for benchmark in benchmarks:
        for model in models:
            for run_index in range(runs_per_model):
                tasks.append(
                    InjectionTask(
                        index=len(tasks),
                        benchmark=benchmark,
                        model=model,
                        run_index=run_index,
                        derived_seed=derive_seed(
                            seed, benchmark, model, run_index
                        ),
                        max_attempts=max_attempts,
                        design_point=design_point,
                    )
                )
    return tasks


def execute_task(
    task: InjectionTask,
    program: "Program",
    golden: "RunResult",
    config: Optional["CoreConfig"] = None,
    snapshots: Optional["SnapshotProvider"] = None,
    deadline: Optional[float] = None,
) -> "InjectionResult":
    """Execute one task: draw from its private stream until activation.

    Pure with respect to the task — no shared RNG, no global state — so
    backends may run tasks in any order or process. ``snapshots`` is a
    throughput-only knob: warm-started attempts produce bit-identical
    results, so it never joins the task's identity. ``deadline`` (absolute
    ``time.monotonic()``) is the whole-task wall-clock budget shared by
    all redraw attempts; expiry raises
    :class:`~repro.core.errors.DeadlineExceeded` to the execution layer.
    """
    from repro.bugs.campaign import run_injection
    from repro.bugs.injector import draw_attempts
    from repro.core.config import CoreConfig

    result = None
    for spec in draw_attempts(
        task.model,
        task.derived_seed,
        golden.cycles,
        config or CoreConfig(),
        task.max_attempts,
    ):
        result = run_injection(
            program, golden, spec, config, snapshots=snapshots,
            deadline=deadline,
        )
        if result.activated:
            break
    assert result is not None  # max_attempts >= 1 is enforced at generation
    return result
