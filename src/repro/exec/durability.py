"""Artifact integrity and interruption primitives for durable campaigns.

The paper's thesis is that silent corruption must be caught *instantly*;
this module applies the same checker mindset to our own persistence layer.
Everything host-level that threatens a multi-hour JSONL checkpoint lives
here, dependency-free so every layer can use it without cycles:

* **Record sealing** — every checkpoint record carries a ``crc`` (CRC32 of
  its canonical JSON payload) and the manifest an ``identity`` content
  hash, so bit rot and hand edits are detected at read time, with line
  numbers, instead of silently skewing figure statistics.
* **Streaming scan** — :func:`scan_checkpoint` classifies every line of a
  checkpoint (intact / torn tail / interior corruption) in O(1) memory;
  :func:`iter_sealed_records` is the strict loader iterator built on the
  same walk (tolerates exactly a torn final line, raises on anything
  else).
* **Torn-tail truncation** — :func:`truncate_torn_tail` drops a partial
  final line without reading the whole file into memory.
* **Atomic writes** — :func:`atomic_write_text` writes via a temp file in
  the destination directory plus ``os.replace``, so a killed export never
  leaves a half-written figure input.
* **Single-writer locking** — :class:`CheckpointLock`, a sidecar lockfile
  (PID + heartbeat mtime) that makes a second concurrent run refuse to
  append to the same checkpoint, with stale-lock takeover once the
  heartbeat ages out (or the owning local process is provably dead).
* **Graceful shutdown** — :class:`GracefulShutdown`, a SIGINT/SIGTERM
  latch: the first signal requests an orderly drain under a deadline, the
  second hard-exits (the torn-tail path covers that).
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import signal
import socket
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

#: Exit code of a CLI run stopped by a graceful SIGINT/SIGTERM drain —
#: EX_TEMPFAIL: the run is incomplete but resumable, not failed.
SHUTDOWN_EXIT_CODE = 75

#: Chaos hook (see :mod:`repro.exec.chaos`): when this variable names a
#: task key, the checkpoint writer emits half of that record's line and
#: hard-exits — a deterministic SIGKILL-mid-append.
ENV_TORN_APPEND = "REPRO_CHAOS_TORN_APPEND"

#: Exit status of a deliberate torn-append kill (matches chaos.EXIT_STATUS).
TORN_APPEND_EXIT_STATUS = 17


class CheckpointError(RuntimeError):
    """Raised on corrupt or mismatched checkpoint files."""


class CheckpointLockedError(CheckpointError):
    """Another live run holds the checkpoint's writer lock."""


# -- record sealing -----------------------------------------------------------


def canonical_payload(record: Dict[str, object]) -> bytes:
    """The canonical bytes a record's CRC covers: compact, sorted JSON of
    everything except the ``crc`` field itself."""
    payload = {k: v for k, v in record.items() if k != "crc"}
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def crc_of(record: Dict[str, object]) -> int:
    return zlib.crc32(canonical_payload(record)) & 0xFFFFFFFF


def seal_record(record: Dict[str, object]) -> Dict[str, object]:
    """Return ``record`` with its ``crc`` field (re)computed."""
    sealed = dict(record)
    sealed["crc"] = crc_of(record)
    return sealed


def record_crc_ok(record: Dict[str, object]) -> bool:
    """True when the record has no CRC (format v1) or the CRC matches."""
    crc = record.get("crc")
    return crc is None or crc == crc_of(record)


def identity_hash(fields: Dict[str, object]) -> str:
    """Content hash of a manifest's campaign-identity fields.

    Survives reserialization (repair, merge) that a raw-bytes CRC would
    not, so it pins *which campaign* a file belongs to, not which bytes.
    """
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()


# -- streaming scan / strict iteration ----------------------------------------


@dataclass(frozen=True)
class LineIssue:
    """One damaged checkpoint line."""

    lineno: int  # 1-based
    reason: str  # human-readable, e.g. "unparsable JSON", "CRC mismatch"
    torn_tail: bool  # damage confined to a partial final line


@dataclass
class ScanReport:
    """What a full integrity scan of one checkpoint found."""

    path: str
    manifest: Optional[Dict[str, object]] = None
    records: int = 0  # intact data records (manifest excluded)
    by_type: Dict[str, int] = field(default_factory=dict)
    sealed: int = 0  # intact records that carried a (matching) CRC
    issues: List[LineIssue] = field(default_factory=list)

    @property
    def torn_tail(self) -> bool:
        return any(issue.torn_tail for issue in self.issues)

    @property
    def interior_issues(self) -> List[LineIssue]:
        return [issue for issue in self.issues if not issue.torn_tail]

    @property
    def clean(self) -> bool:
        return self.manifest is not None and not self.issues


def _walk_lines(path: str) -> Iterator[Tuple[int, bool, str]]:
    """Yield ``(lineno, is_last, line)`` streaming, without reading the
    whole file; blank lines are skipped (they carry no record)."""
    with open(path, "r") as handle:
        pending: Optional[Tuple[int, str]] = None
        for lineno, line in enumerate(handle, 1):
            if pending is not None:
                yield pending[0], False, pending[1]
            stripped = line.strip()
            pending = (lineno, stripped) if stripped else None
        if pending is not None:
            yield pending[0], True, pending[1]


def _check_line(
    line: str,
    manifest_seen: bool,
    decode: Optional[Callable[[Dict[str, object]], None]],
) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
    """Parse + verify one checkpoint line: ``(record, None)`` when intact,
    ``(None, reason)`` when damaged."""
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None, "unparsable JSON"
    if not isinstance(record, dict):
        return None, "record is not a JSON object"
    if not record_crc_ok(record):
        return None, "CRC mismatch"
    kind = record.get("type")
    if not manifest_seen:
        if not isinstance(kind, str) or not kind.endswith("manifest"):
            return None, f"expected a manifest record, got type {kind!r}"
        identity = record.get("identity")
        if identity is not None:
            expected = manifest_identity(record)
            if identity != expected:
                return None, "manifest identity hash mismatch"
        return record, None
    if not isinstance(kind, str):
        return None, f"record has no type (got {kind!r})"
    if decode is not None:
        try:
            decode(record)
        except Exception as exc:
            return None, f"undecodable {kind} record ({type(exc).__name__})"
    return record, None


#: Manifest fields that never join the identity hash: the hash itself, the
#: per-line CRC, the format version (a v1 file repaired into v2 is still
#: the same campaign), and golden summaries (derived data, re-verified by
#: the engine against live golden runs on resume).
_NON_IDENTITY_FIELDS = ("crc", "identity", "version", "type", "goldens")


def manifest_identity(manifest: Dict[str, object]) -> str:
    """The expected ``identity`` hash for a manifest record."""
    fields = {
        key: value
        for key, value in manifest.items()
        if key not in _NON_IDENTITY_FIELDS
    }
    return identity_hash(fields)


#: Record types the loaders understand, by role. ``done``-style records
#: supersede failure records for the same key (a retry that succeeded).
RESULT_TYPES = ("result", "eval")
FAILURE_TYPES = ("failure", "eval-failure")


def record_key(record: Dict[str, object]) -> object:
    """The dedup key of a data record: campaign records use ``key``, fuzz
    records use ``index`` (both families always carry ``index``)."""
    return record.get("key", record.get("index"))


def canonical_winner(
    a: Dict[str, object], b: Dict[str, object]
) -> Dict[str, object]:
    """Deterministic choice between two records claiming the same key and
    role (two results, or two failures): the lexicographically smaller
    canonical payload wins. Result records for one key are
    classification-identical by construction — only wall-clock metadata
    can differ — so any *stable* rule is correct; a content-based one
    makes shard merges independent of upload/argument arrival order."""
    return a if canonical_payload(a) <= canonical_payload(b) else b


def scan_checkpoint(
    path: str,
    decode: Optional[Callable[[Dict[str, object]], None]] = None,
) -> ScanReport:
    """Full integrity scan: every line classified, nothing raised.

    ``decode`` (optional) is handed each intact non-manifest record and
    should raise if the record's *structure* is wrong even though its JSON
    and CRC are fine — the only corruption class v1 files can reveal.
    """
    report, _, _ = fold_checkpoint(path, decode, keep_records=False)
    return report


def fold_checkpoint(
    path: str,
    decode: Optional[Callable[[Dict[str, object]], None]] = None,
    keep_records: bool = True,
) -> Tuple[
    ScanReport, Dict[object, Dict[str, object]], Dict[object, Dict[str, object]]
]:
    """Scan *and* dedup: ``(report, done, failures)`` with later-record-wins
    semantics matching the strict loaders (a result record supersedes a
    failure record for the same key; a later record for a key replaces an
    earlier one). Damaged lines land in the report, never raise.

    With ``keep_records=False`` the dicts map each key to ``None`` instead
    of the record, so a pure integrity scan of a multi-GB file stays O(keys)
    rather than O(file) in memory.
    """
    report = ScanReport(path=path)
    done: Dict[object, Dict[str, object]] = {}
    failures: Dict[object, Dict[str, object]] = {}
    for lineno, is_last, line in _walk_lines(path):
        record, reason = _check_line(line, report.manifest is not None, decode)
        if reason is None and report.manifest is not None:
            kind = record.get("type")
            if kind not in RESULT_TYPES and kind not in FAILURE_TYPES:
                record, reason = None, f"unexpected record type {kind!r}"
        if reason is not None:
            torn = is_last and reason == "unparsable JSON"
            report.issues.append(LineIssue(lineno, reason, torn_tail=torn))
            continue
        if report.manifest is None:
            report.manifest = record
        else:
            report.records += 1
            kind = record["type"]
            report.by_type[kind] = report.by_type.get(kind, 0) + 1
            key = record_key(record)
            kept = record if keep_records else None
            if kind in RESULT_TYPES:
                done[key] = kept
                failures.pop(key, None)
            elif key not in done:
                failures[key] = kept
        if "crc" in record:
            report.sealed += 1
    return report, done, failures


def iter_sealed_records(path: str) -> Iterator[Tuple[int, Dict[str, object]]]:
    """Strict streaming reader: yield ``(lineno, record)`` for every line.

    Tolerates (and drops) exactly an unparsable *final* line — the
    signature of a killed writer — and raises :class:`CheckpointError`
    with the line number for any interior damage or CRC mismatch.
    """
    yielded = False
    for lineno, is_last, line in _walk_lines(path):
        record, reason = _check_line(line, manifest_seen=yielded, decode=None)
        if reason is not None:
            if is_last and reason == "unparsable JSON":
                return  # torn tail from an interrupted run
            raise CheckpointError(f"{path}:{lineno}: corrupt record ({reason})")
        yielded = True
        yield lineno, record
    if not yielded:
        raise CheckpointError(f"{path}: no complete records")


# -- torn-tail truncation -----------------------------------------------------


def truncate_torn_tail(path: str, block: int = 1 << 16) -> None:
    """Drop a partial final line (no trailing newline) left by a kill, so
    appended records start on a fresh line. Streams backwards block-wise —
    O(torn tail), not O(file) — so multi-GB checkpoints open instantly."""
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        end = size
        while end > 0:
            start = max(0, end - block)
            handle.seek(start)
            chunk = handle.read(end - start)
            cut = chunk.rfind(b"\n")
            if cut != -1:
                handle.truncate(start + cut + 1)
                return
            end = start
        handle.truncate(0)


# -- atomic writes ------------------------------------------------------------


def atomic_write_text(path: str, text: str, newline: Optional[str] = None) -> None:
    """Write ``text`` to ``path`` atomically: temp file in the destination
    directory, flush + fsync, then ``os.replace``. A reader (or a kill)
    never observes a half-written file."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w", newline=newline) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def write_sealed_checkpoint(
    path: str,
    manifest: Dict[str, object],
    records: List[Dict[str, object]],
) -> None:
    """Write a fresh checkpoint atomically: manifest first, data records in
    canonical task order, everything (re-)sealed with a CRC and the
    manifest's identity hash recomputed. Shared by ``repro checkpoint
    repair``/``merge`` and the fabric coordinator's continuous merge."""
    manifest = dict(manifest)
    manifest["identity"] = manifest_identity(manifest)
    lines = [json.dumps(seal_record(manifest), sort_keys=True)]
    for record in sorted(records, key=lambda r: r.get("index", 0)):
        lines.append(json.dumps(seal_record(record), sort_keys=True))
    atomic_write_text(path, "\n".join(lines) + "\n")


# -- single-writer locking ----------------------------------------------------


def lock_path_for(checkpoint_path: str) -> str:
    return checkpoint_path + ".lock"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError as exc:
        # EPERM: the process exists but belongs to someone else.
        return exc.errno == errno.EPERM
    return True


class CheckpointLock:
    """Sidecar single-writer lock for one checkpoint file.

    The lock is ``<checkpoint>.lock`` holding ``{"pid", "host",
    "created"}``; its mtime is the heartbeat, refreshed by the writer (at
    most once per :data:`HEARTBEAT_INTERVAL_S`) on every append. A second
    run refuses to start with an actionable message. Takeover happens when
    the heartbeat is older than ``stale_after_s``, or immediately when the
    owner recorded the *same host* and its PID is provably dead — PID
    liveness carries no signal across machines (the number may be live
    here and dead there, or vice versa), so cross-host locks and legacy
    locks without a recorded host are never taken over on PID evidence
    alone.
    """

    #: Minimum seconds between heartbeat mtime refreshes.
    HEARTBEAT_INTERVAL_S = 5.0

    #: Default heartbeat age after which a lock may be taken over.
    STALE_AFTER_S = 600.0

    def __init__(
        self, checkpoint_path: str, stale_after_s: float = STALE_AFTER_S
    ) -> None:
        self.path = lock_path_for(checkpoint_path)
        self.checkpoint_path = checkpoint_path
        self.stale_after_s = stale_after_s
        self._held = False
        self._last_beat = 0.0

    # -- lifecycle ------------------------------------------------------------

    def acquire(self) -> "CheckpointLock":
        payload = json.dumps(
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "created": time.time(),
            },
            sort_keys=True,
        )
        for _ in range(2):  # second pass after a stale-lock removal
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._contend()
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(payload + "\n")
            self._held = True
            self._last_beat = time.monotonic()
            return self
        raise CheckpointLockedError(
            f"{self.checkpoint_path}: could not acquire the writer lock "
            f"{self.path} (lost a takeover race to another run)"
        )

    def _contend(self) -> None:
        """An existing lock: take over if stale/dead, else refuse loudly."""
        try:
            with open(self.path) as handle:
                owner = json.loads(handle.read())
            age = time.time() - os.path.getmtime(self.path)
        except (OSError, json.JSONDecodeError):
            # Vanished (owner just released) or unreadable (half-written
            # by a killed owner): treat as stale and race for it.
            self._remove_quietly()
            return
        pid = owner.get("pid")
        host = owner.get("host")
        # PID liveness is only meaningful on the host that recorded the
        # lock: once checkpoints travel between machines (shard files on a
        # shared filesystem, a fabric worker picking up another host's
        # shard), the same PID number may belong to a live but unrelated
        # process here — or the owner may be perfectly alive over there.
        # So the dead-PID fast path requires an explicit, matching hostname
        # in the sidecar; locks from other hosts (or legacy locks that
        # never recorded one) can only age out via the heartbeat.
        same_host = isinstance(host, str) and host == socket.gethostname()
        dead = same_host and isinstance(pid, int) and not _pid_alive(pid)
        if dead or age > self.stale_after_s:
            self._remove_quietly()
            return
        raise CheckpointLockedError(
            f"{self.checkpoint_path}: another run (pid {pid} on "
            f"{host if host is not None else 'an unrecorded host'}, "
            f"heartbeat {age:.0f}s ago) holds the writer lock {self.path}; "
            f"two writers would interleave and corrupt the checkpoint. "
            f"If that run is dead, delete the lock file or retry after "
            f"{self.stale_after_s:.0f}s without a heartbeat."
        )

    def _remove_quietly(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def heartbeat(self) -> None:
        """Refresh the lock mtime (rate-limited); call on every append."""
        if not self._held:
            return
        now = time.monotonic()
        if now - self._last_beat < self.HEARTBEAT_INTERVAL_S:
            return
        self._last_beat = now
        try:
            os.utime(self.path, None)
        except OSError:  # lock dir vanished; nothing useful to do mid-run
            pass

    def release(self) -> None:
        if self._held:
            self._held = False
            self._remove_quietly()

    def __enter__(self) -> "CheckpointLock":
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


# -- graceful shutdown --------------------------------------------------------


class GracefulShutdown:
    """SIGINT/SIGTERM latch for an orderly stop-dispatch-and-drain.

    The first signal sets :attr:`requested` and starts the drain deadline:
    the execution layer stops submitting work, collects whatever finishes
    within :attr:`drain_s` seconds, flushes the checkpoint and returns. A
    second signal hard-exits with ``128 + signum`` — at worst that tears
    the final checkpoint line, which the torn-tail path already tolerates.

    Use as a context manager around the campaign (main thread only, where
    signal handlers can be installed); handlers are restored on exit.
    """

    def __init__(
        self,
        drain_s: float = 10.0,
        signals: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
    ) -> None:
        self.drain_s = drain_s
        self.signals = signals
        self.requested = False
        self.signum: Optional[int] = None
        self._deadline: Optional[float] = None
        self._previous: Dict[int, object] = {}

    def _handle(self, signum: int, frame: object) -> None:
        if self.requested:
            os._exit(128 + signum)  # second signal: hard exit, torn tail
        self.requested = True
        self.signum = signum
        self._deadline = time.monotonic() + self.drain_s

    def request(self, signum: int = signal.SIGTERM) -> None:
        """Programmatic trigger (tests, embedding without signals)."""
        self._handle(signum, None)

    def drain_remaining(self) -> float:
        """Seconds left to wait for inflight work (0 when not requested)."""
        if self._deadline is None:
            return 0.0
        return max(0.0, self._deadline - time.monotonic())

    @property
    def signal_name(self) -> str:
        if self.signum is None:
            return "shutdown"
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - exotic signal number
            return f"signal {self.signum}"

    def __enter__(self) -> "GracefulShutdown":
        for signum in self.signals:
            self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info: object) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
