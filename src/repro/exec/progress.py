"""Progress events for campaign execution.

The engine emits one :class:`ProgressEvent` per completed task (plus one
up-front event when a resume skips already-done work) through plain
callables, so consumers stay decoupled from execution: the CLI attaches a
:class:`ProgressPrinter`, tests attach a recording lambda.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, IO, Optional, Tuple

#: A progress observer: called with each event, return value ignored.
ProgressObserver = Callable[["ProgressEvent"], None]


@dataclass(frozen=True)
class ProgressEvent:
    """A snapshot of campaign execution state.

    Attributes:
        done: Completed tasks, including ones restored by ``--resume``.
        total: Total tasks in the campaign.
        skipped: How many of ``done`` were restored from a checkpoint
            rather than executed now.
        elapsed_s: Wall-clock seconds since the engine started.
        throughput: Executed injections per second (resume-restored tasks
            excluded; 0.0 until the first task finishes).
        eta_s: Estimated seconds until campaign completion (None until
            throughput is known).
        benchmark: Benchmark of the task that triggered this event
            (None for the initial resume event).
        per_benchmark: benchmark -> (done, total) task counts.
        failed: How many of ``done`` were quarantined (structured task
            failures) rather than completed — including ones restored
            from a resume checkpoint.
    """

    done: int
    total: int
    skipped: int
    elapsed_s: float
    throughput: float
    eta_s: Optional[float]
    benchmark: Optional[str]
    per_benchmark: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    failed: int = 0

    @property
    def remaining(self) -> int:
        return self.total - self.done

    def benchmark_eta_s(self, benchmark: str) -> Optional[float]:
        """Estimated seconds to finish one benchmark's remaining tasks."""
        if self.throughput <= 0.0 or benchmark not in self.per_benchmark:
            return None
        done, total = self.per_benchmark[benchmark]
        return (total - done) / self.throughput


class ProgressPrinter:
    """Renders progress events as single-line updates on a stream.

    Uses carriage-return redraw on TTYs and plain lines (throttled to
    every ``interval`` tasks) otherwise, so logs stay readable under CI.
    """

    def __init__(self, stream: Optional[IO[str]] = None, interval: int = 10):
        self.stream = stream if stream is not None else sys.stderr
        self.interval = max(1, interval)
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())

    def __call__(self, event: ProgressEvent) -> None:
        final = event.done == event.total
        if not self._is_tty and not final and event.done % self.interval:
            return
        eta = f", eta {event.eta_s:.0f}s" if event.eta_s is not None else ""
        skipped = f" ({event.skipped} resumed)" if event.skipped else ""
        failed = f" [{event.failed} failed]" if event.failed else ""
        line = (
            f"[{event.done}/{event.total}]{skipped}{failed} "
            f"{event.throughput:.1f} inj/s{eta}"
        )
        if event.benchmark is not None:
            bench_eta = event.benchmark_eta_s(event.benchmark)
            suffix = (
                f", eta {bench_eta:.0f}s" if bench_eta is not None else ""
            )
            done, total = event.per_benchmark[event.benchmark]
            line += f" | {event.benchmark} {done}/{total}{suffix}"
        if self._is_tty:
            self.stream.write("\r" + line + (" " * 8))
            if final:
                self.stream.write("\n")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
