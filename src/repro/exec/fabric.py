"""The distributed campaign fabric: leased shards, heartbeats, merge-as-you-go.

The paper's Section V evaluation is a 30,000-injection campaign — paper
scale that one host grinds through serially. Every durability primitive a
fleet needs already exists one layer down (CRC-sealed shard checkpoints,
merge by manifest identity, single-writer locks, task-level quarantine,
graceful drain); this module composes them into a coordinator/worker pair
designed so every failure mode is *survived*, not avoided:

* The **coordinator** (:class:`FabricCoordinator`, served by ``repro
  serve``) slices the campaign's canonical task list into fixed-size
  shards and hands them out under time-bounded **leases**. A worker that
  stops heartbeating loses its lease; the shard is reassigned with capped
  exponential backoff + jitter (the same
  :func:`~repro.exec.resilience.backoff_with_jitter` the pool-respawn path
  uses). A shard that dies on ``quarantine_after`` *distinct* workers is a
  poison shard and is quarantined — the shard-level mirror of the
  task-level quarantine in :mod:`repro.exec.resilience`.
* **Workers** (``repro work --coordinator URL``) wrap the ordinary
  :func:`~repro.exec.engine.run_engine` with a shard-key filter, a lease
  renewal thread, graceful SIGTERM drain (finish inflight, upload the
  sealed partial shard, release the lease) and CRC-verified upload with
  idempotent retry.
* Completed (and partial) shard checkpoints are **merged continuously**
  into one canonical artifact as they land — result-outranks-failure,
  content-deterministic dedup per task key — so the artifact on disk is always a
  valid, resumable, ``repro checkpoint verify``-clean campaign prefix.
  Late uploads from expired leases are welcome: the same task finished by
  two workers dedups to one record (results are bit-identical by
  construction; only wall-clock metadata can differ, and that never
  reaches exports).
* The coordinator **persists** its spec and the merged artifact in a state
  directory; a SIGKILLed coordinator restarted on the same directory
  refolds the artifact, recomputes shard completion and carries on.
  In-flight leases die with it — workers notice on the next heartbeat,
  drain, upload what they have and simply re-request work.

Everything speaks :class:`FabricTransport`, with two implementations: the
in-process :class:`LocalTransport` (tests, chaos) and the stdlib-HTTP
:class:`HttpTransport` / :func:`make_http_server` pair (``repro serve`` /
``submit`` / ``status`` / ``fetch`` / ``work``). Determinism is inherited,
not re-proved: every task carries its own derived seed, so the merged
fleet artifact is classification-identical to the same campaign at
``--jobs 1`` no matter which workers died along the way.
"""

from __future__ import annotations

import base64
import json
import os
import random
import socket
import sys
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.bugs.models import BugModel, PRIMARY_MODELS
from repro.exec.durability import (
    CheckpointError,
    GracefulShutdown,
    atomic_write_text,
    canonical_winner,
    fold_checkpoint,
    identity_hash,
    manifest_identity,
    write_sealed_checkpoint,
)
from repro.exec.progress import ProgressEvent, ProgressObserver
from repro.exec.resilience import FaultPolicy, backoff_with_jitter
from repro.exec.tasks import InjectionTask, generate_tasks

try:  # pragma: no cover - 3.8+ always has Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


# -- campaign spec -------------------------------------------------------------


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to regenerate the campaign's task list.

    The spec is the fabric's single source of truth: workers never choose
    campaign parameters themselves, they receive this with every lease, so
    a fleet cannot silently mix seeds, scales or design points. Throughput
    knobs (jobs, snapshot interval, differential, batching) deliberately do
    NOT appear here — they are per-worker choices that cannot change
    results.
    """

    benchmarks: Tuple[str, ...]
    runs_per_model: int
    seed: int = 1
    scale: float = 1.0
    models: Tuple[str, ...] = tuple(m.value for m in PRIMARY_MODELS)
    max_attempts: int = 6
    shard_size: int = 25
    #: Serialized CoreConfig (CoreConfig.to_dict()) or None for the default
    #: design point — matches the checkpoint manifest field of PR 6.
    design_point: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.runs_per_model < 0:
            raise ValueError(
                f"runs_per_model must be >= 0, got {self.runs_per_model}"
            )
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if not self.benchmarks:
            raise ValueError("a campaign needs at least one benchmark")
        for name in self.models:
            BugModel(name)  # raises ValueError on unknown model names

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmarks": list(self.benchmarks),
            "runs_per_model": self.runs_per_model,
            "seed": self.seed,
            "scale": self.scale,
            "models": list(self.models),
            "max_attempts": self.max_attempts,
            "shard_size": self.shard_size,
            "design_point": self.design_point,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        return cls(
            benchmarks=tuple(data["benchmarks"]),
            runs_per_model=data["runs_per_model"],
            seed=data.get("seed", 1),
            scale=data.get("scale", 1.0),
            models=tuple(data.get("models") or (m.value for m in PRIMARY_MODELS)),
            max_attempts=data.get("max_attempts", 6),
            shard_size=data.get("shard_size", 25),
            design_point=data.get("design_point"),
        )

    @property
    def model_enums(self) -> List[BugModel]:
        return [BugModel(name) for name in self.models]

    def tasks(self) -> List[InjectionTask]:
        """The campaign's canonical task list (config-independent seeds)."""
        return generate_tasks(
            list(self.benchmarks),
            self.runs_per_model,
            self.model_enums,
            self.seed,
            self.max_attempts,
            config=self.core_config(),
        )

    def core_config(self):
        if self.design_point is None:
            return None
        from repro.core.config import CoreConfig

        return CoreConfig.from_dict(self.design_point)

    def programs(self) -> Dict[str, object]:
        from repro.workloads import WORKLOADS

        unknown = [n for n in self.benchmarks if n not in WORKLOADS]
        if unknown:
            raise ValueError(f"unknown benchmarks: {', '.join(unknown)}")
        return {
            name: WORKLOADS[name](scale=self.scale) for name in self.benchmarks
        }

    def expected_manifest_identity(self) -> str:
        """The manifest identity every shard checkpoint of this campaign
        must carry — computable without running a single golden cycle
        (golden summaries are excluded from manifest identity), so the
        coordinator can reject foreign shards before merging them."""
        fields: Dict[str, object] = {
            "seed": self.seed,
            "runs_per_model": self.runs_per_model,
            "models": list(self.models),
            "benchmarks": list(self.benchmarks),
            "max_attempts": self.max_attempts,
        }
        if self.design_point is not None:
            fields["design_point"] = self.design_point
        return identity_hash(fields)


# -- fabric policy and shard state ---------------------------------------------


@dataclass(frozen=True)
class FabricPolicy:
    """How the coordinator leases, reassigns and quarantines shards.

    Attributes:
        lease_ttl_s: Seconds a lease lives without a heartbeat; a worker
            renews by heartbeating, a silent/dead worker's shard is
            reassigned after expiry.
        reassign_backoff_base_s: Initial delay before an expired/failed
            shard becomes leasable again; doubles per grant up to the cap,
            jittered (see :func:`~repro.exec.resilience.backoff_with_jitter`)
            so simultaneously-orphaned shards don't thundering-herd one
            recovering worker.
        reassign_backoff_max_s: Backoff ceiling.
        backoff_jitter: Jitter fraction handed to the shared helper.
        quarantine_after: Distinct workers a shard must fail on (lease
            expiry or explicit failure release — graceful drains don't
            count) before it is declared poison and quarantined. Mirrors
            task-level quarantine one level up.
        poll_s: Retry hint returned to idle workers when every shard is
            leased or backing off.
    """

    lease_ttl_s: float = 60.0
    reassign_backoff_base_s: float = 0.5
    reassign_backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    quarantine_after: int = 3
    poll_s: float = 1.0

    def __post_init__(self) -> None:
        if self.lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {self.lease_ttl_s}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )


#: Shard lifecycle states.
PENDING, LEASED, DONE, QUARANTINED = "pending", "leased", "done", "quarantined"


@dataclass
class Shard:
    """One leased slice of the campaign's canonical task list."""

    index: int
    keys: Tuple[str, ...]
    state: str = PENDING
    lease_worker: Optional[str] = None
    lease_token: Optional[str] = None
    lease_deadline: float = 0.0
    grants: int = 0  # leases handed out so far (drives the backoff)
    failed_workers: Set[str] = field(default_factory=set)
    not_before: float = 0.0  # reassignment backoff gate (coordinator clock)
    last_failure: str = ""  # most recent charge reason, for diagnosis

    def lease_matches(self, worker: str, token: Optional[str]) -> bool:
        return (
            self.state == LEASED
            and self.lease_worker == worker
            and self.lease_token == token
        )

    def clear_lease(self) -> None:
        self.lease_worker = None
        self.lease_token = None
        self.lease_deadline = 0.0


# -- the coordinator -----------------------------------------------------------


class FabricError(RuntimeError):
    """A fabric request the coordinator cannot honor."""


class FabricCoordinator:
    """Plans shards, leases them out, merges what comes back.

    Thread-safe (every public method takes the instance lock), transport-
    agnostic (the HTTP layer and :class:`LocalTransport` both call straight
    into it) and restart-safe: ``state_dir`` holds ``spec.json`` and the
    continuously-merged ``merged.jsonl``; a coordinator constructed on a
    directory with both resumes exactly where the dead one stopped, minus
    the in-memory leases (workers re-request on their next heartbeat
    failure).

    ``clock`` is injectable for tests — leases and backoff gates live on
    whatever timeline it provides (``time.monotonic`` in production).
    """

    def __init__(
        self,
        state_dir: str,
        policy: Optional[FabricPolicy] = None,
        observers: Sequence[ProgressObserver] = (),
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.state_dir = state_dir
        self.policy = policy if policy is not None else FabricPolicy()
        self.observers = list(observers)
        self.clock = clock
        self.rng = rng
        self._lock = threading.RLock()
        self.spec: Optional[CampaignSpec] = None
        self.shards: List[Shard] = []
        self._key_index: Dict[str, int] = {}
        self._key_benchmark: Dict[str, str] = {}
        self._manifest: Optional[Dict[str, object]] = None
        self._done: Dict[str, Dict[str, object]] = {}
        self._failures: Dict[str, Dict[str, object]] = {}
        self._workers_seen: Dict[str, float] = {}
        self._started = clock()
        self._executed_since_start = 0
        os.makedirs(state_dir, exist_ok=True)
        self._recover()

    # -- paths ----------------------------------------------------------------

    @property
    def spec_path(self) -> str:
        return os.path.join(self.state_dir, "spec.json")

    @property
    def artifact_path(self) -> str:
        return os.path.join(self.state_dir, "merged.jsonl")

    # -- persistence / recovery -----------------------------------------------

    def _recover(self) -> None:
        """Reload a dead coordinator's campaign from its state directory."""
        if not os.path.exists(self.spec_path):
            return
        with open(self.spec_path) as handle:
            self._install_spec(CampaignSpec.from_dict(json.load(handle)))
        if os.path.exists(self.artifact_path):
            report, done, failures = fold_checkpoint(self.artifact_path)
            if report.manifest is None or report.interior_issues:
                raise CheckpointError(
                    f"{self.artifact_path}: merged artifact is damaged; "
                    "repair it with `repro checkpoint repair` before "
                    "restarting the coordinator"
                )
            self._manifest = report.manifest
            self._done = dict(done)
            self._failures = dict(failures)
            self._refresh_shard_completion()

    def _install_spec(self, spec: CampaignSpec) -> None:
        self.spec = spec
        tasks = spec.tasks()
        self._key_index = {task.key: task.index for task in tasks}
        self._key_benchmark = {task.key: task.benchmark for task in tasks}
        keys = [task.key for task in tasks]
        self.shards = [
            Shard(index=i, keys=tuple(keys[start:start + spec.shard_size]))
            for i, start in enumerate(range(0, len(keys), spec.shard_size))
        ]

    # -- submit ---------------------------------------------------------------

    def submit(self, spec_data: Dict[str, object]) -> Dict[str, object]:
        """Install the campaign. Idempotent for an identical spec; a
        different spec is refused (one coordinator, one campaign — run a
        second coordinator on a second state dir for a second campaign)."""
        with self._lock:
            spec = CampaignSpec.from_dict(spec_data)
            spec.programs()  # validates benchmark names before accepting
            if self.spec is not None:
                if self.spec == spec:
                    return self.status()
                raise FabricError(
                    "a different campaign is already submitted; this "
                    "coordinator serves one campaign per state directory"
                )
            self._install_spec(spec)
            atomic_write_text(
                self.spec_path, json.dumps(spec.to_dict(), sort_keys=True)
            )
            self._started = self.clock()
            self._executed_since_start = 0
            return self.status()

    # -- lease lifecycle ------------------------------------------------------

    def _expire_leases(self) -> None:
        now = self.clock()
        for shard in self.shards:
            if shard.state == LEASED and now > shard.lease_deadline:
                # A silent worker is charged like a failed one: heartbeats
                # exist precisely so death and hang are indistinguishable.
                worker = shard.lease_worker
                shard.clear_lease()
                self._charge_failure(shard, worker, reason="lease expired")

    def _charge_failure(
        self, shard: Shard, worker: Optional[str], reason: str
    ) -> None:
        if worker is not None:
            shard.failed_workers.add(worker)
        shard.last_failure = reason
        if len(shard.failed_workers) >= self.policy.quarantine_after:
            shard.state = QUARANTINED
            return
        shard.state = PENDING
        shard.not_before = self.clock() + backoff_with_jitter(
            shard.grants,
            self.policy.reassign_backoff_base_s,
            self.policy.reassign_backoff_max_s,
            jitter=self.policy.backoff_jitter,
            rng=self.rng,
        )

    def request(self, worker: str) -> Dict[str, object]:
        """Hand ``worker`` a lease on the lowest-index eligible shard."""
        with self._lock:
            if self.spec is None:
                return {"lease": None, "done": False,
                        "retry_after_s": self.policy.poll_s}
            self._expire_leases()
            self._workers_seen[worker] = self.clock()
            now = self.clock()
            for shard in self.shards:
                if shard.state != PENDING or now < shard.not_before:
                    continue
                shard.state = LEASED
                shard.lease_worker = worker
                shard.lease_token = uuid.uuid4().hex
                shard.lease_deadline = now + self.policy.lease_ttl_s
                shard.grants += 1
                handled = self._handled_keys()
                return {
                    "lease": {
                        "shard": shard.index,
                        "token": shard.lease_token,
                        "keys": list(shard.keys),
                        # Already-merged keys (a drained predecessor's
                        # partial upload): the new worker skips them.
                        "skip_keys": [
                            k for k in shard.keys if k in handled
                        ],
                        "ttl_s": self.policy.lease_ttl_s,
                        "spec": self.spec.to_dict(),
                    },
                    "done": False,
                    "retry_after_s": self.policy.poll_s,
                }
            return {
                "lease": None,
                "done": self.campaign_done(),
                "retry_after_s": self.policy.poll_s,
            }

    def heartbeat(self, worker: str, shard_index: int, token: str) -> bool:
        """Renew a lease; False tells the worker its lease is gone and it
        should drain, upload what it has and re-request."""
        with self._lock:
            self._expire_leases()
            self._workers_seen[worker] = self.clock()
            if not 0 <= shard_index < len(self.shards):
                return False
            shard = self.shards[shard_index]
            if not shard.lease_matches(worker, token):
                return False
            shard.lease_deadline = self.clock() + self.policy.lease_ttl_s
            return True

    def release(
        self,
        worker: str,
        shard_index: int,
        token: Optional[str],
        outcome: str,
        reason: str = "",
    ) -> Dict[str, object]:
        """End a lease: ``complete`` / ``drain`` (graceful, uncharged) /
        ``failed`` (charged toward poison-shard quarantine)."""
        with self._lock:
            self._expire_leases()
            if not 0 <= shard_index < len(self.shards):
                raise FabricError(f"unknown shard {shard_index}")
            shard = self.shards[shard_index]
            if shard.lease_matches(worker, token):
                shard.clear_lease()
                if shard.state != DONE:
                    if outcome == "failed":
                        self._charge_failure(shard, worker, reason)
                    elif shard.state == LEASED:
                        shard.state = PENDING  # drain/complete-but-short
            self._refresh_shard_completion()
            return {"ok": True, "state": shard.state}

    # -- upload + merge --------------------------------------------------------

    def upload(
        self,
        worker: str,
        shard_index: int,
        token: Optional[str],
        data: bytes,
        crc: int,
    ) -> Dict[str, object]:
        """Receive one (possibly partial) shard checkpoint and merge it.

        The transfer is CRC-verified on receipt and idempotent, so a worker
        simply re-POSTs the same bytes after any network failure — that is
        the whole resumability story, and it composes with lease loss:
        uploads are accepted *regardless* of lease validity, because a
        completed record is valid evidence whoever's lease it rode in on
        (the merge dedups overlap deterministically).
        """
        with self._lock:
            if self.spec is None:
                raise FabricError("no campaign submitted")
            if zlib.crc32(data) & 0xFFFFFFFF != crc:
                return {
                    "ok": False,
                    "reason": "transfer CRC mismatch; retry the upload",
                }
            self._workers_seen[worker] = self.clock()
            staging = os.path.join(
                self.state_dir, f"upload-{shard_index}-{worker}.jsonl"
            )
            atomic_write_text(
                staging, data.decode("utf-8", errors="surrogateescape")
            )
            try:
                report, done, failures = fold_checkpoint(staging)
                if report.manifest is None:
                    return {"ok": False, "reason": "no readable manifest"}
                if report.interior_issues:
                    issues = "; ".join(
                        f"line {i.lineno}: {i.reason}"
                        for i in report.interior_issues
                    )
                    return {
                        "ok": False,
                        "reason": f"interior corruption ({issues})",
                    }
                identity = manifest_identity(report.manifest)
                expected = self.spec.expected_manifest_identity()
                if identity != expected:
                    return {
                        "ok": False,
                        "reason": (
                            f"manifest identity {identity} does not match "
                            f"this campaign ({expected}); shard refused"
                        ),
                    }
            finally:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
            merged_new = self._merge_records(report.manifest, done, failures)
            self._refresh_shard_completion()
            self._write_artifact()
            self._emit_progress(shard_index)
            return {
                "ok": True,
                "new_records": merged_new,
                "done_tasks": len(self._done),
                "campaign_done": self.campaign_done(),
            }

    def _merge_records(
        self,
        manifest: Dict[str, object],
        done: Dict[object, Dict[str, object]],
        failures: Dict[object, Dict[str, object]],
    ) -> int:
        """Fold one shard's records into the canonical store.

        Deterministic regardless of upload arrival order: a result always
        outranks any failure record for its key, and duplicate records of
        one role resolve content-deterministically
        (:func:`~repro.exec.durability.canonical_winner`) — safe because
        result records for a key are classification-identical by
        construction (only wall-clock metadata can differ, and exports
        never carry it), and it makes the merged artifact byte-identical
        whatever order the fleet's uploads landed in.
        """
        if self._manifest is None:
            self._manifest = dict(manifest)
        # Each shard's manifest summarizes only the goldens it ran; the
        # canonical artifact needs the union (exports reproduce golden
        # summaries per benchmark). Goldens are outside manifest identity,
        # so this never changes which campaign the artifact claims to be.
        goldens = dict(self._manifest.get("goldens") or {})
        goldens.update(manifest.get("goldens") or {})
        # Canonical benchmark order, matching a single-host campaign's
        # manifest (and hence its JSON export) byte for byte.
        self._manifest["goldens"] = {
            name: goldens[name]
            for name in self.spec.benchmarks
            if name in goldens
        }
        new = 0
        for key, record in done.items():
            if key not in self._key_index:
                continue  # foreign key: identity matched, so never happens
            if key not in self._done:
                self._done[key] = record
                new += 1
                self._executed_since_start += 1
            else:
                self._done[key] = canonical_winner(self._done[key], record)
            self._failures.pop(key, None)
        for key, record in failures.items():
            if key not in self._key_index or key in self._done:
                continue
            if key not in self._failures:
                self._failures[key] = record
                new += 1
            else:
                self._failures[key] = canonical_winner(
                    self._failures[key], record
                )
        return new

    def _handled_keys(self) -> Set[str]:
        return set(self._done) | set(self._failures)

    def _refresh_shard_completion(self) -> None:
        handled = self._handled_keys()
        for shard in self.shards:
            if shard.state == QUARANTINED:
                continue
            if all(key in handled for key in shard.keys):
                shard.state = DONE
                shard.clear_lease()

    def _write_artifact(self) -> None:
        if self._manifest is None:
            return
        records = list(self._done.values()) + list(self._failures.values())
        write_sealed_checkpoint(self.artifact_path, self._manifest, records)

    def _emit_progress(self, shard_index: int) -> None:
        if not self.observers or self.spec is None:
            return
        total = len(self._key_index)
        per_benchmark: Dict[str, List[int]] = {
            name: [0, 0] for name in self.spec.benchmarks
        }
        for key, bench in self._key_benchmark.items():
            per_benchmark[bench][1] += 1
            if key in self._done or key in self._failures:
                per_benchmark[bench][0] += 1
        elapsed = max(self.clock() - self._started, 1e-9)
        executed = self._executed_since_start
        throughput = executed / elapsed if executed else 0.0
        done = len(self._done) + len(self._failures)
        event = ProgressEvent(
            done=done,
            total=total,
            skipped=done - executed,
            elapsed_s=elapsed,
            throughput=throughput,
            eta_s=(total - done) / throughput if throughput > 0 else None,
            benchmark=None,
            per_benchmark={
                name: (d, t) for name, (d, t) in per_benchmark.items()
            },
            failed=len(self._failures),
        )
        for observer in self.observers:
            observer(event)

    # -- status / fetch --------------------------------------------------------

    def campaign_done(self) -> bool:
        return bool(self.shards) and all(
            shard.state in (DONE, QUARANTINED) for shard in self.shards
        )

    def status(self) -> Dict[str, object]:
        with self._lock:
            if self.spec is None:
                return {"state": "idle", "campaign": None}
            self._expire_leases()
            self._refresh_shard_completion()
            now = self.clock()
            by_state: Dict[str, int] = {}
            for shard in self.shards:
                by_state[shard.state] = by_state.get(shard.state, 0) + 1
            return {
                "state": "done" if self.campaign_done() else "running",
                "campaign": self.spec.to_dict(),
                "identity": self.spec.expected_manifest_identity(),
                "total_tasks": len(self._key_index),
                "done_tasks": len(self._done),
                "quarantined_tasks": len(self._failures),
                "shards": {
                    "total": len(self.shards),
                    **{s: by_state.get(s, 0)
                       for s in (PENDING, LEASED, DONE, QUARANTINED)},
                },
                "quarantined_shards": [
                    {"shard": s.index,
                     "failed_on": sorted(s.failed_workers),
                     "last_failure": s.last_failure}
                    for s in self.shards if s.state == QUARANTINED
                ],
                # Shards that have been charged but not yet quarantined:
                # the place to look when a campaign is bouncing.
                "failing_shards": [
                    {"shard": s.index,
                     "failed_on": sorted(s.failed_workers),
                     "last_failure": s.last_failure,
                     "retry_in_s": round(max(0.0, s.not_before - now), 3)}
                    for s in self.shards
                    if s.failed_workers and s.state in (PENDING, LEASED)
                ],
                "workers": {
                    worker: {"last_seen_s": round(now - seen, 3)}
                    for worker, seen in sorted(self._workers_seen.items())
                },
                "artifact": (
                    self.artifact_path
                    if os.path.exists(self.artifact_path)
                    else None
                ),
            }

    def fetch_bytes(self) -> bytes:
        with self._lock:
            if not os.path.exists(self.artifact_path):
                raise FabricError(
                    "nothing merged yet: no shard has been uploaded"
                )
            with open(self.artifact_path, "rb") as handle:
                return handle.read()


# -- transports ----------------------------------------------------------------


class FabricTransport(Protocol):
    """What a worker (and the submit/status/fetch CLIs) need from the
    coordinator, wherever it lives."""

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        ...  # pragma: no cover

    def request(self, worker: str) -> Dict[str, object]:
        ...  # pragma: no cover

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        ...  # pragma: no cover

    def upload(
        self, worker: str, shard: int, token: Optional[str],
        data: bytes, crc: int,
    ) -> Dict[str, object]:
        ...  # pragma: no cover

    def release(
        self, worker: str, shard: int, token: Optional[str],
        outcome: str, reason: str = "",
    ) -> Dict[str, object]:
        ...  # pragma: no cover

    def status(self) -> Dict[str, object]:
        ...  # pragma: no cover

    def fetch(self) -> bytes:
        ...  # pragma: no cover


class LocalTransport:
    """Same-process transport: direct calls into a coordinator (tests,
    chaos scenarios, single-host embedding)."""

    def __init__(self, coordinator: FabricCoordinator) -> None:
        self.coordinator = coordinator

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        return self.coordinator.submit(spec)

    def request(self, worker: str) -> Dict[str, object]:
        return self.coordinator.request(worker)

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        return self.coordinator.heartbeat(worker, shard, token)

    def upload(self, worker, shard, token, data, crc):
        return self.coordinator.upload(worker, shard, token, data, crc)

    def release(self, worker, shard, token, outcome, reason=""):
        return self.coordinator.release(worker, shard, token, outcome, reason)

    def status(self) -> Dict[str, object]:
        return self.coordinator.status()

    def fetch(self) -> bytes:
        return self.coordinator.fetch_bytes()


class TransportError(RuntimeError):
    """A transport-level failure (network, coordinator down) — retryable."""


class HttpTransport:
    """The urllib client half of the dirt-simple HTTP queue."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _call(
        self, path: str, payload: Optional[Dict[str, object]] = None
    ) -> bytes:
        import urllib.error
        import urllib.request

        url = self.base_url + path
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(body).get("error", body)
            except (json.JSONDecodeError, AttributeError):
                detail = body
            raise TransportError(
                f"{url}: HTTP {exc.code}: {detail}"
            ) from exc
        except (urllib.error.URLError, OSError, socket.timeout) as exc:
            raise TransportError(f"{url}: {exc}") from exc

    def _json(self, path, payload=None) -> Dict[str, object]:
        return json.loads(self._call(path, payload))

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        return self._json("/api/submit", {"spec": spec})

    def request(self, worker: str) -> Dict[str, object]:
        return self._json("/api/request", {"worker": worker})

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        return bool(
            self._json(
                "/api/heartbeat",
                {"worker": worker, "shard": shard, "token": token},
            ).get("ok")
        )

    def upload(self, worker, shard, token, data, crc):
        return self._json(
            "/api/upload",
            {
                "worker": worker,
                "shard": shard,
                "token": token,
                "crc": crc,
                "data": base64.b64encode(data).decode("ascii"),
            },
        )

    def release(self, worker, shard, token, outcome, reason=""):
        return self._json(
            "/api/release",
            {
                "worker": worker,
                "shard": shard,
                "token": token,
                "outcome": outcome,
                "reason": reason,
            },
        )

    def status(self) -> Dict[str, object]:
        return self._json("/api/status")

    def fetch(self) -> bytes:
        return self._call("/api/fetch")


def make_http_server(
    coordinator: FabricCoordinator, host: str = "127.0.0.1", port: int = 0
):
    """A ThreadingHTTPServer speaking the fabric's JSON protocol.

    Returns the server; ``server.server_address`` carries the bound port
    (useful with ``port=0``). The caller runs ``serve_forever`` (or a
    thread around it) and ``shutdown``s it.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # quiet: status polls are chatty
            pass

        def _reply(self, code: int, payload: Dict[str, object]) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):
            try:
                if self.path == "/api/status":
                    self._reply(200, coordinator.status())
                elif self.path == "/api/fetch":
                    data = coordinator.fetch_bytes()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "application/octet-stream"
                    )
                    self.send_header("Content-Length", str(len(data)))
                    self.end_headers()
                    self.wfile.write(data)
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except FabricError as exc:
                self._reply(409, {"error": str(exc)})
            except Exception as exc:  # never kill the server thread
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def do_POST(self):
            try:
                length = int(self.headers.get("Content-Length") or 0)
                body = json.loads(self.rfile.read(length) or b"{}")
                if self.path == "/api/submit":
                    self._reply(200, coordinator.submit(body["spec"]))
                elif self.path == "/api/request":
                    self._reply(200, coordinator.request(body["worker"]))
                elif self.path == "/api/heartbeat":
                    ok = coordinator.heartbeat(
                        body["worker"], body["shard"], body["token"]
                    )
                    self._reply(200, {"ok": ok})
                elif self.path == "/api/upload":
                    self._reply(
                        200,
                        coordinator.upload(
                            body["worker"],
                            body["shard"],
                            body.get("token"),
                            base64.b64decode(body["data"]),
                            body["crc"],
                        ),
                    )
                elif self.path == "/api/release":
                    self._reply(
                        200,
                        coordinator.release(
                            body["worker"],
                            body["shard"],
                            body.get("token"),
                            body.get("outcome", "failed"),
                            body.get("reason", ""),
                        ),
                    )
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except (FabricError, ValueError, KeyError) as exc:
                self._reply(409, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception as exc:
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    return ThreadingHTTPServer((host, port), Handler)


# -- the worker ----------------------------------------------------------------


class FabricWorker:
    """Executes leased shards through the ordinary campaign engine.

    Around each shard: a lease-renewal thread (one heartbeat per
    ``ttl / 3``; a failed renewal requests a graceful drain of the engine
    exactly like SIGTERM would), a fresh per-lease checkpoint file, and a
    CRC-verified idempotent upload with capped jittered retry. A global
    :class:`~repro.exec.durability.GracefulShutdown` latch (SIGTERM/SIGINT
    in the CLI) drains the current shard, uploads the sealed partial and
    releases the lease before exiting — the coordinator then hands the
    remainder of the shard to someone else via ``skip_keys``.

    Throughput knobs (jobs, snapshot interval, differential, batch size)
    are the worker's own business: any mix across the fleet produces the
    same merged artifact.
    """

    #: Upload attempts before a shard is abandoned to lease expiry.
    UPLOAD_RETRIES = 5

    def __init__(
        self,
        transport: FabricTransport,
        worker_id: Optional[str] = None,
        workdir: Optional[str] = None,
        jobs: int = 1,
        snapshot_interval: int = 250,
        differential: bool = True,
        batch_size: int = 8,
        fault_policy: Optional[FaultPolicy] = None,
        heartbeats: bool = True,
        poll_s: Optional[float] = None,
    ) -> None:
        self.transport = transport
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.workdir = workdir or os.getcwd()
        os.makedirs(self.workdir, exist_ok=True)
        self.jobs = jobs
        self.snapshot_interval = snapshot_interval
        self.differential = differential
        self.batch_size = batch_size
        self.fault_policy = (
            fault_policy if fault_policy is not None else FaultPolicy()
        )
        # Chaos knob: a worker that never heartbeats simulates a network
        # partition (heartbeat blackhole) while still executing and
        # uploading — the lease-expiry + overlapping-merge path.
        self.heartbeats = heartbeats
        self.poll_s = poll_s
        self.shards_completed = 0
        self._program_cache: Dict[str, Dict[str, object]] = {}

    # -- campaign material -----------------------------------------------------

    def _programs(self, spec: CampaignSpec) -> Dict[str, object]:
        cache_key = json.dumps(spec.to_dict(), sort_keys=True)
        if cache_key not in self._program_cache:
            self._program_cache.clear()  # one campaign at a time
            self._program_cache[cache_key] = spec.programs()
        return self._program_cache[cache_key]

    # -- main loop -------------------------------------------------------------

    def run(self, shutdown: Optional[GracefulShutdown] = None) -> int:
        """Lease-execute-upload until the campaign is done (returns 0) or
        the shutdown latch fires (returns
        :data:`~repro.exec.durability.SHUTDOWN_EXIT_CODE`-compatible 75
        semantics are the CLI's job; here: 0 on completion, 1 on repeated
        transport failure)."""
        shutdown = shutdown if shutdown is not None else GracefulShutdown()
        consecutive_errors = 0
        while not shutdown.requested:
            try:
                response = self.transport.request(self.worker_id)
            except TransportError:
                consecutive_errors += 1
                if consecutive_errors > 30:
                    return 1
                time.sleep(
                    backoff_with_jitter(consecutive_errors, 0.2, 5.0)
                )
                continue
            consecutive_errors = 0
            lease = response.get("lease")
            if lease is None:
                if response.get("done"):
                    return 0
                time.sleep(
                    self.poll_s
                    if self.poll_s is not None
                    else float(response.get("retry_after_s", 1.0))
                )
                continue
            self._run_lease(lease, shutdown)
        return 0

    def _run_lease(
        self, lease: Dict[str, object], shutdown: GracefulShutdown
    ) -> None:
        from repro.exec.backends import ProcessPoolBackend, SerialBackend
        from repro.exec.engine import run_engine

        spec = CampaignSpec.from_dict(lease["spec"])
        shard_index = lease["shard"]
        token = lease["token"]
        keys = [k for k in lease["keys"] if k not in set(lease["skip_keys"])]
        if not keys:
            self._safe_release(shard_index, token, "complete")
            return

        # The shard-local latch: requested by the global (signal) latch or
        # by lease loss; either way the engine drains inflight work,
        # flushes the shard checkpoint and returns a sealed partial.
        shard_latch = GracefulShutdown()
        lease_lost = threading.Event()
        stop_beats = threading.Event()

        def renew() -> None:
            interval = max(0.05, float(lease["ttl_s"]) / 3.0)
            while not stop_beats.wait(interval):
                if shutdown.requested and not shard_latch.requested:
                    shard_latch.request()
                    continue
                if not self.heartbeats:
                    continue
                try:
                    alive = self.transport.heartbeat(
                        self.worker_id, shard_index, token
                    )
                except TransportError:
                    continue  # transient; the lease has ttl_s of slack
                if not alive and not lease_lost.is_set():
                    lease_lost.set()
                    if not shard_latch.requested:
                        shard_latch.request()

        beater = threading.Thread(target=renew, daemon=True)
        beater.start()
        shard_path = os.path.join(
            self.workdir, f"shard-{shard_index}-{token[:8]}.jsonl"
        )
        try:
            policy = self.fault_policy
            backend = (
                ProcessPoolBackend(self.jobs, policy=policy)
                if self.jobs > 1
                else SerialBackend(policy=policy)
            )
            run_engine(
                self._programs(spec),
                spec.runs_per_model,
                models=spec.model_enums,
                seed=spec.seed,
                config=spec.core_config(),
                max_attempts=spec.max_attempts,
                backend=backend,
                checkpoint_path=shard_path,
                snapshot_interval=self.snapshot_interval,
                differential=(
                    self.differential and self.snapshot_interval > 0
                ),
                batch_size=self.batch_size,
                shutdown=shard_latch,
                shard_keys=keys,
            )
            uploaded = self._upload_shard(shard_path, shard_index, token)
            if shutdown.requested or shard_latch.requested:
                self._safe_release(
                    shard_index, token, "drain",
                    reason="lease lost" if lease_lost.is_set() else "shutdown",
                )
            elif uploaded:
                self._safe_release(shard_index, token, "complete")
                self.shards_completed += 1
            else:
                self._safe_release(
                    shard_index, token, "failed", reason="upload failed"
                )
        except Exception as exc:
            # A worker-side hard failure (bad env, disk full, ...): hand
            # the shard back charged; repeated offenders quarantine it.
            print(
                f"worker {self.worker_id}: shard {shard_index} failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            self._safe_release(
                shard_index, token, "failed",
                reason=f"{type(exc).__name__}: {exc}",
            )
        finally:
            stop_beats.set()
            beater.join(timeout=5.0)
            try:
                os.unlink(shard_path)
            except OSError:
                pass

    def _upload_shard(
        self, shard_path: str, shard_index: int, token: str
    ) -> bool:
        if not os.path.exists(shard_path):
            return False
        with open(shard_path, "rb") as handle:
            data = handle.read()
        crc = zlib.crc32(data) & 0xFFFFFFFF
        for attempt in range(1, self.UPLOAD_RETRIES + 1):
            try:
                response = self.transport.upload(
                    self.worker_id, shard_index, token, data, crc
                )
            except TransportError:
                response = None
            if response is not None and response.get("ok"):
                return True
            if attempt < self.UPLOAD_RETRIES:
                time.sleep(backoff_with_jitter(attempt, 0.2, 5.0))
        return False

    def _safe_release(
        self, shard_index: int, token: str, outcome: str, reason: str = ""
    ) -> None:
        try:
            self.transport.release(
                self.worker_id, shard_index, token, outcome, reason
            )
        except TransportError:
            pass  # the lease TTL reclaims the shard either way


# -- CLI entry points ----------------------------------------------------------


def _add_coordinator_arg(parser) -> None:
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8757",
    )


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve`` — run the campaign coordinator."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the distributed campaign coordinator.",
    )
    parser.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="where the spec and the continuously-merged artifact live; "
        "restart on the same directory to resume a killed coordinator",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port (written to DIR/coordinator.json) [0]",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="seconds a shard lease survives without a heartbeat [60]",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="distinct failing workers before a shard is poison [3]",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="print aggregate progress per merged shard "
        "[auto: on when stderr is a TTY]",
    )
    args = parser.parse_args(argv)
    from repro.exec.progress import ProgressPrinter

    show = args.progress if args.progress is not None else sys.stderr.isatty()
    try:
        coordinator = FabricCoordinator(
            args.state_dir,
            policy=FabricPolicy(
                lease_ttl_s=args.lease_ttl,
                quarantine_after=args.quarantine_after,
            ),
            observers=[ProgressPrinter()] if show else [],
        )
    except (CheckpointError, ValueError) as exc:
        print(f"cannot start coordinator: {exc}", file=sys.stderr)
        return 2
    server = make_http_server(coordinator, args.host, args.port)
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    atomic_write_text(
        os.path.join(args.state_dir, "coordinator.json"),
        json.dumps({"url": url}, sort_keys=True) + "\n",
    )
    resumed = ""
    if coordinator.spec is not None:
        done = sum(1 for s in coordinator.shards if s.state == DONE)
        resumed = (
            f" (resumed campaign: {done}/{len(coordinator.shards)} "
            "shards already merged)"
        )
    print(f"fabric coordinator serving on {url}{resumed}", flush=True)
    with GracefulShutdown() as shutdown:
        # serve_forever polls, so a latched signal is noticed promptly.
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            while thread.is_alive() and not shutdown.requested:
                time.sleep(0.2)
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
    print("coordinator stopped; state preserved in "
          f"{args.state_dir} (restart to resume)", file=sys.stderr)
    return 0


def submit_main(argv: Optional[List[str]] = None) -> int:
    """``repro submit`` — post a campaign spec to a coordinator."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a campaign to a fabric coordinator.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument("--runs", type=int, required=True, metavar="N",
                        help="injections per (benchmark, bug model) pair")
    parser.add_argument("--benchmarks", default="all",
                        help="comma-separated benchmark names, or 'all'")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--max-attempts", type=int, default=6)
    parser.add_argument(
        "--shard-size", type=int, default=25, metavar="N",
        help="tasks per leased shard [25]",
    )
    args = parser.parse_args(argv)
    from repro.workloads import WORKLOADS

    names = (
        list(WORKLOADS)
        if args.benchmarks == "all"
        else [n.strip() for n in args.benchmarks.split(",")]
    )
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        spec = CampaignSpec(
            benchmarks=tuple(names),
            runs_per_model=args.runs,
            seed=args.seed,
            scale=args.scale,
            max_attempts=args.max_attempts,
            shard_size=args.shard_size,
        )
        status = HttpTransport(args.coordinator).submit(spec.to_dict())
    except (TransportError, ValueError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def status_main(argv: Optional[List[str]] = None) -> int:
    """``repro status`` — print a coordinator's aggregate state."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Query a fabric coordinator's campaign status.",
    )
    _add_coordinator_arg(parser)
    args = parser.parse_args(argv)
    try:
        status = HttpTransport(args.coordinator).status()
    except TransportError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def fetch_main(argv: Optional[List[str]] = None) -> int:
    """``repro fetch`` — download the merged artifact."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro fetch",
        description="Fetch the coordinator's merged campaign artifact.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="where to write the merged JSONL checkpoint",
    )
    args = parser.parse_args(argv)
    try:
        data = HttpTransport(args.coordinator).fetch()
    except TransportError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 2
    atomic_write_text(
        args.output, data.decode("utf-8", errors="surrogateescape")
    )
    print(f"wrote {args.output} ({len(data)} bytes)")
    return 0


def work_main(argv: Optional[List[str]] = None) -> int:
    """``repro work`` — run a fabric worker against a coordinator."""
    import argparse

    from repro.exec.durability import SHUTDOWN_EXIT_CODE

    parser = argparse.ArgumentParser(
        prog="repro work",
        description="Execute leased campaign shards from a coordinator.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="where per-lease shard checkpoints are staged [cwd]",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per shard [1]")
    parser.add_argument("--snapshot-interval", type=int, default=250,
                        metavar="K")
    parser.add_argument(
        "--differential", action=argparse.BooleanOptionalAction, default=True
    )
    parser.add_argument("--batch-size", type=int, default=8, metavar="N")
    parser.add_argument(
        "--poll", type=float, default=None, metavar="S",
        help="idle retry period [coordinator's hint]",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="stable worker identity [hostname-pid]",
    )
    parser.add_argument(
        "--heartbeats",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="--no-heartbeats simulates a network partition (chaos only): "
        "the worker executes and uploads but never renews its lease",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    worker = FabricWorker(
        HttpTransport(args.coordinator),
        worker_id=args.worker_id,
        workdir=args.workdir,
        jobs=args.jobs,
        snapshot_interval=args.snapshot_interval,
        differential=args.differential,
        batch_size=args.batch_size,
        heartbeats=args.heartbeats,
        poll_s=args.poll,
    )
    with GracefulShutdown() as shutdown:
        code = worker.run(shutdown)
    if shutdown.requested:
        print(
            f"worker {worker.worker_id}: interrupted by "
            f"{shutdown.signal_name}; drained the current shard, uploaded "
            "the sealed partial and released the lease",
            file=sys.stderr,
        )
        return SHUTDOWN_EXIT_CODE
    if code == 0:
        print(
            f"worker {worker.worker_id}: campaign complete "
            f"({worker.shards_completed} shard(s) finished here)"
        )
    return code
