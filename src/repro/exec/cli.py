"""``repro checkpoint`` — operate on durable campaign/fuzz artifacts.

Subcommands over the JSONL checkpoint files both engines write:

* ``inspect PATH``    — manifest identity + done/quarantined/remaining counts.
* ``verify PATH``     — full CRC + structure scan; nonzero exit on damage,
  every damaged line reported with its line number.
* ``repair PATH``     — salvage every intact record into a fresh file
  (atomically), emitting a dropped-record report so the EXPERIMENTS.md
  exclusion rules can be applied before any figure is trusted.
* ``merge -o OUT SHARD...`` — combine shard checkpoints of the *same*
  campaign (identical manifest identity) into one: a result anywhere
  outranks a failure for its key, and duplicate records of one role are
  resolved content-deterministically
  (:func:`~repro.exec.durability.canonical_winner`), so the merged file
  is byte-identical for any argument order.

Exit codes: 0 ok, 1 damage found (verify), 2 unusable input / bad usage.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.exec.durability import (
    ScanReport,
    canonical_winner,
    fold_checkpoint,
    manifest_identity,
    scan_checkpoint,
    write_sealed_checkpoint,
)


# -- structure decoding -------------------------------------------------------


def _decode_record(record: Dict[str, object]) -> None:
    """Raise when an intact-JSON, intact-CRC record is structurally wrong
    (the only corruption class v1 files can reveal). Record types are
    disjoint between the campaign and fuzz families, so one decoder serves
    both file kinds."""
    from repro.exec.resilience import TaskFailure

    kind = record.get("type")
    if kind == "result":
        from repro.exec.checkpoint import result_from_dict

        record["key"], record["index"]
        result_from_dict(record["result"])
    elif kind == "failure":
        record["key"], record["index"]
        TaskFailure.from_record(record["failure"])
    elif kind == "eval":
        from repro.fuzz.engine import _result_from_record

        _result_from_record(record)
    elif kind == "eval-failure":
        record["index"]
        TaskFailure.from_record(record["failure"])


def _manifest_problem(manifest: Dict[str, object]) -> Optional[str]:
    """Structural verdict on an intact manifest record (version support and,
    for campaign manifests, full field decoding)."""
    from repro.exec.checkpoint import CheckpointError, Manifest
    from repro.fuzz.engine import FUZZ_SUPPORTED_VERSIONS

    kind = manifest.get("type")
    try:
        if kind == "manifest":
            Manifest.from_record(manifest)
        elif kind == "fuzz-manifest":
            if manifest.get("version") not in FUZZ_SUPPORTED_VERSIONS:
                raise CheckpointError(
                    f"unsupported fuzz checkpoint version "
                    f"{manifest.get('version')!r}"
                )
        else:
            return f"unknown manifest type {kind!r}"
    except (CheckpointError, KeyError, TypeError, ValueError) as exc:
        return str(exc) or type(exc).__name__
    return None


def _print_issues(report: ScanReport, verb: str = "corrupt") -> None:
    for issue in report.issues:
        tag = "torn tail" if issue.torn_tail else verb
        print(f"{report.path}:{issue.lineno}: {tag}: {issue.reason}")


def _type_summary(report: ScanReport) -> str:
    if not report.by_type:
        return "no data records"
    return ", ".join(
        f"{count} {kind}" for kind, count in sorted(report.by_type.items())
    )


# -- subcommands --------------------------------------------------------------


def _cmd_inspect(args: argparse.Namespace) -> int:
    try:
        report, done, failures = fold_checkpoint(
            args.path, _decode_record, keep_records=False
        )
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    manifest = report.manifest
    if manifest is None:
        print(
            f"{args.path}: no readable manifest (not a checkpoint, or its "
            "first line is damaged — try `repro checkpoint verify`)",
            file=sys.stderr,
        )
        return 2
    kind = manifest.get("type")
    print(f"{args.path}: {kind} v{manifest.get('version')}")
    if manifest.get("identity") is not None:
        print(f"  identity     {manifest['identity']}")
    print(f"  seed         {manifest.get('seed')}")
    if kind == "manifest":
        models = list(manifest.get("models", []))
        benchmarks = list(manifest.get("benchmarks", []))
        total = manifest.get("runs_per_model", 0) * len(models) * len(benchmarks)
        print(f"  models       {', '.join(models)}")
        print(f"  benchmarks   {', '.join(benchmarks)}")
        print(
            f"  runs/model   {manifest.get('runs_per_model')}"
            f"  ({total} tasks)"
        )
    else:
        print(f"  batch        {manifest.get('batch')}")
        print(f"  config       {manifest.get('config_digest')}")
        bug = manifest.get("bug")
        print(f"  armed bug    {bug if bug is not None else 'none'}")
    print(f"  done         {len(done)}")
    print(f"  quarantined  {len(failures)}")
    if kind == "manifest":
        print(f"  remaining    {max(0, total - len(done) - len(failures))}")
    print(
        f"  records      {report.records} "
        f"({_type_summary(report)}; {report.sealed} crc-sealed)"
    )
    if report.issues:
        _print_issues(report, verb="damaged")
        print(
            f"  damage       {len(report.issues)} line(s) — run "
            f"`repro checkpoint verify {args.path}` / `repair`"
        )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        report = scan_checkpoint(args.path, _decode_record)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    damaged = len(report.issues)
    if report.manifest is None:
        print(f"{args.path}:1: corrupt: no readable manifest record")
        damaged = max(damaged, 1)
    else:
        problem = _manifest_problem(report.manifest)
        if problem is not None:
            print(f"{args.path}:1: corrupt: {problem}")
            damaged += 1
    _print_issues(report)
    print(
        f"{args.path}: {report.records} records ({_type_summary(report)}), "
        f"{report.sealed} crc-sealed, {damaged} damaged line(s)"
    )
    if damaged:
        print(
            f"damage found: salvage intact records with "
            f"`repro checkpoint repair {args.path}`",
            file=sys.stderr,
        )
        return 1
    print(f"{args.path}: ok")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    out = args.output or args.path + ".repaired"
    try:
        report, done, failures = fold_checkpoint(args.path, _decode_record)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if report.manifest is None:
        print(
            f"{args.path}: the manifest line itself is damaged; there is "
            "no campaign identity to anchor a repair to",
            file=sys.stderr,
        )
        return 2
    problem = _manifest_problem(report.manifest)
    if problem is not None:
        print(f"{args.path}: manifest unusable: {problem}", file=sys.stderr)
        return 2
    records = [r for r in done.values()] + [r for r in failures.values()]
    write_sealed_checkpoint(out, report.manifest, records)
    _print_issues(report, verb="dropped")
    print(
        f"{out}: salvaged {len(done)} result(s) + {len(failures)} "
        f"quarantine record(s); dropped {len(report.issues)} damaged line(s)"
    )
    if report.interior_issues:
        print(
            "interior records were dropped: before trusting any figure, "
            "apply the EXPERIMENTS.md repair-exclusion rule",
            file=sys.stderr,
        )
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    base_manifest: Optional[Dict[str, object]] = None
    base_path: Optional[str] = None
    done: Dict[object, Dict[str, object]] = {}
    failures: Dict[object, Dict[str, object]] = {}
    for path in args.paths:
        try:
            report, shard_done, shard_failures = fold_checkpoint(
                path, _decode_record
            )
        except OSError as exc:
            print(f"cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if report.manifest is None:
            print(f"{path}: no readable manifest record", file=sys.stderr)
            return 2
        if report.interior_issues:
            _print_issues(report)
            print(
                f"{path}: interior corruption; run "
                f"`repro checkpoint repair {path}` and merge the repaired "
                "file instead",
                file=sys.stderr,
            )
            return 2
        if report.torn_tail:
            _print_issues(report)  # dropped, like a resume would
        if base_manifest is None:
            base_manifest, base_path = report.manifest, path
        elif manifest_identity(report.manifest) != manifest_identity(
            base_manifest
        ):
            print(
                f"{path}: manifest identity differs from {base_path}; these "
                "shards belong to different campaigns and must not be "
                "merged",
                file=sys.stderr,
            )
            return 2
        # A result anywhere outranks a failure for its key; duplicate
        # records of one role resolve content-deterministically, so the
        # merged output is byte-identical for any argument order (shard
        # copies of one key differ only in wall-clock metadata).
        for key, record in shard_done.items():
            done[key] = (
                canonical_winner(done[key], record)
                if key in done
                else record
            )
            failures.pop(key, None)
        for key, record in shard_failures.items():
            if key in done:
                continue
            failures[key] = (
                canonical_winner(failures[key], record)
                if key in failures
                else record
            )
    records = [r for r in done.values()] + [r for r in failures.values()]
    write_sealed_checkpoint(args.output, base_manifest, records)
    print(
        f"{args.output}: merged {len(args.paths)} shard(s) into "
        f"{len(done)} result(s) + {len(failures)} quarantine record(s)"
    )
    return 0


# -- entry point --------------------------------------------------------------


def checkpoint_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro checkpoint",
        description="Inspect, verify, repair and merge JSONL checkpoints.",
    )
    sub = parser.add_subparsers(dest="command")
    inspect = sub.add_parser(
        "inspect", help="manifest + done/quarantined/remaining counts"
    )
    inspect.add_argument("path", help="checkpoint file")
    inspect.set_defaults(func=_cmd_inspect)
    verify = sub.add_parser(
        "verify",
        help="full CRC + structure scan; exit 1 when any line is damaged",
    )
    verify.add_argument("path", help="checkpoint file")
    verify.set_defaults(func=_cmd_verify)
    repair = sub.add_parser(
        "repair",
        help="salvage intact records into a fresh file + dropped report",
    )
    repair.add_argument("path", help="damaged checkpoint file")
    repair.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="PATH",
        help="where to write the repaired checkpoint [PATH.repaired]",
    )
    repair.set_defaults(func=_cmd_repair)
    merge = sub.add_parser(
        "merge",
        help="combine shard checkpoints of one campaign (later record wins)",
    )
    merge.add_argument(
        "-o",
        "--output",
        required=True,
        metavar="PATH",
        help="where to write the merged checkpoint",
    )
    merge.add_argument("paths", nargs="+", help="shard checkpoint files")
    merge.set_defaults(func=_cmd_merge)
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(checkpoint_main())
