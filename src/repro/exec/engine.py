"""The campaign engine: task generation -> backend -> ordered aggregation.

This is the one execution path behind both :func:`repro.bugs.campaign.run_campaign`
and the ``idld-campaign`` CLI. It generates the canonical task list, skips
tasks already present in a resume checkpoint, streams the rest through the
chosen backend, checkpoints each completion, emits progress events, and
finally assembles a :class:`~repro.bugs.campaign.CampaignResult` in task
order — making the campaign independent of backend, worker count, and
interruptions.

Fault tolerance: a policy-enabled backend yields a structured
:class:`~repro.exec.resilience.TaskFailure` for any task it had to
quarantine (exception / timeout / worker-crash after retries). The engine
records those as ``failure`` checkpoint records — so a later ``--resume``
skips them instead of re-crashing — and carries them on
``CampaignResult.failures``, excluded from the figure aggregations.
"""

from __future__ import annotations

import time
from typing import Collection, Dict, Iterable, Optional, Sequence

from repro.bugs.campaign import CampaignResult, InjectionResult
from repro.bugs.models import BugModel, PRIMARY_MODELS
from repro.core.config import CoreConfig
from repro.exec.backends import (
    Backend,
    ExecutionContext,
    SerialBackend,
    TaskRunner,
)
from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint_full,
    manifest_for,
)
from repro.exec.durability import GracefulShutdown
from repro.exec.progress import ProgressEvent, ProgressObserver
from repro.exec.resilience import TaskFailure, TaskFailureRecord
from repro.exec.tasks import (
    BatchedInjectionTask,
    generate_tasks,
    group_into_batches,
)
from repro.isa.program import Program


def _verify_manifest(
    manifest, seed, runs_per_model, models, benchmarks, path, config=None
):
    expected = {
        "seed": seed,
        "runs_per_model": runs_per_model,
        "models": [m.value for m in models],
        "benchmarks": list(benchmarks),
        "design_point": None if config is None else config.to_dict(),
    }
    actual = {
        "seed": manifest.seed,
        "runs_per_model": manifest.runs_per_model,
        "models": manifest.models,
        "benchmarks": manifest.benchmarks,
        "design_point": manifest.design_point,
    }
    for key in expected:
        if key == "design_point" and actual[key] is None:
            # Files written before design points existed (or by a
            # default-config campaign) carry no record; nothing to check.
            continue
        if expected[key] != actual[key]:
            raise CheckpointError(
                f"{path}: checkpoint {key}={actual[key]!r} does not match "
                f"this campaign's {key}={expected[key]!r}; refusing to resume"
            )


def run_engine(
    programs: Dict[str, Program],
    runs_per_model: int,
    models: Iterable[BugModel] = PRIMARY_MODELS,
    seed: int = 1,
    config: Optional[CoreConfig] = None,
    max_attempts: int = 6,
    backend: Optional[Backend] = None,
    checkpoint_path: Optional[str] = None,
    resume: bool = False,
    observers: Sequence[ProgressObserver] = (),
    snapshot_interval: int = 0,
    checkpoint_fsync: bool = False,
    task_runner: Optional[TaskRunner] = None,
    shutdown: Optional[GracefulShutdown] = None,
    differential: bool = False,
    batch_size: int = 1,
    shard_keys: Optional[Collection[str]] = None,
) -> CampaignResult:
    """Run a full injection campaign through the task engine.

    Args:
        programs: benchmark name -> program.
        runs_per_model: Injections per (benchmark, model) pair.
        models: Bug models to exercise (the paper's three by default).
        seed: Master seed; each task's seed derives from it by stable hash,
            so results are identical for any backend or worker count.
        config: Core configuration (paper defaults when None).
        max_attempts: Redraws allowed until an injection activates; must be
            >= 1.
        backend: Execution backend (:class:`SerialBackend` when None).
            Construct it with a :class:`~repro.exec.resilience.FaultPolicy`
            for fault-tolerant execution (retry + quarantine, watchdog,
            pool respawn, serial degradation).
        checkpoint_path: Append each completed result to this JSONL file.
        resume: Load ``checkpoint_path`` first and skip its completed
            tasks *and* its quarantined tasks; the file keeps growing in
            place.
        observers: Progress-event callables (see :mod:`repro.exec.progress`).
        snapshot_interval: Warm-start snapshot period in cycles; 0 disables
            warm starting. Purely a throughput knob — results (and
            checkpoints) are bit-identical for any value, which is why it
            is deliberately NOT part of the checkpoint manifest identity.
        checkpoint_fsync: ``os.fsync`` every checkpoint record (survives
            hard machine kills, not just process kills) at an I/O cost.
        task_runner: Override the per-task execution function (see
            :data:`~repro.exec.backends.TaskRunner`); used by the chaos
            harness to wrap the injection path with fault injection.
        shutdown: A :class:`~repro.exec.durability.GracefulShutdown` latch;
            once requested (SIGINT/SIGTERM) the backend stops dispatching,
            drains inflight work under the latch's deadline and the engine
            returns a partial — but checkpointed and resumable — campaign.
        differential: Differential suffix execution (forecasted activation,
            delta restore, convergence termination — see
            :mod:`repro.bugs.differential`). Requires
            ``snapshot_interval`` > 0. Like warm starting, a pure
            throughput knob: classifications and checkpoints are
            bit-identical either way, so it never joins manifest identity.
        batch_size: Dispatch up to this many pending same-(benchmark,
            inject-window) tasks per backend round trip
            (:class:`~repro.exec.tasks.BatchedInjectionTask`); 1 disables
            batching. Checkpoint records stay per-task, so resume
            granularity and results are independent of the batch size.
        shard_keys: Restrict execution to the tasks with these keys — one
            *shard* of the campaign, as handed out by the fabric
            coordinator (:mod:`repro.exec.fabric`). Task identity (index,
            derived seed) is untouched, and the checkpoint manifest still
            describes the whole campaign, so shard checkpoints of one
            campaign share a manifest identity and ``repro checkpoint
            merge`` (and the coordinator) can recombine them. Unknown keys
            raise ``ValueError``. None (the default) runs every task.

    Returns:
        The populated :class:`CampaignResult`, with completed results in
        canonical task order regardless of completion order and any
        quarantined tasks on ``CampaignResult.failures``.
    """
    models = list(models)
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires checkpoint_path")
    if differential and snapshot_interval <= 0:
        raise ValueError(
            "differential execution needs golden snapshots: set "
            "snapshot_interval >= 1 or disable differential"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    tasks = generate_tasks(
        list(programs), runs_per_model, models, seed, max_attempts,
        config=config,
    )
    if shard_keys is not None:
        wanted = set(shard_keys)
        unknown = wanted - {task.key for task in tasks}
        if unknown:
            raise ValueError(
                f"shard keys not in this campaign: {sorted(unknown)[:5]}"
            )
        tasks = [task for task in tasks if task.key in wanted]
    backend = backend if backend is not None else SerialBackend()
    context = ExecutionContext(
        programs=programs,
        config=config,
        runner=task_runner,
        snapshot_interval=snapshot_interval,
        differential=differential,
        shutdown=shutdown,
    )
    # A shard only ever touches its own benchmarks, so skip the (expensive)
    # golden runs of the others; the manifest's benchmark list — and hence
    # the merge identity — still spans the whole campaign either way.
    golden_names = (
        list(programs)
        if shard_keys is None
        else sorted({task.benchmark for task in tasks})
    )
    goldens = {name: context.golden(name) for name in golden_names}

    completed: Dict[int, InjectionResult] = {}
    failed: Dict[int, TaskFailureRecord] = {}
    skipped = 0
    if resume:
        manifest, done, quarantined = load_checkpoint_full(checkpoint_path)
        _verify_manifest(
            manifest, seed, runs_per_model, models, list(programs),
            checkpoint_path, config=config,
        )
        by_key = {task.key: task for task in tasks}
        for key, (index, result) in done.items():
            if key in by_key:
                completed[by_key[key].index] = result
        for key, record in quarantined.items():
            if key in by_key:
                failed[by_key[key].index] = record
        skipped = len(completed) + len(failed)

    writer: Optional[CheckpointWriter] = None
    if checkpoint_path is not None:
        manifest = manifest_for(
            seed, runs_per_model, models, list(programs), max_attempts,
            goldens, config=config,
        )
        writer = CheckpointWriter(
            checkpoint_path, manifest, resume=resume, fsync=checkpoint_fsync
        )

    total = len(tasks)
    bench_totals = {name: 0 for name in programs}
    for task in tasks:
        bench_totals[task.benchmark] += 1
    bench_done = {name: 0 for name in programs}
    for index in completed:
        bench_done[tasks[index].benchmark] += 1
    for index in failed:
        bench_done[tasks[index].benchmark] += 1

    started = time.monotonic()
    executed = 0

    def emit(benchmark: Optional[str]) -> None:
        elapsed = time.monotonic() - started
        throughput = executed / elapsed if elapsed > 0 and executed else 0.0
        remaining = total - (skipped + executed)
        eta = remaining / throughput if throughput > 0 else None
        event = ProgressEvent(
            done=skipped + executed,
            total=total,
            skipped=skipped,
            elapsed_s=elapsed,
            throughput=throughput,
            eta_s=eta,
            benchmark=benchmark,
            per_benchmark={
                name: (bench_done[name], bench_totals[name])
                for name in bench_totals
            },
            failed=len(failed),
        )
        for observer in observers:
            observer(event)

    try:
        if skipped and observers:
            emit(None)
        pending = [
            task
            for task in tasks
            if task.index not in completed and task.index not in failed
        ]
        work: Sequence = pending
        if batch_size > 1:
            work = group_into_batches(
                pending, goldens, config, snapshot_interval, batch_size
            )
        for unit, outcome in backend.run(work, context):
            if isinstance(unit, BatchedInjectionTask):
                members = unit.members
                results = outcome if not isinstance(outcome, TaskFailure) else None
            else:
                members = (unit,)
                results = None if isinstance(outcome, TaskFailure) else [outcome]
            if results is None:
                # A quarantined batch quarantines every member: the batch is
                # the retry unit, and a per-member record keeps resume and
                # reporting at task granularity.
                for member in members:
                    failed[member.index] = TaskFailureRecord(
                        key=member.key,
                        index=member.index,
                        benchmark=member.benchmark,
                        failure=outcome,
                    )
                    if writer is not None:
                        writer.write_failure(member, outcome)
            else:
                for member, result in zip(members, results):
                    completed[member.index] = result
                    if writer is not None:
                        writer.write_result(member, result)
            executed += len(members)
            bench_done[unit.benchmark] += len(members)
            emit(unit.benchmark)
    finally:
        if writer is not None:
            writer.close()

    campaign = CampaignResult(goldens=dict(goldens))
    campaign.results = [
        completed[task.index] for task in tasks if task.index in completed
    ]
    campaign.failures = [failed[index] for index in sorted(failed)]
    return campaign
