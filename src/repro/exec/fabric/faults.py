"""Deterministic network fault injection for fabric transports.

:class:`FaultyTransport` wraps any :class:`~repro.exec.fabric.transport
.FabricTransport` — :class:`LocalTransport` for unit-speed chaos,
:class:`HttpTransport` for end-to-end — and injects the network's whole
repertoire of hostility on a *seeded schedule*: every injected fault is
a pure function of ``(seed, rule, endpoint, call number)``, so a failing
chaos run replays bit-for-bit from the schedule serialized into its
artifact. No wall-clock, no global PRNG, no flakes.

The fault kinds split along the one axis that matters for correctness —
**did the request reach the coordinator before the failure?**

* ``drop`` / ``partition`` — no. The request never arrives; the caller
  sees :class:`TransportError` and no coordinator state changed. A
  retry is trivially safe. ``partition`` is just ``drop`` at p=1.0 over
  a call window — the idiom for "endpoint X is unreachable from calls
  N through M, then heals".
* ``blackhole-response`` / ``truncate`` / ``garbage`` — yes. The inner
  call runs to completion (coordinator state *changed*), then the
  response is destroyed three different ways a real network destroys
  responses. The caller cannot distinguish this from ``drop`` — which
  is exactly the point: these kinds prove the protocol is idempotent,
  because the retry re-applies a request that already happened.
* ``duplicate`` — the request arrives *twice* (retransmission, confused
  proxy); the caller sees the first response. Proves at-least-once
  delivery converges.
* ``latency`` — the request is merely late. Exercises timeout and
  lease-TTL margins without changing semantics.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.exec.fabric.transport import FabricTransport, TransportError

#: Fault kinds a rule may inject, grouped by where the failure bites.
FAULT_KINDS = (
    "latency",             # delay, then proceed normally
    "drop",                # request never reaches the coordinator
    "partition",           # drop, idiomatically p=1.0 over a call window
    "blackhole-response",  # request applied; response never comes back
    "truncate",            # request applied; response cut short
    "garbage",             # request applied; response is not JSON
    "duplicate",           # request applied twice; first response returned
)

#: Endpoint names a rule may target ("*" matches all of them).
ENDPOINTS = (
    "submit", "request", "heartbeat", "upload", "release", "status", "fetch",
)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        endpoint: Which transport method the rule watches, or ``"*"``.
        p: Probability the rule fires on each matching call (drawn from
            the schedule's seeded stream, so it is deterministic per
            (seed, rule, endpoint, call)).
        first_call / last_call: 1-based window on the per-endpoint call
            counter: the rule is live from the ``first_call``-th call to
            that endpoint through the ``last_call``-th (``None`` = no
            upper bound). ``partition`` + a window is how "outage from
            call 3 to call 7, then healed" is spelled.
        latency_s: Injected delay for ``latency`` rules.
    """

    kind: str
    endpoint: str = "*"
    p: float = 1.0
    first_call: int = 1
    last_call: Optional[int] = None
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.endpoint != "*" and self.endpoint not in ENDPOINTS:
            raise ValueError(
                f"unknown endpoint {self.endpoint!r}; "
                f"expected '*' or one of {', '.join(ENDPOINTS)}"
            )
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.first_call < 1:
            raise ValueError(
                f"first_call is 1-based, got {self.first_call}"
            )
        if self.last_call is not None and self.last_call < self.first_call:
            raise ValueError(
                f"last_call {self.last_call} precedes "
                f"first_call {self.first_call}"
            )
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")

    def matches(self, endpoint: str, call_n: int) -> bool:
        """Is this rule live for the ``call_n``-th call to ``endpoint``?"""
        if self.endpoint != "*" and self.endpoint != endpoint:
            return False
        if call_n < self.first_call:
            return False
        if self.last_call is not None and call_n > self.last_call:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "endpoint": self.endpoint,
            "p": self.p,
            "first_call": self.first_call,
            "last_call": self.last_call,
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultRule":
        return cls(
            kind=data["kind"],
            endpoint=data.get("endpoint", "*"),
            p=data.get("p", 1.0),
            first_call=data.get("first_call", 1),
            last_call=data.get("last_call"),
            latency_s=data.get("latency_s", 0.0),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus an ordered list of rules — the whole reproducibility
    contract of a chaos run. Serialize it (``to_dict``) into the run's
    artifact; feed the dict back (``from_dict``) to replay every fault
    at the same calls with the same outcomes."""

    seed: int
    rules: Tuple[FaultRule, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSchedule":
        return cls(
            seed=data["seed"],
            rules=tuple(
                FaultRule.from_dict(r) for r in data.get("rules", ())
            ),
        )


class FaultyTransport:
    """A :class:`FabricTransport` that mistreats another one on schedule.

    Rules are evaluated in order per call; ``latency`` rules accumulate
    (sleep, continue to the next rule), the first firing *failure* rule
    wins. Everything injected is appended to :attr:`injected` —
    ``{"call", "endpoint", "kind", "rule"}`` — so a chaos scenario can
    assert its faults actually fired (a fault matrix that silently
    injects nothing proves nothing) and log the tally.

    ``sleep`` is injectable so latency scenarios run at test speed.
    """

    def __init__(
        self,
        inner: FabricTransport,
        schedule: FaultSchedule,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self._sleep = sleep
        self._counts: Dict[str, int] = {}
        self.injected: List[Dict[str, object]] = []

    def _fires(self, rule_idx: int, rule: FaultRule,
               endpoint: str, call_n: int) -> bool:
        if rule.p >= 1.0:
            return True
        # One private, replayable stream per (seed, rule, endpoint, call):
        # insensitive to rule evaluation order and to draws other rules make.
        draw = random.Random(
            f"{self.schedule.seed}:{rule_idx}:{endpoint}:{call_n}"
        ).random()
        return draw < rule.p

    def _apply(self, endpoint: str, call):
        """Run ``call`` under whatever the schedule dictates for it."""
        call_n = self._counts.get(endpoint, 0) + 1
        self._counts[endpoint] = call_n
        fault: Optional[Tuple[int, FaultRule]] = None
        for idx, rule in enumerate(self.schedule.rules):
            if not rule.matches(endpoint, call_n):
                continue
            if not self._fires(idx, rule, endpoint, call_n):
                continue
            if rule.kind == "latency":
                self._note(call_n, endpoint, idx, rule)
                self._sleep(rule.latency_s)
                continue  # latency composes with a later failure rule
            fault = (idx, rule)
            break
        if fault is None:
            return call()
        idx, rule = fault
        self._note(call_n, endpoint, idx, rule)
        if rule.kind in ("drop", "partition"):
            # The request never reaches the coordinator: no state change.
            raise TransportError(
                f"injected {rule.kind}: {endpoint} call {call_n} "
                "never reached the coordinator"
            )
        if rule.kind in ("blackhole-response", "truncate", "garbage"):
            # The request is APPLIED, then the response is destroyed —
            # the caller must treat this exactly like a drop, and only
            # an idempotent protocol survives the retry that follows.
            call()
            raise TransportError(
                f"injected {rule.kind}: {endpoint} call {call_n} was "
                "applied but its response was lost"
            )
        if rule.kind == "duplicate":
            first = call()
            try:
                call()  # the retransmission's outcome is invisible
            except Exception:
                pass
            return first
        raise AssertionError(f"unhandled fault kind {rule.kind}")

    def _note(self, call_n: int, endpoint: str,
              rule_idx: int, rule: FaultRule) -> None:
        self.injected.append({
            "call": call_n,
            "endpoint": endpoint,
            "kind": rule.kind,
            "rule": rule_idx,
        })

    def injected_by_kind(self) -> Dict[str, int]:
        """Tally of injected faults, for scenario assertions and logs."""
        tally: Dict[str, int] = {}
        for entry in self.injected:
            tally[entry["kind"]] = tally.get(entry["kind"], 0) + 1
        return tally

    # -- FabricTransport -------------------------------------------------------

    def submit(self, spec):
        return self._apply("submit", lambda: self.inner.submit(spec))

    def request(self, worker):
        return self._apply("request", lambda: self.inner.request(worker))

    def heartbeat(self, worker, shard, token):
        return self._apply(
            "heartbeat", lambda: self.inner.heartbeat(worker, shard, token)
        )

    def upload(self, worker, shard, token, data, crc):
        return self._apply(
            "upload",
            lambda: self.inner.upload(worker, shard, token, data, crc),
        )

    def release(self, worker, shard, token, outcome, reason=""):
        return self._apply(
            "release",
            lambda: self.inner.release(worker, shard, token, outcome, reason),
        )

    def status(self):
        return self._apply("status", lambda: self.inner.status())

    def fetch(self):
        return self._apply("fetch", lambda: self.inner.fetch())
