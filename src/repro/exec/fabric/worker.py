"""The fabric worker: lease, execute, upload — and survive the network.

Around each shard: a lease-renewal thread (one heartbeat per ``ttl / 3``;
a failed renewal requests a graceful drain of the engine exactly like
SIGTERM would), a fresh per-lease checkpoint file, and a CRC-verified
idempotent upload with capped jittered retry. A global
:class:`~repro.exec.durability.GracefulShutdown` latch (SIGTERM/SIGINT in
the CLI) drains the current shard, uploads the sealed partial and
releases the lease before exiting — the coordinator then hands the
remainder of the shard to someone else via ``skip_keys``.

Partition-proofing is a :class:`~repro.exec.resilience.CircuitBreaker`
over coordinator contact: when every RPC has failed for longer than the
offline budget, the worker stops burning leases it cannot renew, drains
the engine, **seals** the partial shard checkpoint to local disk
(``sealed-shard-*.jsonl`` in the workdir) and exits with
:data:`~repro.exec.durability.SHUTDOWN_EXIT_CODE` — the same contract as
a SIGTERM drain, because an unreachable coordinator and an operator's
shutdown demand the same choreography. On its next start in the same
workdir, the worker uploads any sealed partials before requesting new
work (uploads are valid without a live lease; the merge dedups), so
"restart the worker when the network returns" is a complete recovery
story. Nothing computed is ever lost to a partition.
"""

from __future__ import annotations

import glob
import json
import os
import re
import socket
import sys
import threading
import time
import zlib
from typing import Callable, Dict, List, Optional

from repro.exec.durability import SHUTDOWN_EXIT_CODE, GracefulShutdown
from repro.exec.fabric.spec import CampaignSpec
from repro.exec.fabric.transport import (
    FabricRejected,
    FabricTransport,
    TransportError,
)
from repro.exec.resilience import (
    CircuitBreaker,
    FaultPolicy,
    backoff_with_jitter,
)

#: Sealed-partial filenames: ``sealed-shard-{index}-{token prefix}.jsonl``.
_SEALED_RE = re.compile(r"^sealed-shard-(\d+)-[0-9a-f]+\.jsonl$")


class FabricWorker:
    """Executes leased shards through the ordinary campaign engine.

    Throughput knobs (jobs, snapshot interval, differential, batch size)
    are the worker's own business: any mix across the fleet produces the
    same merged artifact. ``offline_budget_s`` bounds how long the worker
    tolerates total coordinator silence before sealing and exiting
    (None: keep retrying forever). ``clock``/``sleep`` are injectable so
    partition tests run on a fake timeline.
    """

    #: Upload attempts before a shard is abandoned to lease expiry.
    UPLOAD_RETRIES = 5

    def __init__(
        self,
        transport: FabricTransport,
        worker_id: Optional[str] = None,
        workdir: Optional[str] = None,
        jobs: int = 1,
        snapshot_interval: int = 250,
        differential: bool = True,
        batch_size: int = 8,
        fault_policy: Optional[FaultPolicy] = None,
        heartbeats: bool = True,
        poll_s: Optional[float] = None,
        offline_budget_s: Optional[float] = 300.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.transport = transport
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.workdir = workdir or os.getcwd()
        os.makedirs(self.workdir, exist_ok=True)
        self.jobs = jobs
        self.snapshot_interval = snapshot_interval
        self.differential = differential
        self.batch_size = batch_size
        self.fault_policy = (
            fault_policy if fault_policy is not None else FaultPolicy()
        )
        # Chaos knob: a worker that never heartbeats simulates a network
        # partition (heartbeat blackhole) while still executing and
        # uploading — the lease-expiry + overlapping-merge path.
        self.heartbeats = heartbeats
        self.poll_s = poll_s
        self.offline_budget_s = offline_budget_s
        self.clock = clock
        self._sleep = sleep
        self.shards_completed = 0
        #: Set when the circuit breaker ended the run: the offline exit.
        self.offline = False
        #: Sealed partial paths left on disk by a breaker-tripped run.
        self.sealed_paths: List[str] = []
        self._breaker: Optional[CircuitBreaker] = None
        self._program_cache: Dict[str, Dict[str, object]] = {}

    # -- campaign material -----------------------------------------------------

    def _programs(self, spec: CampaignSpec) -> Dict[str, object]:
        cache_key = json.dumps(spec.to_dict(), sort_keys=True)
        if cache_key not in self._program_cache:
            self._program_cache.clear()  # one campaign at a time
            self._program_cache[cache_key] = spec.programs()
        return self._program_cache[cache_key]

    # -- breaker bookkeeping ---------------------------------------------------

    def _contact(self) -> None:
        """Record a successful coordinator round-trip."""
        if self._breaker is not None:
            self._breaker.success()

    @property
    def _tripped(self) -> bool:
        return self._breaker is not None and self._breaker.tripped

    # -- sealed partials -------------------------------------------------------

    def _sealed_partials(self) -> List[str]:
        return sorted(
            path
            for path in glob.glob(
                os.path.join(self.workdir, "sealed-shard-*.jsonl")
            )
            if _SEALED_RE.match(os.path.basename(path))
        )

    def _recover_sealed_partials(self) -> None:
        """Upload partials a previous breaker-tripped run sealed to disk.

        An upload is valid without a live lease (the merge dedups by
        content), so the sealed file simply re-enters the normal path;
        success deletes it, failure leaves it for the next start.
        """
        for path in self._sealed_partials():
            match = _SEALED_RE.match(os.path.basename(path))
            shard_index = int(match.group(1))
            with open(path, "rb") as handle:
                data = handle.read()
            crc = zlib.crc32(data) & 0xFFFFFFFF
            try:
                response = self.transport.upload(
                    self.worker_id, shard_index, None, data, crc
                )
            except TransportError:
                return  # still offline; keep the seal, try next start
            except FabricRejected as exc:
                print(
                    f"worker {self.worker_id}: sealed partial {path} "
                    f"rejected ({exc}); leaving it on disk for inspection",
                    file=sys.stderr,
                )
                continue
            self._contact()
            if response.get("ok"):
                print(
                    f"worker {self.worker_id}: recovered sealed partial "
                    f"{os.path.basename(path)} "
                    f"({response.get('new_records', 0)} new record(s))",
                    file=sys.stderr,
                )
                os.unlink(path)

    def _seal_partial(self, shard_path: str, shard_index: int,
                      token: str) -> None:
        """Keep an un-uploadable shard checkpoint on local disk."""
        if not os.path.exists(shard_path):
            return
        sealed = os.path.join(
            self.workdir, f"sealed-shard-{shard_index}-{token[:8]}.jsonl"
        )
        os.replace(shard_path, sealed)
        self.sealed_paths.append(sealed)

    # -- main loop -------------------------------------------------------------

    def run(self, shutdown: Optional[GracefulShutdown] = None) -> int:
        """Lease-execute-upload until the campaign is done.

        Returns 0 on campaign completion, 2 on a definitive coordinator
        rejection (:class:`FabricRejected` — retrying cannot help), and
        :data:`~repro.exec.durability.SHUTDOWN_EXIT_CODE` when the
        offline budget expired (``self.offline`` is set and any partial
        work is sealed in the workdir). The CLI maps the shutdown latch
        to the same exit code — both are "stopped cleanly, restart me".
        """
        shutdown = shutdown if shutdown is not None else GracefulShutdown()
        self._breaker = (
            CircuitBreaker(self.offline_budget_s, clock=self.clock)
            if self.offline_budget_s is not None
            else None
        )
        self._recover_sealed_partials()
        consecutive_errors = 0
        while not shutdown.requested:
            if self._tripped:
                self.offline = True
                return SHUTDOWN_EXIT_CODE
            try:
                response = self.transport.request(self.worker_id)
            except FabricRejected as exc:
                print(
                    f"worker {self.worker_id}: coordinator rejected the "
                    f"work request: {exc}",
                    file=sys.stderr,
                )
                return 2
            except TransportError:
                consecutive_errors += 1
                self._sleep(
                    backoff_with_jitter(consecutive_errors, 0.2, 5.0)
                )
                continue
            consecutive_errors = 0
            self._contact()
            lease = response.get("lease")
            if lease is None:
                if response.get("done"):
                    return 0
                self._sleep(
                    self.poll_s
                    if self.poll_s is not None
                    else float(response.get("retry_after_s", 1.0))
                )
                continue
            self._run_lease(lease, shutdown)
        return 0

    def _run_lease(
        self, lease: Dict[str, object], shutdown: GracefulShutdown
    ) -> None:
        from repro.exec.backends import ProcessPoolBackend, SerialBackend
        from repro.exec.engine import run_engine

        spec = CampaignSpec.from_dict(lease["spec"])
        shard_index = lease["shard"]
        token = lease["token"]
        keys = [k for k in lease["keys"] if k not in set(lease["skip_keys"])]
        if not keys:
            self._safe_release(shard_index, token, "complete")
            return

        # The shard-local latch: requested by the global (signal) latch,
        # by lease loss, or by the circuit breaker; either way the engine
        # drains inflight work, flushes the shard checkpoint and returns
        # a sealed partial.
        shard_latch = GracefulShutdown()
        lease_lost = threading.Event()
        stop_beats = threading.Event()

        def renew() -> None:
            interval = max(0.05, float(lease["ttl_s"]) / 3.0)
            while not stop_beats.wait(interval):
                if shutdown.requested and not shard_latch.requested:
                    shard_latch.request()
                    continue
                if self._tripped and not shard_latch.requested:
                    # Offline past budget: stop computing against a lease
                    # nobody is renewing; drain and let run() seal.
                    shard_latch.request()
                    continue
                if not self.heartbeats:
                    continue
                try:
                    alive = self.transport.heartbeat(
                        self.worker_id, shard_index, token
                    )
                except TransportError:
                    continue  # transient; the lease has ttl_s of slack
                except FabricRejected:
                    continue  # the drain path below handles lease loss
                self._contact()
                if not alive and not lease_lost.is_set():
                    lease_lost.set()
                    if not shard_latch.requested:
                        shard_latch.request()

        beater = threading.Thread(target=renew, daemon=True)
        beater.start()
        shard_path = os.path.join(
            self.workdir, f"shard-{shard_index}-{token[:8]}.jsonl"
        )
        keep_shard_file = False
        try:
            policy = self.fault_policy
            backend = (
                ProcessPoolBackend(self.jobs, policy=policy)
                if self.jobs > 1
                else SerialBackend(policy=policy)
            )
            run_engine(
                self._programs(spec),
                spec.runs_per_model,
                models=spec.model_enums,
                seed=spec.seed,
                config=spec.core_config(),
                max_attempts=spec.max_attempts,
                backend=backend,
                checkpoint_path=shard_path,
                snapshot_interval=self.snapshot_interval,
                differential=(
                    self.differential and self.snapshot_interval > 0
                ),
                batch_size=self.batch_size,
                shutdown=shard_latch,
                shard_keys=keys,
            )
            uploaded = self._upload_shard(shard_path, shard_index, token)
            if not uploaded and self._tripped:
                # The coordinator is gone past budget: seal locally so
                # the computed records survive the exit, skip the release
                # (it cannot be delivered; the lease TTL reclaims the
                # shard), and let run() exit 75.
                self._seal_partial(shard_path, shard_index, token)
                keep_shard_file = True
                return
            if shutdown.requested or shard_latch.requested:
                self._safe_release(
                    shard_index, token, "drain",
                    reason="lease lost" if lease_lost.is_set() else "shutdown",
                )
            elif uploaded:
                self._safe_release(shard_index, token, "complete")
                self.shards_completed += 1
            else:
                self._safe_release(
                    shard_index, token, "failed", reason="upload failed"
                )
        except Exception as exc:
            # A worker-side hard failure (bad env, disk full, ...): hand
            # the shard back charged; repeated offenders quarantine it.
            print(
                f"worker {self.worker_id}: shard {shard_index} failed: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            self._safe_release(
                shard_index, token, "failed",
                reason=f"{type(exc).__name__}: {exc}",
            )
        finally:
            stop_beats.set()
            beater.join(timeout=5.0)
            if not keep_shard_file:
                try:
                    os.unlink(shard_path)
                except OSError:
                    pass

    def _upload_shard(
        self, shard_path: str, shard_index: int, token: str
    ) -> bool:
        if not os.path.exists(shard_path):
            return False
        with open(shard_path, "rb") as handle:
            data = handle.read()
        crc = zlib.crc32(data) & 0xFFFFFFFF
        for attempt in range(1, self.UPLOAD_RETRIES + 1):
            try:
                response = self.transport.upload(
                    self.worker_id, shard_index, token, data, crc
                )
            except TransportError:
                response = None
            except FabricRejected as exc:
                print(
                    f"worker {self.worker_id}: upload of shard "
                    f"{shard_index} rejected: {exc}",
                    file=sys.stderr,
                )
                return False  # definitive; retrying cannot help
            if response is not None:
                self._contact()
                if response.get("ok"):
                    return True
            if self._tripped:
                return False  # stop burning retries against a dead link
            if attempt < self.UPLOAD_RETRIES:
                self._sleep(backoff_with_jitter(attempt, 0.2, 5.0))
        return False

    def _safe_release(
        self, shard_index: int, token: str, outcome: str, reason: str = ""
    ) -> None:
        try:
            self.transport.release(
                self.worker_id, shard_index, token, outcome, reason
            )
            self._contact()
        except TransportError:
            pass  # the lease TTL reclaims the shard either way
        except FabricRejected:
            pass  # e.g. unknown shard after a coordinator reset
