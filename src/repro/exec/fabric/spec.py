"""The campaign spec: the fabric's single source of truth.

Workers never choose campaign parameters themselves, they receive this
with every lease, so a fleet cannot silently mix seeds, scales or design
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bugs.models import BugModel, PRIMARY_MODELS
from repro.exec.durability import identity_hash
from repro.exec.tasks import InjectionTask, generate_tasks


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to regenerate the campaign's task list.

    The spec is the fabric's single source of truth: workers never choose
    campaign parameters themselves, they receive this with every lease, so
    a fleet cannot silently mix seeds, scales or design points. Throughput
    knobs (jobs, snapshot interval, differential, batching) deliberately do
    NOT appear here — they are per-worker choices that cannot change
    results.
    """

    benchmarks: Tuple[str, ...]
    runs_per_model: int
    seed: int = 1
    scale: float = 1.0
    models: Tuple[str, ...] = tuple(m.value for m in PRIMARY_MODELS)
    max_attempts: int = 6
    shard_size: int = 25
    #: Serialized CoreConfig (CoreConfig.to_dict()) or None for the default
    #: design point — matches the checkpoint manifest field of PR 6.
    design_point: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.runs_per_model < 0:
            raise ValueError(
                f"runs_per_model must be >= 0, got {self.runs_per_model}"
            )
        if self.shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {self.shard_size}")
        if not self.benchmarks:
            raise ValueError("a campaign needs at least one benchmark")
        for name in self.models:
            BugModel(name)  # raises ValueError on unknown model names

    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmarks": list(self.benchmarks),
            "runs_per_model": self.runs_per_model,
            "seed": self.seed,
            "scale": self.scale,
            "models": list(self.models),
            "max_attempts": self.max_attempts,
            "shard_size": self.shard_size,
            "design_point": self.design_point,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        return cls(
            benchmarks=tuple(data["benchmarks"]),
            runs_per_model=data["runs_per_model"],
            seed=data.get("seed", 1),
            scale=data.get("scale", 1.0),
            models=tuple(data.get("models") or (m.value for m in PRIMARY_MODELS)),
            max_attempts=data.get("max_attempts", 6),
            shard_size=data.get("shard_size", 25),
            design_point=data.get("design_point"),
        )

    @property
    def model_enums(self) -> List[BugModel]:
        return [BugModel(name) for name in self.models]

    def tasks(self) -> List[InjectionTask]:
        """The campaign's canonical task list (config-independent seeds)."""
        return generate_tasks(
            list(self.benchmarks),
            self.runs_per_model,
            self.model_enums,
            self.seed,
            self.max_attempts,
            config=self.core_config(),
        )

    def core_config(self):
        if self.design_point is None:
            return None
        from repro.core.config import CoreConfig

        return CoreConfig.from_dict(self.design_point)

    def programs(self) -> Dict[str, object]:
        from repro.workloads import WORKLOADS

        unknown = [n for n in self.benchmarks if n not in WORKLOADS]
        if unknown:
            raise ValueError(f"unknown benchmarks: {', '.join(unknown)}")
        return {
            name: WORKLOADS[name](scale=self.scale) for name in self.benchmarks
        }

    def expected_manifest_identity(self) -> str:
        """The manifest identity every shard checkpoint of this campaign
        must carry — computable without running a single golden cycle
        (golden summaries are excluded from manifest identity), so the
        coordinator can reject foreign shards before merging them."""
        fields: Dict[str, object] = {
            "seed": self.seed,
            "runs_per_model": self.runs_per_model,
            "models": list(self.models),
            "benchmarks": list(self.benchmarks),
            "max_attempts": self.max_attempts,
        }
        if self.design_point is not None:
            fields["design_point"] = self.design_point
        return identity_hash(fields)
