"""The fabric coordinator: shard planning, leases, merge-as-you-go."""

from __future__ import annotations

import json
import os
import random
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.exec.durability import (
    CheckpointError,
    atomic_write_text,
    canonical_winner,
    fold_checkpoint,
    manifest_identity,
    write_sealed_checkpoint,
)
from repro.exec.fabric.spec import CampaignSpec
from repro.exec.progress import ProgressEvent, ProgressObserver
from repro.exec.resilience import backoff_with_jitter


@dataclass(frozen=True)
class FabricPolicy:
    """How the coordinator leases, reassigns and quarantines shards.

    Attributes:
        lease_ttl_s: Seconds a lease lives without a heartbeat; a worker
            renews by heartbeating, a silent/dead worker's shard is
            reassigned after expiry.
        reassign_backoff_base_s: Initial delay before an expired/failed
            shard becomes leasable again; doubles per grant up to the cap,
            jittered (see :func:`~repro.exec.resilience.backoff_with_jitter`)
            so simultaneously-orphaned shards don't thundering-herd one
            recovering worker.
        reassign_backoff_max_s: Backoff ceiling.
        backoff_jitter: Jitter fraction handed to the shared helper.
        quarantine_after: Distinct workers a shard must fail on (lease
            expiry or explicit failure release — graceful drains don't
            count) before it is declared poison and quarantined. Mirrors
            task-level quarantine one level up.
        poll_s: Retry hint returned to idle workers when every shard is
            leased or backing off.
    """

    lease_ttl_s: float = 60.0
    reassign_backoff_base_s: float = 0.5
    reassign_backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    quarantine_after: int = 3
    poll_s: float = 1.0

    def __post_init__(self) -> None:
        if self.lease_ttl_s <= 0:
            raise ValueError(f"lease_ttl_s must be > 0, got {self.lease_ttl_s}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )


#: Shard lifecycle states.
PENDING, LEASED, DONE, QUARANTINED = "pending", "leased", "done", "quarantined"


@dataclass
class Shard:
    """One leased slice of the campaign's canonical task list."""

    index: int
    keys: Tuple[str, ...]
    state: str = PENDING
    lease_worker: Optional[str] = None
    lease_token: Optional[str] = None
    lease_deadline: float = 0.0
    grants: int = 0  # leases handed out so far (drives the backoff)
    failed_workers: Set[str] = field(default_factory=set)
    not_before: float = 0.0  # reassignment backoff gate (coordinator clock)
    last_failure: str = ""  # most recent charge reason, for diagnosis

    def lease_matches(self, worker: str, token: Optional[str]) -> bool:
        return (
            self.state == LEASED
            and self.lease_worker == worker
            and self.lease_token == token
        )

    def clear_lease(self) -> None:
        self.lease_worker = None
        self.lease_token = None
        self.lease_deadline = 0.0


class FabricError(RuntimeError):
    """A fabric request the coordinator cannot honor."""


class FabricCoordinator:
    """Plans shards, leases them out, merges what comes back.

    Thread-safe (every public method takes the instance lock), transport-
    agnostic (the HTTP layer and :class:`LocalTransport` both call straight
    into it) and restart-safe: ``state_dir`` holds ``spec.json`` and the
    continuously-merged ``merged.jsonl``; a coordinator constructed on a
    directory with both resumes exactly where the dead one stopped, minus
    the in-memory leases (workers re-request on their next heartbeat
    failure).

    ``clock`` is injectable for tests — leases and backoff gates live on
    whatever timeline it provides (``time.monotonic`` in production).
    """

    def __init__(
        self,
        state_dir: str,
        policy: Optional[FabricPolicy] = None,
        observers: Sequence[ProgressObserver] = (),
        clock: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.state_dir = state_dir
        self.policy = policy if policy is not None else FabricPolicy()
        self.observers = list(observers)
        self.clock = clock
        self.rng = rng
        self._lock = threading.RLock()
        self.spec: Optional[CampaignSpec] = None
        self.shards: List[Shard] = []
        self._key_index: Dict[str, int] = {}
        self._key_benchmark: Dict[str, str] = {}
        self._manifest: Optional[Dict[str, object]] = None
        self._done: Dict[str, Dict[str, object]] = {}
        self._failures: Dict[str, Dict[str, object]] = {}
        self._workers_seen: Dict[str, float] = {}
        self._started = clock()
        self._executed_since_start = 0
        os.makedirs(state_dir, exist_ok=True)
        self._recover()

    # -- paths ----------------------------------------------------------------

    @property
    def spec_path(self) -> str:
        return os.path.join(self.state_dir, "spec.json")

    @property
    def artifact_path(self) -> str:
        return os.path.join(self.state_dir, "merged.jsonl")

    # -- persistence / recovery -----------------------------------------------

    def _recover(self) -> None:
        """Reload a dead coordinator's campaign from its state directory."""
        if not os.path.exists(self.spec_path):
            return
        with open(self.spec_path) as handle:
            self._install_spec(CampaignSpec.from_dict(json.load(handle)))
        if os.path.exists(self.artifact_path):
            report, done, failures = fold_checkpoint(self.artifact_path)
            if report.manifest is None or report.interior_issues:
                raise CheckpointError(
                    f"{self.artifact_path}: merged artifact is damaged; "
                    "repair it with `repro checkpoint repair` before "
                    "restarting the coordinator"
                )
            self._manifest = report.manifest
            self._done = dict(done)
            self._failures = dict(failures)
            self._refresh_shard_completion()

    def _install_spec(self, spec: CampaignSpec) -> None:
        self.spec = spec
        tasks = spec.tasks()
        self._key_index = {task.key: task.index for task in tasks}
        self._key_benchmark = {task.key: task.benchmark for task in tasks}
        keys = [task.key for task in tasks]
        self.shards = [
            Shard(index=i, keys=tuple(keys[start:start + spec.shard_size]))
            for i, start in enumerate(range(0, len(keys), spec.shard_size))
        ]

    # -- submit ---------------------------------------------------------------

    def submit(self, spec_data: Dict[str, object]) -> Dict[str, object]:
        """Install the campaign. Idempotent for an identical spec; a
        different spec is refused (one coordinator, one campaign — run a
        second coordinator on a second state dir for a second campaign)."""
        with self._lock:
            spec = CampaignSpec.from_dict(spec_data)
            spec.programs()  # validates benchmark names before accepting
            if self.spec is not None:
                if self.spec == spec:
                    return self.status()
                raise FabricError(
                    "a different campaign is already submitted; this "
                    "coordinator serves one campaign per state directory"
                )
            self._install_spec(spec)
            atomic_write_text(
                self.spec_path, json.dumps(spec.to_dict(), sort_keys=True)
            )
            self._started = self.clock()
            self._executed_since_start = 0
            return self.status()

    # -- lease lifecycle ------------------------------------------------------

    def _expire_leases(self) -> None:
        now = self.clock()
        for shard in self.shards:
            if shard.state == LEASED and now > shard.lease_deadline:
                # A silent worker is charged like a failed one: heartbeats
                # exist precisely so death and hang are indistinguishable.
                worker = shard.lease_worker
                shard.clear_lease()
                self._charge_failure(shard, worker, reason="lease expired")

    def _charge_failure(
        self, shard: Shard, worker: Optional[str], reason: str
    ) -> None:
        if worker is not None:
            shard.failed_workers.add(worker)
        shard.last_failure = reason
        if len(shard.failed_workers) >= self.policy.quarantine_after:
            shard.state = QUARANTINED
            return
        shard.state = PENDING
        shard.not_before = self.clock() + backoff_with_jitter(
            shard.grants,
            self.policy.reassign_backoff_base_s,
            self.policy.reassign_backoff_max_s,
            jitter=self.policy.backoff_jitter,
            rng=self.rng,
        )

    def _lease_payload(self, shard: Shard) -> Dict[str, object]:
        handled = self._handled_keys()
        return {
            "lease": {
                "shard": shard.index,
                "token": shard.lease_token,
                "keys": list(shard.keys),
                # Already-merged keys (a drained predecessor's partial
                # upload): the new worker skips them.
                "skip_keys": [k for k in shard.keys if k in handled],
                "ttl_s": self.policy.lease_ttl_s,
                "spec": self.spec.to_dict(),
            },
            "done": False,
            "retry_after_s": self.policy.poll_s,
        }

    def request(self, worker: str) -> Dict[str, object]:
        """Hand ``worker`` a lease on the lowest-index eligible shard.

        Idempotent per worker: if ``worker`` already holds a live lease
        (a retried request whose response was lost on the network, or a
        worker re-requesting after a healed partition), the *same* lease
        is returned with its deadline renewed — never a second shard. A
        worker executes one shard at a time, so a duplicate grant could
        only orphan the first shard until its lease expired, charging the
        worker for a failure that never happened.
        """
        with self._lock:
            if self.spec is None:
                return {"lease": None, "done": False,
                        "retry_after_s": self.policy.poll_s}
            self._expire_leases()
            self._workers_seen[worker] = self.clock()
            now = self.clock()
            for shard in self.shards:
                if shard.state == LEASED and shard.lease_worker == worker:
                    shard.lease_deadline = now + self.policy.lease_ttl_s
                    return self._lease_payload(shard)
            for shard in self.shards:
                if shard.state != PENDING or now < shard.not_before:
                    continue
                shard.state = LEASED
                shard.lease_worker = worker
                shard.lease_token = uuid.uuid4().hex
                shard.lease_deadline = now + self.policy.lease_ttl_s
                shard.grants += 1
                return self._lease_payload(shard)
            return {
                "lease": None,
                "done": self.campaign_done(),
                "retry_after_s": self.policy.poll_s,
            }

    def heartbeat(self, worker: str, shard_index: int, token: str) -> bool:
        """Renew a lease; False tells the worker its lease is gone and it
        should drain, upload what it has and re-request."""
        with self._lock:
            self._expire_leases()
            self._workers_seen[worker] = self.clock()
            if not 0 <= shard_index < len(self.shards):
                return False
            shard = self.shards[shard_index]
            if not shard.lease_matches(worker, token):
                return False
            shard.lease_deadline = self.clock() + self.policy.lease_ttl_s
            return True

    def release(
        self,
        worker: str,
        shard_index: int,
        token: Optional[str],
        outcome: str,
        reason: str = "",
    ) -> Dict[str, object]:
        """End a lease: ``complete`` / ``drain`` (graceful, uncharged) /
        ``failed`` (charged toward poison-shard quarantine). Idempotent:
        a duplicated release finds the lease already cleared and changes
        nothing."""
        with self._lock:
            self._expire_leases()
            if not 0 <= shard_index < len(self.shards):
                raise FabricError(f"unknown shard {shard_index}")
            shard = self.shards[shard_index]
            if shard.lease_matches(worker, token):
                shard.clear_lease()
                if shard.state != DONE:
                    if outcome == "failed":
                        self._charge_failure(shard, worker, reason)
                    elif shard.state == LEASED:
                        shard.state = PENDING  # drain/complete-but-short
            self._refresh_shard_completion()
            return {"ok": True, "state": shard.state}

    # -- upload + merge --------------------------------------------------------

    def upload(
        self,
        worker: str,
        shard_index: int,
        token: Optional[str],
        data: bytes,
        crc: int,
    ) -> Dict[str, object]:
        """Receive one (possibly partial) shard checkpoint and merge it.

        The transfer is CRC-verified on receipt and idempotent, so a worker
        simply re-POSTs the same bytes after any network failure — that is
        the whole resumability story, and it composes with lease loss:
        uploads are accepted *regardless* of lease validity, because a
        completed record is valid evidence whoever's lease it rode in on
        (the merge dedups overlap deterministically).
        """
        import zlib

        with self._lock:
            if self.spec is None:
                raise FabricError("no campaign submitted")
            if zlib.crc32(data) & 0xFFFFFFFF != crc:
                return {
                    "ok": False,
                    "reason": "transfer CRC mismatch; retry the upload",
                }
            self._workers_seen[worker] = self.clock()
            # The staging name is coordinator-chosen: worker ids arrive
            # over the network and must never reach the filesystem layer.
            staging = os.path.join(
                self.state_dir, f"upload-{uuid.uuid4().hex}.jsonl"
            )
            atomic_write_text(
                staging, data.decode("utf-8", errors="surrogateescape")
            )
            try:
                report, done, failures = fold_checkpoint(staging)
                if report.manifest is None:
                    return {"ok": False, "reason": "no readable manifest"}
                if report.interior_issues:
                    issues = "; ".join(
                        f"line {i.lineno}: {i.reason}"
                        for i in report.interior_issues
                    )
                    return {
                        "ok": False,
                        "reason": f"interior corruption ({issues})",
                    }
                identity = manifest_identity(report.manifest)
                expected = self.spec.expected_manifest_identity()
                if identity != expected:
                    return {
                        "ok": False,
                        "reason": (
                            f"manifest identity {identity} does not match "
                            f"this campaign ({expected}); shard refused"
                        ),
                    }
            finally:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
            merged_new = self._merge_records(report.manifest, done, failures)
            self._refresh_shard_completion()
            self._write_artifact()
            self._emit_progress(shard_index)
            return {
                "ok": True,
                "new_records": merged_new,
                "done_tasks": len(self._done),
                "campaign_done": self.campaign_done(),
            }

    def _merge_records(
        self,
        manifest: Dict[str, object],
        done: Dict[object, Dict[str, object]],
        failures: Dict[object, Dict[str, object]],
    ) -> int:
        """Fold one shard's records into the canonical store.

        Deterministic regardless of upload arrival order: a result always
        outranks any failure record for its key, and duplicate records of
        one role resolve content-deterministically
        (:func:`~repro.exec.durability.canonical_winner`) — safe because
        result records for a key are classification-identical by
        construction (only wall-clock metadata can differ, and exports
        never carry it), and it makes the merged artifact byte-identical
        whatever order the fleet's uploads landed in.
        """
        if self._manifest is None:
            self._manifest = dict(manifest)
        # Each shard's manifest summarizes only the goldens it ran; the
        # canonical artifact needs the union (exports reproduce golden
        # summaries per benchmark). Goldens are outside manifest identity,
        # so this never changes which campaign the artifact claims to be.
        goldens = dict(self._manifest.get("goldens") or {})
        goldens.update(manifest.get("goldens") or {})
        # Canonical benchmark order, matching a single-host campaign's
        # manifest (and hence its JSON export) byte for byte.
        self._manifest["goldens"] = {
            name: goldens[name]
            for name in self.spec.benchmarks
            if name in goldens
        }
        new = 0
        for key, record in done.items():
            if key not in self._key_index:
                continue  # foreign key: identity matched, so never happens
            if key not in self._done:
                self._done[key] = record
                new += 1
                self._executed_since_start += 1
            else:
                self._done[key] = canonical_winner(self._done[key], record)
            self._failures.pop(key, None)
        for key, record in failures.items():
            if key not in self._key_index or key in self._done:
                continue
            if key not in self._failures:
                self._failures[key] = record
                new += 1
            else:
                self._failures[key] = canonical_winner(
                    self._failures[key], record
                )
        return new

    def _handled_keys(self) -> Set[str]:
        return set(self._done) | set(self._failures)

    def _refresh_shard_completion(self) -> None:
        handled = self._handled_keys()
        for shard in self.shards:
            if shard.state == QUARANTINED:
                continue
            if all(key in handled for key in shard.keys):
                shard.state = DONE
                shard.clear_lease()

    def _write_artifact(self) -> None:
        if self._manifest is None:
            return
        records = list(self._done.values()) + list(self._failures.values())
        write_sealed_checkpoint(self.artifact_path, self._manifest, records)

    def _emit_progress(self, shard_index: int) -> None:
        if not self.observers or self.spec is None:
            return
        total = len(self._key_index)
        per_benchmark: Dict[str, List[int]] = {
            name: [0, 0] for name in self.spec.benchmarks
        }
        for key, bench in self._key_benchmark.items():
            per_benchmark[bench][1] += 1
            if key in self._done or key in self._failures:
                per_benchmark[bench][0] += 1
        elapsed = max(self.clock() - self._started, 1e-9)
        executed = self._executed_since_start
        throughput = executed / elapsed if executed else 0.0
        done = len(self._done) + len(self._failures)
        event = ProgressEvent(
            done=done,
            total=total,
            skipped=done - executed,
            elapsed_s=elapsed,
            throughput=throughput,
            eta_s=(total - done) / throughput if throughput > 0 else None,
            benchmark=None,
            per_benchmark={
                name: (d, t) for name, (d, t) in per_benchmark.items()
            },
            failed=len(self._failures),
        )
        for observer in self.observers:
            observer(event)

    # -- status / fetch --------------------------------------------------------

    def campaign_done(self) -> bool:
        return bool(self.shards) and all(
            shard.state in (DONE, QUARANTINED) for shard in self.shards
        )

    def _autoscale_hints(self, now: float) -> Dict[str, object]:
        """Worker-fleet sizing advice, computable from coordinator state.

        A worker executes one shard at a time, so the shards that need a
        worker *right now* are the pending plus the leased ones; workers
        count as active while they've been seen within two lease TTLs
        (one missed heartbeat cycle of slack before they're written off).
        The suggested delta is simply runnable-shards minus active
        workers: positive means adding that many workers would all find
        work immediately, negative means that many are idle-polling (or,
        once the campaign is done, every remaining worker can go).
        """
        by_state: Dict[str, int] = {}
        for shard in self.shards:
            by_state[shard.state] = by_state.get(shard.state, 0) + 1
        horizon = 2.0 * self.policy.lease_ttl_s
        active = sum(
            1 for seen in self._workers_seen.values()
            if now - seen <= horizon
        )
        runnable = by_state.get(PENDING, 0) + by_state.get(LEASED, 0)
        return {
            "pending_shards": by_state.get(PENDING, 0),
            "leased_shards": by_state.get(LEASED, 0),
            "quarantined_shards": by_state.get(QUARANTINED, 0),
            "done_shards": by_state.get(DONE, 0),
            "active_workers": active,
            "suggested_worker_delta": runnable - active,
        }

    def status(self) -> Dict[str, object]:
        with self._lock:
            if self.spec is None:
                return {"state": "idle", "campaign": None}
            self._expire_leases()
            self._refresh_shard_completion()
            now = self.clock()
            by_state: Dict[str, int] = {}
            for shard in self.shards:
                by_state[shard.state] = by_state.get(shard.state, 0) + 1
            return {
                "state": "done" if self.campaign_done() else "running",
                "campaign": self.spec.to_dict(),
                "identity": self.spec.expected_manifest_identity(),
                "total_tasks": len(self._key_index),
                "done_tasks": len(self._done),
                "quarantined_tasks": len(self._failures),
                "shards": {
                    "total": len(self.shards),
                    **{s: by_state.get(s, 0)
                       for s in (PENDING, LEASED, DONE, QUARANTINED)},
                },
                "quarantined_shards": [
                    {"shard": s.index,
                     "failed_on": sorted(s.failed_workers),
                     "last_failure": s.last_failure}
                    for s in self.shards if s.state == QUARANTINED
                ],
                # Shards that have been charged but not yet quarantined:
                # the place to look when a campaign is bouncing.
                "failing_shards": [
                    {"shard": s.index,
                     "failed_on": sorted(s.failed_workers),
                     "last_failure": s.last_failure,
                     "retry_in_s": round(max(0.0, s.not_before - now), 3)}
                    for s in self.shards
                    if s.failed_workers and s.state in (PENDING, LEASED)
                ],
                "workers": {
                    worker: {"last_seen_s": round(now - seen, 3)}
                    for worker, seen in sorted(self._workers_seen.items())
                },
                "hints": self._autoscale_hints(now),
                "artifact": (
                    self.artifact_path
                    if os.path.exists(self.artifact_path)
                    else None
                ),
            }

    def fetch_bytes(self) -> bytes:
        with self._lock:
            if not os.path.exists(self.artifact_path):
                raise FabricError(
                    "nothing merged yet: no shard has been uploaded"
                )
            with open(self.artifact_path, "rb") as handle:
                return handle.read()
