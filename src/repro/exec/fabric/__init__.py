"""The distributed campaign fabric: leased shards, heartbeats, merge-as-you-go.

The paper's Section V evaluation is a 30,000-injection campaign — paper
scale that one host grinds through serially. Every durability primitive a
fleet needs already exists one layer down (CRC-sealed shard checkpoints,
merge by manifest identity, single-writer locks, task-level quarantine,
graceful drain); this package composes them into a coordinator/worker pair
designed so every failure mode is *survived*, not avoided — including the
network's:

* :mod:`~repro.exec.fabric.spec` — :class:`CampaignSpec`, the fabric's
  single source of truth for what a campaign *is*.
* :mod:`~repro.exec.fabric.coordinator` — :class:`FabricCoordinator`:
  shard planning, time-bounded leases with heartbeat renewal, poison-shard
  quarantine, and continuous CRC-verified merge into one canonical
  artifact that stays bit-identical to a ``--jobs 1`` run.
* :mod:`~repro.exec.fabric.transport` — the :class:`FabricTransport`
  protocol, its error taxonomy (:class:`TransportError` = transient and
  retryable; :class:`FabricRejected` = definitive, surfaces immediately),
  :class:`RetryingTransport` (per-call deadlines over jittered backoff),
  the authenticated :class:`HttpTransport` client and the hardened
  :func:`make_http_server` server.
* :mod:`~repro.exec.fabric.auth` — HMAC-SHA256 request signing with
  nonce/timestamp replay protection.
* :mod:`~repro.exec.fabric.faults` — :class:`FaultyTransport`, the
  seeded schedule-driven network fault injector the chaos suite drives.
* :mod:`~repro.exec.fabric.worker` — :class:`FabricWorker`: lease,
  execute, upload; graceful SIGTERM drain; and a circuit breaker that
  seals partial work to disk and exits 75 when the coordinator is
  unreachable past budget.
* :mod:`~repro.exec.fabric.cli` — ``repro serve / submit / status /
  fetch / work``.

Determinism is inherited, not re-proved: every task carries its own
derived seed, so the merged fleet artifact is classification-identical to
the same campaign at ``--jobs 1`` no matter which workers — or which
packets — died along the way.
"""

from repro.exec.fabric.auth import (
    AUTH_WINDOW_S,
    ENV_SECRET,
    NONCE_HEADER,
    RequestVerifier,
    SIGNATURE_HEADER,
    TIMESTAMP_HEADER,
    canonical_message,
    load_secret,
    sign_request,
)
from repro.exec.fabric.cli import (
    fetch_main,
    serve_main,
    status_main,
    submit_main,
    work_main,
)
from repro.exec.fabric.coordinator import (
    DONE,
    FabricCoordinator,
    FabricError,
    FabricPolicy,
    LEASED,
    PENDING,
    QUARANTINED,
    Shard,
)
from repro.exec.fabric.faults import (
    ENDPOINTS,
    FAULT_KINDS,
    FaultRule,
    FaultSchedule,
    FaultyTransport,
)
from repro.exec.fabric.spec import CampaignSpec
from repro.exec.fabric.transport import (
    FabricCallError,
    FabricRejected,
    FabricTransport,
    HttpTransport,
    LocalTransport,
    MAX_BODY_BYTES,
    RetryPolicy,
    RetryingTransport,
    TransportError,
    make_http_server,
)
from repro.exec.fabric.worker import FabricWorker

__all__ = [
    "AUTH_WINDOW_S",
    "CampaignSpec",
    "DONE",
    "ENDPOINTS",
    "ENV_SECRET",
    "FAULT_KINDS",
    "FabricCallError",
    "FabricCoordinator",
    "FabricError",
    "FabricPolicy",
    "FabricRejected",
    "FabricTransport",
    "FabricWorker",
    "FaultRule",
    "FaultSchedule",
    "FaultyTransport",
    "HttpTransport",
    "LEASED",
    "LocalTransport",
    "MAX_BODY_BYTES",
    "NONCE_HEADER",
    "PENDING",
    "QUARANTINED",
    "RequestVerifier",
    "RetryPolicy",
    "RetryingTransport",
    "SIGNATURE_HEADER",
    "Shard",
    "TIMESTAMP_HEADER",
    "TransportError",
    "canonical_message",
    "fetch_main",
    "load_secret",
    "make_http_server",
    "serve_main",
    "sign_request",
    "status_main",
    "submit_main",
    "work_main",
]
