"""Fabric transports: the RPC protocol, its error taxonomy, and retries.

Everything in the fabric speaks :class:`FabricTransport`. Three
implementations compose:

* :class:`LocalTransport` — direct in-process calls (tests, chaos,
  single-host embedding).
* :class:`HttpTransport` / :func:`make_http_server` — the stdlib-HTTP
  pair the CLIs use, optionally authenticated (HMAC request signing, see
  :mod:`repro.exec.fabric.auth`).
* :class:`RetryingTransport` — a policy wrapper that retries *transient*
  failures under capped jittered backoff with a per-call deadline.

The error taxonomy is the load-bearing part. :class:`TransportError`
(the network failed, the coordinator is down, the response was garbled —
*retry may help*) and :class:`FabricRejected` (the coordinator answered
and said no — *retry cannot help*) are siblings under
:class:`FabricCallError`, deliberately not subclasses of each other:
retry loops catch ``TransportError`` and can never accidentally burn a
backoff ladder on a definitive rejection, while callers that just want
"the call failed" catch the base class. Retrying is safe end-to-end
because every endpoint is idempotent: lease requests return the worker's
existing lease, heartbeats and releases converge, and uploads dedup by
content.
"""

from __future__ import annotations

import base64
import binascii
import json
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.exec.fabric.auth import (
    NONCE_HEADER,
    RequestVerifier,
    SIGNATURE_HEADER,
    TIMESTAMP_HEADER,
    sign_request,
)
from repro.exec.fabric.coordinator import FabricError
from repro.exec.resilience import backoff_with_jitter

try:  # pragma: no cover - 3.8+ always has Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

#: Largest request body the HTTP server will read (shard uploads are a
#: few hundred KB even for generous shard sizes; anything near this is
#: hostile or broken, and answering 413 beats buffering it).
MAX_BODY_BYTES = 64 * 1024 * 1024


class FabricCallError(RuntimeError):
    """Base for 'a fabric call did not succeed', whatever the reason.

    Catch this when the distinction doesn't matter (CLI error paths);
    catch the subclasses when it does (retry loops)."""


class TransportError(FabricCallError):
    """A transient transport failure — connection refused, timeout,
    coordinator down, truncated or garbled response. Retrying may help;
    every fabric endpoint is idempotent, so retrying is also *safe*."""


class FabricRejected(FabricCallError):
    """The coordinator processed the request and definitively rejected it
    (HTTP 4xx: bad request, unauthorized, unknown endpoint, conflicting
    campaign). Retrying the same request cannot succeed; surface it.

    Attributes:
        code: The HTTP status code, when the rejection came over HTTP.
    """

    def __init__(self, message: str, code: int = 0) -> None:
        super().__init__(message)
        self.code = code


class FabricTransport(Protocol):
    """What a worker (and the submit/status/fetch CLIs) need from the
    coordinator, wherever it lives."""

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        ...  # pragma: no cover

    def request(self, worker: str) -> Dict[str, object]:
        ...  # pragma: no cover

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        ...  # pragma: no cover

    def upload(
        self, worker: str, shard: int, token: Optional[str],
        data: bytes, crc: int,
    ) -> Dict[str, object]:
        ...  # pragma: no cover

    def release(
        self, worker: str, shard: int, token: Optional[str],
        outcome: str, reason: str = "",
    ) -> Dict[str, object]:
        ...  # pragma: no cover

    def status(self) -> Dict[str, object]:
        ...  # pragma: no cover

    def fetch(self) -> bytes:
        ...  # pragma: no cover


class LocalTransport:
    """Same-process transport: direct calls into a coordinator (tests,
    chaos scenarios, single-host embedding)."""

    def __init__(self, coordinator) -> None:
        self.coordinator = coordinator

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        return self.coordinator.submit(spec)

    def request(self, worker: str) -> Dict[str, object]:
        return self.coordinator.request(worker)

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        return self.coordinator.heartbeat(worker, shard, token)

    def upload(self, worker, shard, token, data, crc):
        return self.coordinator.upload(worker, shard, token, data, crc)

    def release(self, worker, shard, token, outcome, reason=""):
        return self.coordinator.release(worker, shard, token, outcome, reason)

    def status(self) -> Dict[str, object]:
        return self.coordinator.status()

    def fetch(self) -> bytes:
        return self.coordinator.fetch_bytes()


# -- retry policy --------------------------------------------------------------


@dataclass
class RetryPolicy:
    """How :class:`RetryingTransport` retries transient failures.

    Attributes:
        deadline_s: Wall-clock budget per *call* (not per attempt): once
            exceeded, the last :class:`TransportError` is re-raised to the
            caller. The caller's own loop (the worker's request loop, its
            circuit breaker) decides what an exhausted call means.
        base_s / max_s / jitter: The :func:`backoff_with_jitter` schedule
            between attempts. Sleeps are clipped so a retry never overruns
            the deadline just to wait.
        clock / sleep: Injectable for tests (fake time, no real sleeping).
    """

    deadline_s: float = 60.0
    base_s: float = 0.2
    max_s: float = 5.0
    jitter: float = 0.5
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")


class RetryingTransport:
    """Retries transient :class:`TransportError` under a per-call deadline.

    :class:`FabricRejected` passes straight through — a definitive
    rejection must surface immediately, never burn the backoff ladder.
    Safe to wrap any :class:`FabricTransport` because the protocol is
    idempotent end-to-end (see module docstring).
    """

    def __init__(
        self, inner: FabricTransport, policy: Optional[RetryPolicy] = None
    ) -> None:
        self.inner = inner
        self.policy = policy if policy is not None else RetryPolicy()

    def _retry(self, fn):
        policy = self.policy
        start = policy.clock()
        attempt = 0
        while True:
            try:
                return fn()
            except TransportError:
                attempt += 1
                elapsed = policy.clock() - start
                if elapsed >= policy.deadline_s:
                    raise
                delay = backoff_with_jitter(
                    attempt, policy.base_s, policy.max_s, jitter=policy.jitter
                )
                # Never sleep past the deadline just to time out then.
                policy.sleep(
                    min(delay, max(0.0, policy.deadline_s - elapsed))
                )

    def submit(self, spec):
        return self._retry(lambda: self.inner.submit(spec))

    def request(self, worker):
        return self._retry(lambda: self.inner.request(worker))

    def heartbeat(self, worker, shard, token):
        return self._retry(lambda: self.inner.heartbeat(worker, shard, token))

    def upload(self, worker, shard, token, data, crc):
        return self._retry(
            lambda: self.inner.upload(worker, shard, token, data, crc)
        )

    def release(self, worker, shard, token, outcome, reason=""):
        return self._retry(
            lambda: self.inner.release(worker, shard, token, outcome, reason)
        )

    def status(self):
        return self._retry(lambda: self.inner.status())

    def fetch(self):
        return self._retry(lambda: self.inner.fetch())


# -- HTTP client ---------------------------------------------------------------


class HttpTransport:
    """The urllib client half of the dirt-simple HTTP queue.

    With ``secret`` set, every request is HMAC-signed (method, path,
    timestamp, fresh nonce, body digest — see
    :mod:`repro.exec.fabric.auth`); without one, requests go out bare and
    a secured coordinator will answer 401. Responses that fail to parse
    as JSON — truncated, garbled, or from something that isn't a fabric
    coordinator — raise :class:`TransportError` (the response is
    unusable, but the request may well have been applied; idempotency
    makes the retry safe). HTTP 4xx raises :class:`FabricRejected`,
    anything else transport-shaped raises :class:`TransportError`.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 30.0,
        secret: Optional[bytes] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.secret = secret

    def _call(
        self, path: str, payload: Optional[Dict[str, object]] = None
    ) -> bytes:
        import urllib.error
        import urllib.request

        url = self.base_url + path
        method = "GET" if payload is None else "POST"
        body = b""
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if self.secret is not None:
            timestamp = f"{time.time():.3f}"
            nonce = uuid.uuid4().hex
            headers[TIMESTAMP_HEADER] = timestamp
            headers[NONCE_HEADER] = nonce
            headers[SIGNATURE_HEADER] = sign_request(
                self.secret, method, path, timestamp, nonce, body
            )
        request = urllib.request.Request(
            url, data=body if payload is not None else None, headers=headers
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout_s
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            detail_body = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail_body).get("error", detail_body)
            except (json.JSONDecodeError, AttributeError):
                detail = detail_body
            message = f"{url}: HTTP {exc.code}: {detail}"
            if 400 <= exc.code < 500:
                # The coordinator answered and said no. Retrying the same
                # request cannot change its mind — surface it now.
                raise FabricRejected(message, code=exc.code) from exc
            raise TransportError(message) from exc
        except (urllib.error.URLError, OSError, socket.timeout) as exc:
            raise TransportError(f"{url}: {exc}") from exc

    def _json(self, path, payload=None) -> Dict[str, object]:
        raw = self._call(path, payload)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            # Truncated or garbled response: the server may have applied
            # the request, but we cannot know — idempotency makes the
            # retry safe either way.
            raise TransportError(
                f"{self.base_url}{path}: unparseable response "
                f"({len(raw)} bytes): {exc}"
            ) from exc

    def submit(self, spec: Dict[str, object]) -> Dict[str, object]:
        return self._json("/api/submit", {"spec": spec})

    def request(self, worker: str) -> Dict[str, object]:
        return self._json("/api/request", {"worker": worker})

    def heartbeat(self, worker: str, shard: int, token: str) -> bool:
        return bool(
            self._json(
                "/api/heartbeat",
                {"worker": worker, "shard": shard, "token": token},
            ).get("ok")
        )

    def upload(self, worker, shard, token, data, crc):
        return self._json(
            "/api/upload",
            {
                "worker": worker,
                "shard": shard,
                "token": token,
                "crc": crc,
                "data": base64.b64encode(data).decode("ascii"),
            },
        )

    def release(self, worker, shard, token, outcome, reason=""):
        return self._json(
            "/api/release",
            {
                "worker": worker,
                "shard": shard,
                "token": token,
                "outcome": outcome,
                "reason": reason,
            },
        )

    def status(self) -> Dict[str, object]:
        return self._json("/api/status")

    def fetch(self) -> bytes:
        return self._call("/api/fetch")


# -- HTTP server ---------------------------------------------------------------


def make_http_server(
    coordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    secret: Optional[bytes] = None,
    max_body_bytes: int = MAX_BODY_BYTES,
):
    """A ThreadingHTTPServer speaking the fabric's JSON protocol.

    Returns the server; ``server.server_address`` carries the bound port
    (useful with ``port=0``). The caller runs ``serve_forever`` (or a
    thread around it) and ``shutdown``s it.

    Hardened against garbage from the open network: request bodies are
    bounded (oversized → 413 without reading the body), malformed JSON
    or base64 answers 400 with a one-line error, and no input can raise
    a traceback into the response or wedge a handler thread (a 30s
    socket timeout bounds slow-loris clients). With ``secret`` set,
    every request must carry a valid signature
    (:class:`~repro.exec.fabric.auth.RequestVerifier`); failures answer
    a bare 401 ``unauthorized`` with no hint of which check failed.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    verifier = RequestVerifier(secret) if secret is not None else None

    class Handler(BaseHTTPRequestHandler):
        # Bound every socket read/write so a stalled client can never
        # wedge a handler thread.
        timeout = 30.0

        def log_message(self, fmt, *args):  # quiet: status polls are chatty
            pass

        def _reply(self, code: int, payload: Dict[str, object]) -> None:
            body = json.dumps(payload).encode("utf-8")
            try:
                self.send_response(code)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            except OSError:
                pass  # client went away mid-reply; nothing to salvage

        def _authorized(self, body: bytes) -> bool:
            if verifier is None:
                return True
            if verifier.verify(self.command, self.path, self.headers, body):
                return True
            self._reply(401, {"error": "unauthorized"})
            return False

        def _read_body(self) -> Optional[bytes]:
            """The request body, or None after an error reply."""
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._reply(400, {"error": "invalid Content-Length"})
                return None
            if length < 0:
                self._reply(400, {"error": "invalid Content-Length"})
                return None
            if length > max_body_bytes:
                # Refuse before reading: answering is cheap, buffering
                # an attacker-chosen number of bytes is not.
                self._reply(
                    413,
                    {"error": f"request body exceeds {max_body_bytes} bytes"},
                )
                self.close_connection = True
                return None
            try:
                return self.rfile.read(length)
            except (OSError, socket.timeout):
                self.close_connection = True
                return None

        def do_GET(self):
            try:
                if not self._authorized(b""):
                    return
                if self.path == "/api/status":
                    self._reply(200, coordinator.status())
                elif self.path == "/api/fetch":
                    data = coordinator.fetch_bytes()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type", "application/octet-stream"
                    )
                    self.send_header("Content-Length", str(len(data)))
                    self.end_headers()
                    self.wfile.write(data)
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except FabricError as exc:
                self._reply(409, {"error": str(exc)})
            except OSError:
                self.close_connection = True
            except Exception as exc:  # never kill the server thread
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

        def do_POST(self):
            try:
                raw = self._read_body()
                if raw is None:
                    return
                if not self._authorized(raw):
                    return
                try:
                    body = json.loads(raw or b"{}")
                except json.JSONDecodeError as exc:
                    self._reply(
                        400, {"error": f"malformed JSON body: {exc}"}
                    )
                    return
                if not isinstance(body, dict):
                    self._reply(
                        400, {"error": "request body must be a JSON object"}
                    )
                    return
                if self.path == "/api/submit":
                    self._reply(200, coordinator.submit(body["spec"]))
                elif self.path == "/api/request":
                    self._reply(200, coordinator.request(body["worker"]))
                elif self.path == "/api/heartbeat":
                    ok = coordinator.heartbeat(
                        body["worker"], body["shard"], body["token"]
                    )
                    self._reply(200, {"ok": ok})
                elif self.path == "/api/upload":
                    try:
                        data = base64.b64decode(
                            body["data"], validate=True
                        )
                    except (binascii.Error, TypeError) as exc:
                        self._reply(
                            400, {"error": f"malformed base64 data: {exc}"}
                        )
                        return
                    self._reply(
                        200,
                        coordinator.upload(
                            body["worker"],
                            body["shard"],
                            body.get("token"),
                            data,
                            body["crc"],
                        ),
                    )
                elif self.path == "/api/release":
                    self._reply(
                        200,
                        coordinator.release(
                            body["worker"],
                            body["shard"],
                            body.get("token"),
                            body.get("outcome", "failed"),
                            body.get("reason", ""),
                        ),
                    )
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except FabricError as exc:
                self._reply(409, {"error": str(exc)})
            except (KeyError, TypeError, ValueError) as exc:
                # A missing field or wrong type is the *client's* fault:
                # one line, 400, no traceback.
                self._reply(400, {"error": f"{type(exc).__name__}: {exc}"})
            except OSError:
                self.close_connection = True
            except Exception as exc:
                self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    return ThreadingHTTPServer((host, port), Handler)
