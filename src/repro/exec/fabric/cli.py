"""CLI entry points for the fabric: serve / submit / status / fetch / work.

All five speak the authenticated protocol the same way: ``--secret-file``
(or the ``REPRO_FABRIC_SECRET`` environment variable) supplies the shared
HMAC secret; neither path ever puts the secret itself in ``argv``, and
nothing here prints, logs or serializes it.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import List, Optional

from repro.exec.durability import (
    CheckpointError,
    GracefulShutdown,
    SHUTDOWN_EXIT_CODE,
    atomic_write_text,
)
from repro.exec.fabric.auth import ENV_SECRET, load_secret
from repro.exec.fabric.coordinator import (
    DONE,
    FabricCoordinator,
    FabricPolicy,
)
from repro.exec.fabric.spec import CampaignSpec
from repro.exec.fabric.transport import (
    FabricCallError,
    HttpTransport,
    RetryPolicy,
    RetryingTransport,
    make_http_server,
)
from repro.exec.fabric.worker import FabricWorker


def _add_coordinator_arg(parser) -> None:
    parser.add_argument(
        "--coordinator",
        required=True,
        metavar="URL",
        help="coordinator base URL, e.g. http://127.0.0.1:8757",
    )


def _add_secret_arg(parser) -> None:
    parser.add_argument(
        "--secret-file",
        default=None,
        metavar="PATH",
        help="file holding the shared HMAC secret for authenticated RPC "
        f"[${ENV_SECRET} if set, else unauthenticated]",
    )


def _resolve_secret(args) -> Optional[bytes]:
    """Load the secret or exit-2 via SystemExit on a bad secret file."""
    try:
        return load_secret(args.secret_file)
    except (OSError, ValueError) as exc:
        print(f"cannot load secret: {exc}", file=sys.stderr)
        raise SystemExit(2)


def serve_main(argv: Optional[List[str]] = None) -> int:
    """``repro serve`` — run the campaign coordinator."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve the distributed campaign coordinator.",
    )
    parser.add_argument(
        "--state-dir",
        required=True,
        metavar="DIR",
        help="where the spec and the continuously-merged artifact live; "
        "restart on the same directory to resume a killed coordinator",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="0 picks a free port (written to DIR/coordinator.json) [0]",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=60.0, metavar="S",
        help="seconds a shard lease survives without a heartbeat [60]",
    )
    parser.add_argument(
        "--quarantine-after", type=int, default=3, metavar="N",
        help="distinct failing workers before a shard is poison [3]",
    )
    _add_secret_arg(parser)
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="print aggregate progress per merged shard "
        "[auto: on when stderr is a TTY]",
    )
    args = parser.parse_args(argv)
    from repro.exec.progress import ProgressPrinter

    secret = _resolve_secret(args)
    show = args.progress if args.progress is not None else sys.stderr.isatty()
    try:
        coordinator = FabricCoordinator(
            args.state_dir,
            policy=FabricPolicy(
                lease_ttl_s=args.lease_ttl,
                quarantine_after=args.quarantine_after,
            ),
            observers=[ProgressPrinter()] if show else [],
        )
    except (CheckpointError, ValueError) as exc:
        print(f"cannot start coordinator: {exc}", file=sys.stderr)
        return 2
    server = make_http_server(
        coordinator, args.host, args.port, secret=secret
    )
    host, port = server.server_address[:2]
    url = f"http://{host}:{port}"
    atomic_write_text(
        os.path.join(args.state_dir, "coordinator.json"),
        json.dumps({"url": url}, sort_keys=True) + "\n",
    )
    resumed = ""
    if coordinator.spec is not None:
        done = sum(1 for s in coordinator.shards if s.state == DONE)
        resumed = (
            f" (resumed campaign: {done}/{len(coordinator.shards)} "
            "shards already merged)"
        )
    guard = " [authenticated]" if secret is not None else ""
    print(f"fabric coordinator serving on {url}{guard}{resumed}", flush=True)
    with GracefulShutdown() as shutdown:
        # serve_forever polls, so a latched signal is noticed promptly.
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            while thread.is_alive() and not shutdown.requested:
                time.sleep(0.2)
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
    print("coordinator stopped; state preserved in "
          f"{args.state_dir} (restart to resume)", file=sys.stderr)
    return 0


def submit_main(argv: Optional[List[str]] = None) -> int:
    """``repro submit`` — post a campaign spec to a coordinator."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a campaign to a fabric coordinator.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument("--runs", type=int, required=True, metavar="N",
                        help="injections per (benchmark, bug model) pair")
    parser.add_argument("--benchmarks", default="all",
                        help="comma-separated benchmark names, or 'all'")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--max-attempts", type=int, default=6)
    parser.add_argument(
        "--shard-size", type=int, default=25, metavar="N",
        help="tasks per leased shard [25]",
    )
    _add_secret_arg(parser)
    args = parser.parse_args(argv)
    from repro.workloads import WORKLOADS

    secret = _resolve_secret(args)
    names = (
        list(WORKLOADS)
        if args.benchmarks == "all"
        else [n.strip() for n in args.benchmarks.split(",")]
    )
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
        return 2
    try:
        spec = CampaignSpec(
            benchmarks=tuple(names),
            runs_per_model=args.runs,
            seed=args.seed,
            scale=args.scale,
            max_attempts=args.max_attempts,
            shard_size=args.shard_size,
        )
        status = HttpTransport(
            args.coordinator, secret=secret
        ).submit(spec.to_dict())
    except (FabricCallError, ValueError) as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def status_main(argv: Optional[List[str]] = None) -> int:
    """``repro status`` — print a coordinator's aggregate state."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Query a fabric coordinator's campaign status.",
    )
    _add_coordinator_arg(parser)
    _add_secret_arg(parser)
    args = parser.parse_args(argv)
    secret = _resolve_secret(args)
    try:
        status = HttpTransport(args.coordinator, secret=secret).status()
    except FabricCallError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(status, indent=2, sort_keys=True))
    return 0


def fetch_main(argv: Optional[List[str]] = None) -> int:
    """``repro fetch`` — download the merged artifact."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro fetch",
        description="Fetch the coordinator's merged campaign artifact.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument(
        "-o", "--output", required=True, metavar="PATH",
        help="where to write the merged JSONL checkpoint",
    )
    _add_secret_arg(parser)
    args = parser.parse_args(argv)
    secret = _resolve_secret(args)
    try:
        data = HttpTransport(args.coordinator, secret=secret).fetch()
    except FabricCallError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 2
    atomic_write_text(
        args.output, data.decode("utf-8", errors="surrogateescape")
    )
    print(f"wrote {args.output} ({len(data)} bytes)")
    return 0


def work_main(argv: Optional[List[str]] = None) -> int:
    """``repro work`` — run a fabric worker against a coordinator."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro work",
        description="Execute leased campaign shards from a coordinator.",
    )
    _add_coordinator_arg(parser)
    parser.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="where per-lease shard checkpoints (and sealed partials "
        "from offline exits) are staged [cwd]",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes per shard [1]")
    parser.add_argument("--snapshot-interval", type=int, default=250,
                        metavar="K")
    parser.add_argument(
        "--differential", action=argparse.BooleanOptionalAction, default=True
    )
    parser.add_argument("--batch-size", type=int, default=8, metavar="N")
    parser.add_argument(
        "--poll", type=float, default=None, metavar="S",
        help="idle retry period [coordinator's hint]",
    )
    parser.add_argument(
        "--worker-id", default=None,
        help="stable worker identity [hostname-pid]",
    )
    _add_secret_arg(parser)
    parser.add_argument(
        "--call-deadline", type=float, default=60.0, metavar="S",
        help="wall-clock budget per RPC including transient-failure "
        "retries [60]",
    )
    parser.add_argument(
        "--offline-budget", type=float, default=300.0, metavar="S",
        help="total coordinator silence tolerated before the worker "
        "seals partial work to the workdir and exits 75; 0 retries "
        "forever [300]",
    )
    parser.add_argument(
        "--heartbeats",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="--no-heartbeats simulates a network partition (chaos only): "
        "the worker executes and uploads but never renews its lease",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.call_deadline <= 0:
        print(
            f"--call-deadline must be > 0, got {args.call_deadline}",
            file=sys.stderr,
        )
        return 2
    secret = _resolve_secret(args)
    transport = RetryingTransport(
        HttpTransport(args.coordinator, secret=secret),
        RetryPolicy(deadline_s=args.call_deadline),
    )
    worker = FabricWorker(
        transport,
        worker_id=args.worker_id,
        workdir=args.workdir,
        jobs=args.jobs,
        snapshot_interval=args.snapshot_interval,
        differential=args.differential,
        batch_size=args.batch_size,
        heartbeats=args.heartbeats,
        poll_s=args.poll,
        offline_budget_s=args.offline_budget if args.offline_budget > 0
        else None,
    )
    with GracefulShutdown() as shutdown:
        code = worker.run(shutdown)
    if worker.offline:
        sealed = ", ".join(
            os.path.basename(p) for p in worker.sealed_paths
        ) or "none (no partial work was in flight)"
        print(
            f"worker {worker.worker_id}: coordinator unreachable for "
            f"{args.offline_budget:.0f}s; circuit breaker tripped. "
            f"Sealed partial(s): {sealed}. Resume when connectivity "
            "returns with: repro work --coordinator "
            f"{args.coordinator} --workdir {worker.workdir}",
            file=sys.stderr,
        )
        return SHUTDOWN_EXIT_CODE
    if shutdown.requested:
        print(
            f"worker {worker.worker_id}: interrupted by "
            f"{shutdown.signal_name}; drained the current shard, uploaded "
            "the sealed partial and released the lease",
            file=sys.stderr,
        )
        return SHUTDOWN_EXIT_CODE
    if code == 0:
        print(
            f"worker {worker.worker_id}: campaign complete "
            f"({worker.shards_completed} shard(s) finished here)"
        )
    return code
