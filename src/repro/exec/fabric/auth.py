"""Authenticated fabric RPC: HMAC-SHA256 request signing with replay guard.

The fabric's HTTP protocol is designed for fleets that may span hosts and
networks the operator does not fully trust. Authentication is a shared
secret: every request is signed with HMAC-SHA256 over a canonical message
binding the method, path, a per-request nonce, a timestamp and a digest of
the body — so a request cannot be forged, replayed, redirected to another
endpoint, or have its payload swapped without the signature breaking.

Design rules, all load-bearing:

* **The secret never rides in argv.** It is read from ``--secret-file`` or
  the ``REPRO_FABRIC_SECRET`` environment variable (:func:`load_secret`);
  process listings and shell history never see it, and nothing in this
  package logs, stores or serves it.
* **Verification is constant-time** (:func:`hmac.compare_digest`), so a
  byte-by-byte timing oracle cannot recover the signature.
* **Replays are rejected.** Each request carries a fresh random nonce and
  a wall-clock timestamp; the verifier refuses timestamps outside its
  window and nonces it has already seen within the window (the nonce cache
  is pruned by the same window, so it stays bounded). Re-sending captured
  request bytes — the duplicated-packet failure mode as much as the
  malicious one — yields a 401, not a second state change.
* **Rejections carry no detail.** An unauthenticated or bad-signature
  request gets a bare 401 ``unauthorized``: no hint about which check
  failed, nothing to iterate an attack against.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import threading
import time
from typing import Callable, Mapping, Optional

#: Headers carrying the three signature components.
SIGNATURE_HEADER = "X-Repro-Signature"
NONCE_HEADER = "X-Repro-Nonce"
TIMESTAMP_HEADER = "X-Repro-Timestamp"

#: Environment variable consulted when no ``--secret-file`` is given.
ENV_SECRET = "REPRO_FABRIC_SECRET"

#: Default freshness window (seconds) for timestamps and the nonce cache.
AUTH_WINDOW_S = 120.0


def load_secret(secret_file: Optional[str] = None) -> Optional[bytes]:
    """Resolve the shared secret: ``secret_file`` first, then the
    ``REPRO_FABRIC_SECRET`` environment variable, else None (auth off).

    The file's content is stripped of surrounding whitespace so a trailing
    newline from ``echo`` doesn't silently split a fleet into two keys.
    """
    if secret_file:
        with open(secret_file, "rb") as handle:
            secret = handle.read().strip()
        if not secret:
            raise ValueError(f"{secret_file}: secret file is empty")
        return secret
    env = os.environ.get(ENV_SECRET)
    if env:
        return env.encode("utf-8")
    return None


def canonical_message(
    method: str, path: str, timestamp: str, nonce: str, body: bytes
) -> bytes:
    """The exact bytes both sides MAC: method, path, timestamp, nonce and
    a SHA-256 digest of the body, newline-joined. Hashing the body (rather
    than splicing it in) keeps the message fixed-size and injection-proof:
    no body byte sequence can masquerade as another field."""
    return "\n".join(
        (method, path, timestamp, nonce, hashlib.sha256(body).hexdigest())
    ).encode("utf-8")


def sign_request(
    secret: bytes,
    method: str,
    path: str,
    timestamp: str,
    nonce: str,
    body: bytes,
) -> str:
    """HMAC-SHA256 signature (hex) over the canonical request message."""
    return hmac.new(
        secret, canonical_message(method, path, timestamp, nonce, body),
        hashlib.sha256,
    ).hexdigest()


class RequestVerifier:
    """Server-side verification: signature, freshness window, nonce cache.

    Thread-safe (HTTP handler threads share one verifier). ``clock`` is
    injectable for tests; production uses wall-clock ``time.time`` because
    the timestamp must be comparable across hosts.
    """

    def __init__(
        self,
        secret: bytes,
        window_s: float = AUTH_WINDOW_S,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if not secret:
            raise ValueError("an empty secret authenticates nothing")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.secret = secret
        self.window_s = window_s
        self.clock = clock
        self._lock = threading.Lock()
        self._seen_nonces: dict = {}  # nonce -> arrival time

    def verify(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> bool:
        """True iff the request is authentically signed, fresh, and not a
        replay. Any failure — missing headers, bad timestamp, wrong MAC,
        stale nonce — returns a bare False; callers answer 401 without
        detail."""
        signature = headers.get(SIGNATURE_HEADER, "")
        nonce = headers.get(NONCE_HEADER, "")
        timestamp = headers.get(TIMESTAMP_HEADER, "")
        if not signature or not nonce or not timestamp:
            return False
        try:
            sent_at = float(timestamp)
        except ValueError:
            return False
        now = self.clock()
        if abs(now - sent_at) > self.window_s:
            return False
        expected = sign_request(
            self.secret, method, path, timestamp, nonce, body
        )
        # Constant-time: no byte-position timing oracle on the signature.
        if not hmac.compare_digest(expected, signature):
            return False
        # Only authentically-signed nonces enter the cache (an attacker
        # must not be able to pre-poison nonces it cannot sign for).
        with self._lock:
            cutoff = now - self.window_s
            self._seen_nonces = {
                n: t for n, t in self._seen_nonces.items() if t >= cutoff
            }
            if nonce in self._seen_nonces:
                return False  # replay: same signed bytes seen again
            self._seen_nonces[nonce] = now
        return True
