"""Pluggable campaign execution backends.

A backend consumes :class:`~repro.exec.tasks.InjectionTask` units and yields
``(task, result)`` pairs as they complete — in task order for the serial
backend, in completion order for the process pool. Because every task
carries its own derived seed, the pair stream is order-independent: the
engine re-sorts by task index, so all backends produce identical campaigns.

``ProcessPoolBackend`` ships the program table and core config to each
worker once (at pool start), and each worker lazily computes and caches the
golden run per benchmark, so a campaign of N injections over B benchmarks
costs at most B golden runs per worker regardless of N.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro.bugs.campaign import InjectionResult, run_golden

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.snapshot import SnapshotProvider
from repro.core.config import CoreConfig
from repro.core.cpu import RunResult
from repro.exec.tasks import InjectionTask, execute_task
from repro.isa.program import Program

#: A pluggable task runner: ``runner(task, context) -> result``. Must be a
#: module-level function so the process pool can ship it to workers by
#: reference. ``None`` selects the built-in injection-task path.
TaskRunner = Callable[[object, "ExecutionContext"], object]

try:  # pragma: no cover - 3.8+ always has Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


@dataclass
class ExecutionContext:
    """Everything a backend needs to run tasks: programs, config, goldens.

    ``runner`` makes the backends task-agnostic: when set (e.g. to
    :func:`repro.fuzz.engine.run_fuzz_task`), every task is dispatched to
    it; when None, tasks follow the classic injection path with per-worker
    golden caching.

    ``snapshot_interval`` > 0 enables warm-start injection: each worker
    lazily builds one :class:`~repro.bugs.snapshot.SnapshotProvider` per
    benchmark (an instrumented golden run capturing machine snapshots every
    that-many cycles) and injections resume from the nearest snapshot
    instead of power-on. The provider's golden doubles as the cached
    reference run, so the provider replaces — not adds to — the per-worker
    golden cost. Results are bit-identical for any interval.
    """

    programs: Dict[str, Program]
    config: Optional[CoreConfig] = None
    runner: Optional[TaskRunner] = None
    snapshot_interval: int = 0
    _goldens: Dict[str, RunResult] = field(default_factory=dict)
    _snapshots: Dict[str, "SnapshotProvider"] = field(default_factory=dict)

    def golden(self, benchmark: str) -> RunResult:
        """The (cached) bug-free reference run for ``benchmark``."""
        if benchmark not in self._goldens:
            if self.snapshot_interval > 0:
                self._goldens[benchmark] = self.snapshots(benchmark).golden
            else:
                self._goldens[benchmark] = run_golden(
                    self.programs[benchmark], self.config
                )
        return self._goldens[benchmark]

    def snapshots(self, benchmark: str) -> Optional["SnapshotProvider"]:
        """The (cached) snapshot provider, or None when warm start is off."""
        if self.snapshot_interval <= 0:
            return None
        if benchmark not in self._snapshots:
            from repro.bugs.snapshot import SnapshotProvider

            self._snapshots[benchmark] = SnapshotProvider(
                self.programs[benchmark],
                self.snapshot_interval,
                config=self.config,
            )
        return self._snapshots[benchmark]

    def execute(self, task: object) -> object:
        """Run one task through ``runner`` or the injection default."""
        if self.runner is not None:
            return self.runner(task, self)
        golden = self.golden(task.benchmark)
        return execute_task(
            task,
            self.programs[task.benchmark],
            golden,
            self.config,
            snapshots=self.snapshots(task.benchmark),
        )


class Backend(Protocol):
    """Executes tasks and yields their results in any order."""

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, InjectionResult]]:
        ...  # pragma: no cover


class SerialBackend:
    """In-process execution, one task at a time, in task order."""

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, InjectionResult]]:
        for task in tasks:
            yield task, context.execute(task)


# -- process-pool worker state ------------------------------------------------
#
# Populated once per worker by the pool initializer; the golden cache fills
# lazily as the worker sees each benchmark for the first time.

_WORKER_CONTEXT: Optional[ExecutionContext] = None


def _worker_init(
    programs: Dict[str, Program],
    config: Optional[CoreConfig],
    runner: Optional[TaskRunner] = None,
    snapshot_interval: int = 0,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExecutionContext(
        programs=programs,
        config=config,
        runner=runner,
        snapshot_interval=snapshot_interval,
    )


def _worker_execute(task: object) -> object:
    assert _WORKER_CONTEXT is not None
    return _WORKER_CONTEXT.execute(task)


class ProcessPoolBackend:
    """Parallel execution on a pool of worker processes.

    Tasks and results are plain picklable dataclasses; results are yielded
    in completion order. ``max_inflight`` bounds how many tasks are queued
    on the pool at once so paper-scale campaigns (tens of thousands of
    tasks) do not hold every pending future in memory.
    """

    def __init__(self, jobs: int, max_inflight: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.max_inflight = max_inflight if max_inflight is not None else jobs * 8

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, InjectionResult]]:
        pending = list(tasks)
        with ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_worker_init,
            initargs=(
                context.programs,
                context.config,
                context.runner,
                context.snapshot_interval,
            ),
        ) as pool:
            inflight = {}
            cursor = 0
            while cursor < len(pending) or inflight:
                while cursor < len(pending) and len(inflight) < self.max_inflight:
                    task = pending[cursor]
                    inflight[pool.submit(_worker_execute, task)] = task
                    cursor += 1
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    task = inflight.pop(future)
                    yield task, future.result()
