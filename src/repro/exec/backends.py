"""Pluggable campaign execution backends.

A backend consumes :class:`~repro.exec.tasks.InjectionTask` units and yields
``(task, result)`` pairs as they complete — in task order for the serial
backend, in completion order for the process pool. Because every task
carries its own derived seed, the pair stream is order-independent: the
engine re-sorts by task index, so all backends produce identical campaigns.

``ProcessPoolBackend`` ships the program table and core config to each
worker once (at pool start), and each worker lazily computes and caches the
golden run per benchmark, so a campaign of N injections over B benchmarks
costs at most B golden runs per worker regardless of N.

Fault tolerance: constructed with a :class:`~repro.exec.resilience.FaultPolicy`,
both backends survive misbehaving tasks instead of aborting the campaign.
A task that raises, exceeds its wall-clock budget, or kills its worker
process is retried (fresh pool slot each attempt) and finally *quarantined*:
yielded as a :class:`~repro.exec.resilience.TaskFailure` in place of a
result. The pool backend additionally recovers from
``BrokenProcessPool``/lost futures by respawning the pool with exponential
backoff, re-running the tasks that were in flight **one at a time** (so the
next crash identifies the poison task exactly), and — after repeated pool
breakage with no progress — degrading to in-process serial execution for
the remaining tasks. Without a policy (``policy=None``) the legacy
fail-fast behavior is preserved: the first error propagates.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
    Union,
)

from repro.bugs.campaign import InjectionResult, run_golden
from repro.exec.durability import GracefulShutdown
from repro.exec.resilience import (
    AttemptTracker,
    FaultPolicy,
    FaultToleranceError,
    TaskFailure,
    crash_failure,
    failure_from_exception,
    timeout_failure,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.snapshot import SnapshotProvider
from repro.core.config import CoreConfig
from repro.core.cpu import RunResult
from repro.exec.tasks import (
    BatchedInjectionTask,
    InjectionTask,
    execute_batch,
    execute_task,
)
from repro.isa.program import Program

#: A pluggable task runner: ``runner(task, context) -> result``. Must be a
#: module-level function so the process pool can ship it to workers by
#: reference. ``None`` selects the built-in injection-task path.
TaskRunner = Callable[[object, "ExecutionContext"], object]

#: What a policy-enabled backend yields per task: the result, or the
#: structured account of why the task was given up on.
TaskOutcome = Union[InjectionResult, TaskFailure]

try:  # pragma: no cover - 3.8+ always has Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


@dataclass
class ExecutionContext:
    """Everything a backend needs to run tasks: programs, config, goldens.

    ``runner`` makes the backends task-agnostic: when set (e.g. to
    :func:`repro.fuzz.engine.run_fuzz_task`), every task is dispatched to
    it; when None, tasks follow the classic injection path with per-worker
    golden caching.

    ``snapshot_interval`` > 0 enables warm-start injection: each worker
    lazily builds one :class:`~repro.bugs.snapshot.SnapshotProvider` per
    benchmark (an instrumented golden run capturing machine snapshots every
    that-many cycles) and injections resume from the nearest snapshot
    instead of power-on. The provider's golden doubles as the cached
    reference run, so the provider replaces — not adds to — the per-worker
    golden cost. Results are bit-identical for any interval.

    ``task_timeout_s`` is the cooperative per-task wall-clock budget: at
    each :meth:`execute` an absolute deadline is computed and threaded into
    the simulator, which checks it every ~1024 cycles and raises
    :class:`~repro.core.errors.DeadlineExceeded` on expiry. Custom runners
    read the current task's deadline from :attr:`deadline`.

    ``shutdown`` (parent-side only, never shipped to workers) is the
    SIGINT/SIGTERM latch: once it is requested the backends stop
    dispatching, drain or abandon inflight work under its deadline and
    return early — the engine then flushes the checkpoint so the run is
    resumable.
    """

    programs: Dict[str, Program]
    config: Optional[CoreConfig] = None
    runner: Optional[TaskRunner] = None
    snapshot_interval: int = 0
    #: Differential suffix execution (requires ``snapshot_interval`` > 0):
    #: providers are built with golden delta traces and injections forecast
    #: their activation, restore just before it, and terminate at
    #: re-convergence (see repro.bugs.differential). Bit-identical results;
    #: purely a throughput knob, so it never joins task/checkpoint identity.
    differential: bool = False
    task_timeout_s: Optional[float] = None
    shutdown: Optional[GracefulShutdown] = None
    _goldens: Dict[str, RunResult] = field(default_factory=dict)
    _snapshots: Dict[str, "SnapshotProvider"] = field(default_factory=dict)
    _deadline: Optional[float] = field(default=None, repr=False)

    @property
    def deadline(self) -> Optional[float]:
        """Absolute ``time.monotonic()`` budget of the task being executed
        (None when timeouts are off or outside :meth:`execute`)."""
        return self._deadline

    def golden(self, benchmark: str) -> RunResult:
        """The (cached) bug-free reference run for ``benchmark``."""
        if benchmark not in self._goldens:
            if self.snapshot_interval > 0:
                self._goldens[benchmark] = self.snapshots(benchmark).golden
            else:
                self._goldens[benchmark] = run_golden(
                    self.programs[benchmark], self.config
                )
        return self._goldens[benchmark]

    def snapshots(self, benchmark: str) -> Optional["SnapshotProvider"]:
        """The (cached) snapshot provider, or None when warm start is off."""
        if self.snapshot_interval <= 0:
            return None
        if benchmark not in self._snapshots:
            from repro.bugs.snapshot import SnapshotProvider

            self._snapshots[benchmark] = SnapshotProvider(
                self.programs[benchmark],
                self.snapshot_interval,
                config=self.config,
                differential=self.differential,
            )
        return self._snapshots[benchmark]

    def execute(self, task: object) -> object:
        """Run one task through ``runner`` or the injection default.

        A :class:`~repro.exec.tasks.BatchedInjectionTask` is one unit of
        dispatch here — its wall-clock budget scales with the member count
        and the outcome is the per-member result list.
        """
        members = len(task.members) if isinstance(task, BatchedInjectionTask) else 1
        self._deadline = (
            time.monotonic() + self.task_timeout_s * members
            if self.task_timeout_s is not None
            else None
        )
        try:
            if self.runner is not None:
                return self.runner(task, self)
            golden = self.golden(task.benchmark)
            if isinstance(task, BatchedInjectionTask):
                return execute_batch(
                    task,
                    self.programs[task.benchmark],
                    golden,
                    self.config,
                    snapshots=self.snapshots(task.benchmark),
                    deadline=self._deadline,
                    differential=self.differential,
                )
            return execute_task(
                task,
                self.programs[task.benchmark],
                golden,
                self.config,
                snapshots=self.snapshots(task.benchmark),
                deadline=self._deadline,
                differential=self.differential,
            )
        finally:
            self._deadline = None


def _shutdown_requested(context: ExecutionContext) -> bool:
    return context.shutdown is not None and context.shutdown.requested


class Backend(Protocol):
    """Executes tasks and yields their results in any order."""

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, TaskOutcome]]:
        ...  # pragma: no cover


def run_task_with_retries(
    task: object,
    context: ExecutionContext,
    policy: FaultPolicy,
    tracker: AttemptTracker,
) -> TaskOutcome:
    """In-process policy enforcement: retry, then quarantine (or raise).

    Shared by :class:`SerialBackend` and the pool backend's degraded mode.
    Honors attempts already charged against the task (e.g. worker-crash
    attempts from before a degradation), so an exhausted task is
    quarantined without being re-run in-process.
    """
    last_failure: Optional[TaskFailure] = None
    while not tracker.exhausted(task.key):
        tracker.record_attempt(task.key)
        try:
            return context.execute(task)
        except Exception as exc:
            last_failure = failure_from_exception(
                exc, tracker.attempts(task.key)
            )
    if last_failure is None:
        # Exhausted before any in-process attempt: every charge came from
        # worker crashes in the (now abandoned) pool phase.
        last_failure = crash_failure(tracker.attempts(task.key))
    if policy.strict:
        raise FaultToleranceError(
            f"task {task.key} failed after "
            f"{last_failure.attempts} attempt(s) "
            f"[{last_failure.kind}]: {last_failure.message}"
        )
    return last_failure


class SerialBackend:
    """In-process execution, one task at a time, in task order.

    With a :class:`FaultPolicy`, task exceptions and cooperative deadline
    expiries are retried then quarantined instead of aborting the run.
    (A task that kills the process outright cannot be survived in-process;
    that protection needs :class:`ProcessPoolBackend`.)
    """

    def __init__(self, policy: Optional[FaultPolicy] = None) -> None:
        self.policy = policy

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, TaskOutcome]]:
        if self.policy is not None:
            context.task_timeout_s = self.policy.task_timeout_s
            tracker = AttemptTracker(self.policy)
            for task in tasks:
                if _shutdown_requested(context):
                    return
                yield task, run_task_with_retries(
                    task, context, self.policy, tracker
                )
            return
        for task in tasks:
            if _shutdown_requested(context):
                return
            yield task, context.execute(task)


# -- process-pool worker state ------------------------------------------------
#
# Populated once per worker by the pool initializer; the golden cache fills
# lazily as the worker sees each benchmark for the first time.

_WORKER_CONTEXT: Optional[ExecutionContext] = None


def _worker_init(
    programs: Dict[str, Program],
    config: Optional[CoreConfig],
    runner: Optional[TaskRunner] = None,
    snapshot_interval: int = 0,
    task_timeout_s: Optional[float] = None,
    differential: bool = False,
) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = ExecutionContext(
        programs=programs,
        config=config,
        runner=runner,
        snapshot_interval=snapshot_interval,
        task_timeout_s=task_timeout_s,
        differential=differential,
    )


def _worker_execute(task: object) -> object:
    assert _WORKER_CONTEXT is not None
    return _WORKER_CONTEXT.execute(task)


@dataclass
class _Inflight:
    """Parent-side bookkeeping for one submitted task."""

    task: object
    submitted: float
    exec_started: Optional[float] = None  # first observed Future.running()
    probe: bool = False  # re-run alone after a crash (exact attribution)


class ProcessPoolBackend:
    """Parallel execution on a pool of worker processes.

    Tasks and results are plain picklable dataclasses; results are yielded
    in completion order. ``max_inflight`` bounds how many tasks are queued
    on the pool at once so paper-scale campaigns (tens of thousands of
    tasks) do not hold every pending future in memory.

    With a :class:`FaultPolicy` the backend is fault-tolerant — see the
    module docstring for the recovery model (retry + quarantine, watchdog,
    pool respawn with crash attribution by probing, serial degradation).
    """

    #: Poll period of the parent-side watchdog loop (seconds).
    WATCHDOG_TICK_S = 0.2

    def __init__(
        self,
        jobs: int,
        max_inflight: Optional[int] = None,
        policy: Optional[FaultPolicy] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        self.jobs = jobs
        self.max_inflight = max_inflight if max_inflight is not None else jobs * 8
        self.policy = policy

    # -- pool lifecycle -------------------------------------------------------

    def _spawn(self, context: ExecutionContext) -> ProcessPoolExecutor:
        timeout = self.policy.task_timeout_s if self.policy else None
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=_worker_init,
            initargs=(
                context.programs,
                context.config,
                context.runner,
                context.snapshot_interval,
                timeout,
                context.differential,
            ),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Forcibly stop a pool (hung or broken workers won't exit politely)."""
        # _processes is None once the executor has begun shutting down.
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already-dead process
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass

    # -- entry points ---------------------------------------------------------

    def run(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, TaskOutcome]]:
        if self.policy is not None:
            return self._run_resilient(tasks, context, self.policy)
        return self._run_fast(tasks, context)

    def _run_fast(
        self, tasks: Sequence[InjectionTask], context: ExecutionContext
    ) -> Iterator[Tuple[InjectionTask, InjectionResult]]:
        """Legacy fail-fast path: any worker error propagates immediately."""
        pending = list(tasks)
        with self._spawn(context) as pool:
            inflight = {}
            cursor = 0
            while cursor < len(pending) or inflight:
                if _shutdown_requested(context):
                    # Stop dispatching; collect what finishes within the
                    # drain deadline, abandon the rest (resume re-runs them).
                    done, _ = wait(
                        inflight, timeout=context.shutdown.drain_remaining()
                    )
                    for future in done:
                        task = inflight.pop(future)
                        if future.exception() is None:
                            yield task, future.result()
                    self._kill_pool(pool)
                    return
                while cursor < len(pending) and len(inflight) < self.max_inflight:
                    task = pending[cursor]
                    inflight[pool.submit(_worker_execute, task)] = task
                    cursor += 1
                done, _ = wait(inflight, return_when=FIRST_COMPLETED)
                for future in done:
                    task = inflight.pop(future)
                    yield task, future.result()

    # -- the resilient path ----------------------------------------------------

    def _run_resilient(
        self,
        tasks: Sequence[InjectionTask],
        context: ExecutionContext,
        policy: FaultPolicy,
    ) -> Iterator[Tuple[InjectionTask, TaskOutcome]]:
        context.task_timeout_s = policy.task_timeout_s
        tracker = AttemptTracker(policy)
        queue: Deque[object] = deque(tasks)
        suspects: Deque[object] = deque()  # re-run alone, oldest first
        inflight: Dict[object, _Inflight] = {}  # future -> bookkeeping
        consecutive_breakages = 0
        probe_active = False
        degraded = False
        pool: Optional[ProcessPoolExecutor] = None

        def quarantine_or_requeue(
            task: object, failure: TaskFailure, requeue_to: Deque[object],
            front: bool = False,
        ) -> Optional[Tuple[object, TaskFailure]]:
            """After a charged attempt: retry, or emit the quarantine pair."""
            if not tracker.exhausted(task.key):
                if front:
                    requeue_to.appendleft(task)
                else:
                    requeue_to.append(task)
                return None
            if policy.strict:
                raise FaultToleranceError(
                    f"task {task.key} failed after {failure.attempts} "
                    f"attempt(s) [{failure.kind}]: {failure.message}"
                )
            return task, failure

        try:
            pool = self._spawn(context)
            while queue or suspects or inflight:
                if degraded:
                    break
                if _shutdown_requested(context):
                    # Stop dispatching; collect whatever completes within
                    # the drain deadline (without charging or quarantining
                    # anything mid-shutdown), abandon the rest — the
                    # flushed checkpoint makes them resumable.
                    done, _ = wait(
                        inflight, timeout=context.shutdown.drain_remaining()
                    )
                    for future in done:
                        entry = inflight.pop(future)
                        try:
                            outcome = future.result()
                        except Exception:
                            continue
                        yield entry.task, outcome
                    return

                # -- submit ------------------------------------------------
                # Probe mode: after a crash, the tasks that were in flight
                # re-run strictly one at a time so the next crash names its
                # culprit. Normal mode: keep up to max_inflight queued.
                broken_on_submit = False
                if probe_active:
                    pass  # the single probe is already in flight
                elif suspects:
                    task = suspects.popleft()
                    try:
                        future = pool.submit(_worker_execute, task)
                    except BrokenProcessPool:
                        suspects.appendleft(task)
                        broken_on_submit = True
                    else:
                        inflight[future] = _Inflight(
                            task, time.monotonic(), probe=True
                        )
                        probe_active = True
                else:
                    while queue and len(inflight) < self.max_inflight:
                        task = queue.popleft()
                        try:
                            future = pool.submit(_worker_execute, task)
                        except BrokenProcessPool:
                            queue.appendleft(task)
                            broken_on_submit = True
                            break
                        inflight[future] = _Inflight(task, time.monotonic())

                if broken_on_submit:
                    consecutive_breakages += 1
                    for entry in inflight.values():
                        suspects.append(entry.task)
                    inflight.clear()
                    probe_active = False
                    pool = self._respawn_or_degrade(
                        pool, context, policy, consecutive_breakages
                    )
                    if pool is None:
                        degraded = True
                    continue
                if not inflight:
                    continue

                # -- wait + watchdog ---------------------------------------
                tick = (
                    self.WATCHDOG_TICK_S
                    if policy.hang_timeout_s is not None
                    else None
                )
                done, _ = wait(
                    inflight, timeout=tick, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future, entry in inflight.items():
                    if entry.exec_started is None and future.running():
                        entry.exec_started = now

                # -- collect completions -----------------------------------
                pool_broke = False
                for future in done:
                    entry = inflight.pop(future)
                    task = entry.task
                    try:
                        outcome = future.result()
                    except (BrokenProcessPool, CancelledError):
                        if entry.probe:
                            # Attributed: this exact task killed its worker.
                            attempts = tracker.record_attempt(task.key)
                            pair = quarantine_or_requeue(
                                task, crash_failure(attempts), suspects,
                                front=True,
                            )
                            if pair is not None:
                                yield pair
                        else:
                            suspects.append(task)
                        pool_broke = True
                    except Exception as exc:
                        # Worker-side exception (pickled and re-raised):
                        # DeadlineExceeded -> timeout, everything else ->
                        # exception. The worker survives; retry in place.
                        attempts = tracker.record_attempt(task.key)
                        pair = quarantine_or_requeue(
                            task,
                            failure_from_exception(exc, attempts),
                            queue,
                        )
                        if pair is not None:
                            yield pair
                    else:
                        consecutive_breakages = 0
                        yield task, outcome
                    if entry.probe:
                        probe_active = False

                if pool_broke:
                    consecutive_breakages += 1
                    for entry in inflight.values():
                        suspects.append(entry.task)
                    inflight.clear()
                    probe_active = False
                    if queue or suspects:
                        pool = self._respawn_or_degrade(
                            pool, context, policy, consecutive_breakages
                        )
                        if pool is None:
                            degraded = True
                    continue

                # -- parent-side watchdog ----------------------------------
                hang = policy.hang_timeout_s
                if hang is None or not inflight:
                    continue
                hung = [
                    (future, entry)
                    for future, entry in inflight.items()
                    if entry.exec_started is not None
                    and now - entry.exec_started > hang
                ]
                if not hung:
                    continue
                # A deliberate kill, fully attributed: charge the hung
                # tasks, requeue the innocent bystanders uncharged, and
                # replace the pool (a hung worker never comes back).
                hung_futures = {future for future, _ in hung}
                for future, entry in list(inflight.items()):
                    task = entry.task
                    if future in hung_futures:
                        attempts = tracker.record_attempt(task.key)
                        pair = quarantine_or_requeue(
                            task, timeout_failure(attempts, hang), queue
                        )
                        if pair is not None:
                            yield pair
                    else:
                        queue.appendleft(task)
                inflight.clear()
                probe_active = False
                self._kill_pool(pool)
                pool = self._spawn(context)

            if degraded:
                remaining: List[object] = []
                for entry in inflight.values():
                    remaining.append(entry.task)
                inflight.clear()
                remaining.extend(suspects)
                remaining.extend(queue)
                suspects.clear()
                queue.clear()
                for task in remaining:
                    if _shutdown_requested(context):
                        return
                    yield task, run_task_with_retries(
                        task, context, policy, tracker
                    )
        finally:
            if pool is not None:
                self._kill_pool(pool)

    def _respawn_or_degrade(
        self,
        pool: ProcessPoolExecutor,
        context: ExecutionContext,
        policy: FaultPolicy,
        consecutive_breakages: int,
    ) -> Optional[ProcessPoolExecutor]:
        """Replace a broken pool, or return None to degrade to serial.

        Degradation (or, in strict / no-fallback mode, a hard
        :class:`FaultToleranceError`) triggers only after
        ``max_pool_respawns`` *consecutive* breakages with not a single
        completed task in between — a lone poison task completes innocents
        between its crashes and so never trips this.
        """
        self._kill_pool(pool)
        if consecutive_breakages > policy.max_pool_respawns:
            if policy.strict or not policy.fallback_serial:
                raise FaultToleranceError(
                    f"process pool broke {consecutive_breakages} times "
                    "in a row without completing a task; giving up "
                    "(strict/no-fallback mode)"
                )
            return None
        time.sleep(policy.backoff_s(consecutive_breakages))
        return self._spawn(context)
