"""Fault-tolerance policy and structured task failures.

The paper's evaluation rests on campaigns of tens of thousands of
injections; at that scale the harness itself must survive misbehaving
runs. This module defines the *policy* (:class:`FaultPolicy`) and the
*vocabulary* (:class:`TaskFailure`) the execution backends use to turn
worker exceptions, hung tasks and dead worker processes into structured,
checkpointable records instead of campaign aborts:

* **exception** — the task raised; the traceback is preserved (truncated).
* **timeout** — the task exceeded its wall-clock budget, either
  cooperatively (the core checks its deadline every ~1024 cycles) or via
  the parent-side watchdog for tasks that stop responding entirely.
* **worker-crash** — the worker process died (OOM kill, ``os._exit``,
  segfault); the pool is respawned and the task retried in a fresh slot.

A task is retried up to ``max_task_retries`` times; after that it is
*quarantined*: recorded as a :class:`TaskFailure` in the checkpoint (so
``--resume`` skips it instead of re-crashing on it) and excluded from
figure aggregation. ``strict`` turns quarantine and serial fallback into
hard failures for runs where partial results are unacceptable.

This module deliberately imports nothing from the rest of the package so
every layer (core, bugs, exec, fuzz) can depend on it without cycles.
"""

from __future__ import annotations

import math as _math
import random as _random
import time as _time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

#: Maximum characters of traceback preserved in a failure record.
TRACEBACK_LIMIT = 2000

#: The three failure kinds a task can be quarantined with.
FAILURE_KINDS = ("exception", "timeout", "worker-crash")


class FaultToleranceError(RuntimeError):
    """Raised in ``strict`` mode instead of quarantining or degrading."""


def backoff_with_jitter(
    attempt: int,
    base_s: float,
    max_s: float,
    jitter: float = 0.5,
    rng: Optional[_random.Random] = None,
) -> float:
    """Capped exponential backoff with multiplicative jitter.

    ``attempt`` is 1-based: the first retry waits about ``base_s``, doubling
    per attempt up to ``max_s``. The jitter then *subtracts* up to
    ``jitter`` (a fraction in [0, 1]) of the delay, so the returned value
    lies in ``[delay * (1 - jitter), delay]`` — the cap is an upper bound
    either way. Jitter exists to break thundering herds: workers (or pool
    respawns) that all failed at the same instant must not all retry at the
    same instant too. ``rng`` pins the stream for tests; the default draws
    from the module-level PRNG, which is exactly the per-process
    decorrelation wanted in production.

    Overflow-safe for any attempt count: the exponent is clamped to the
    number of doublings that reaches ``max_s``, so ``attempt=10**9`` is
    exactly the cap rather than a float overflow. Nonpositive ``base_s``
    or ``max_s`` yields 0.0 (a delay is never negative).
    """
    if base_s <= 0.0 or max_s <= 0.0:
        return 0.0
    if base_s >= max_s:
        delay = max_s
    else:
        # Doublings beyond this provably clear the cap; clamping keeps
        # base_s * 2**exponent representable (ldexp never overflows here).
        cap_exponent = int(_math.log2(max_s / base_s)) + 1
        exponent = min(max(0, attempt - 1), cap_exponent)
        delay = min(max_s, _math.ldexp(base_s, exponent))
    if jitter <= 0.0:
        return delay
    draw = (rng if rng is not None else _random).random()
    return delay * (1.0 - jitter * draw)


@dataclass(frozen=True)
class FaultPolicy:
    """How the execution layer responds to misbehaving tasks and workers.

    Attributes:
        task_timeout_s: Per-task wall-clock budget in seconds. Enforced
            cooperatively inside the simulator (deadline checked every
            ~1024 cycles) and, for tasks that stop responding entirely,
            by the parent-side watchdog at ``task_timeout_s +
            watchdog_grace_s``. None disables both.
        watchdog_grace_s: Extra wall-clock slack the parent grants beyond
            ``task_timeout_s`` before declaring a task hung and killing
            its pool. Covers per-worker golden/snapshot warm-up, which
            runs before the cooperative deadline can bite.
        max_task_retries: Retries after the first attempt before a task
            is quarantined (so a task runs at most ``1 + max_task_retries``
            times). Each retry gets a fresh pool slot.
        max_pool_respawns: Consecutive pool breakages *without a single
            completed task in between* tolerated before the backend
            degrades to in-process serial execution (or raises, when
            ``strict`` or ``fallback_serial=False``). Breakages that do
            complete tasks in between reset the counter, so a lone poison
            task never triggers degradation.
        backoff_base_s: Initial sleep before respawning a broken pool;
            doubles per consecutive breakage up to ``backoff_max_s``.
        backoff_max_s: Exponential-backoff ceiling.
        backoff_jitter: Fraction of each backoff delay randomly shaved off
            (see :func:`backoff_with_jitter`), so workers that crashed
            simultaneously don't thundering-herd their respawns. 0 restores
            the deterministic schedule.
        fallback_serial: Degrade to :class:`SerialBackend`-style in-process
            execution when the pool keeps breaking, instead of aborting.
        strict: Fail hard (raise :class:`FaultToleranceError`) the moment
            a task would be quarantined or the backend would degrade,
            instead of recording and continuing.
    """

    task_timeout_s: Optional[float] = None
    watchdog_grace_s: float = 60.0
    max_task_retries: int = 2
    max_pool_respawns: int = 3
    backoff_base_s: float = 0.5
    backoff_max_s: float = 30.0
    backoff_jitter: float = 0.5
    fallback_serial: bool = True
    strict: bool = False

    def __post_init__(self) -> None:
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError(
                f"task_timeout_s must be > 0, got {self.task_timeout_s}"
            )
        if self.max_task_retries < 0:
            raise ValueError(
                f"max_task_retries must be >= 0, got {self.max_task_retries}"
            )
        if self.max_pool_respawns < 0:
            raise ValueError(
                f"max_pool_respawns must be >= 0, got {self.max_pool_respawns}"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )

    @property
    def max_attempts_per_task(self) -> int:
        return 1 + self.max_task_retries

    @property
    def hang_timeout_s(self) -> Optional[float]:
        """Parent-side watchdog deadline, or None when timeouts are off."""
        if self.task_timeout_s is None:
            return None
        return self.task_timeout_s + self.watchdog_grace_s

    def backoff_s(
        self,
        consecutive_breakages: int,
        rng: Optional[_random.Random] = None,
    ) -> float:
        """Sleep before the Nth consecutive respawn (1-based), jittered."""
        return backoff_with_jitter(
            consecutive_breakages,
            self.backoff_base_s,
            self.backoff_max_s,
            jitter=self.backoff_jitter,
            rng=rng,
        )


@dataclass(frozen=True)
class TaskFailure:
    """The structured account of one quarantined task.

    Attributes:
        kind: One of :data:`FAILURE_KINDS`.
        attempts: How many times the task was tried before quarantine.
        message: One-line summary (exception repr, timeout budget, ...).
        traceback: Truncated worker-side traceback ('' when unavailable,
            e.g. for worker crashes and watchdog kills).
    """

    kind: str
    attempts: int
    message: str
    traceback: str = ""

    def to_record(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "TaskFailure":
        return cls(
            kind=record["kind"],
            attempts=record["attempts"],
            message=record["message"],
            traceback=record.get("traceback", ""),
        )


@dataclass(frozen=True)
class TaskFailureRecord:
    """A :class:`TaskFailure` plus the identity of the task it belongs to
    (what campaign results and reports carry around)."""

    key: str
    index: int
    benchmark: Optional[str]
    failure: TaskFailure


def failure_from_exception(exc: BaseException, attempts: int) -> TaskFailure:
    """Build a :class:`TaskFailure` from a raised exception.

    The kind is ``timeout`` for the cooperative deadline (detected by the
    exception's class *name*, so a pickled-and-reraised worker exception
    classifies identically), ``exception`` otherwise.
    """
    kind = (
        "timeout"
        if type(exc).__name__ == "DeadlineExceeded"
        else "exception"
    )
    tb = "".join(
        _traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return TaskFailure(
        kind=kind,
        attempts=attempts,
        message=f"{type(exc).__name__}: {exc}",
        traceback=tb[-TRACEBACK_LIMIT:],
    )


def timeout_failure(attempts: int, budget_s: float) -> TaskFailure:
    """A watchdog (parent-side) timeout: the worker never answered."""
    return TaskFailure(
        kind="timeout",
        attempts=attempts,
        message=(
            f"task exceeded the {budget_s:.1f}s watchdog budget without "
            "responding; its worker was killed"
        ),
    )


def crash_failure(attempts: int, detail: str = "") -> TaskFailure:
    """A worker-process death (OOM kill, os._exit, segfault, ...)."""
    message = "worker process died while the task was in flight"
    if detail:
        message += f" ({detail})"
    return TaskFailure(kind="worker-crash", attempts=attempts, message=message)


class CircuitBreaker:
    """A wall-clock outage budget around an unreliable dependency.

    Callers report each successful contact with :meth:`success`; the
    breaker :attr:`tripped` once the time since the last success exceeds
    ``budget_s``. Unlike a consecutive-failure counter, a time budget is
    indifferent to retry cadence: a worker hammering a dead coordinator
    every 200ms and one backing off to 5s both trip at the same wall-clock
    moment, which is what an operator reasons about ("give up after two
    minutes offline"). ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        budget_s: float,
        clock: Callable[[], float] = _time.monotonic,
    ) -> None:
        if budget_s <= 0:
            raise ValueError(f"budget_s must be > 0, got {budget_s}")
        self.budget_s = budget_s
        self.clock = clock
        self._last_success = clock()

    def success(self) -> None:
        """Record a successful contact, resetting the outage clock."""
        self._last_success = self.clock()

    @property
    def outage_s(self) -> float:
        """Seconds since the last successful contact."""
        return max(0.0, self.clock() - self._last_success)

    @property
    def tripped(self) -> bool:
        return self.outage_s > self.budget_s


@dataclass
class AttemptTracker:
    """Per-task attempt bookkeeping shared by the backends."""

    policy: FaultPolicy
    counts: Dict[str, int] = field(default_factory=dict)

    def record_attempt(self, key: str) -> int:
        """Charge one attempt against ``key``; returns the new count."""
        self.counts[key] = self.counts.get(key, 0) + 1
        return self.counts[key]

    def attempts(self, key: str) -> int:
        return self.counts.get(key, 0)

    def exhausted(self, key: str) -> bool:
        return self.counts.get(key, 0) >= self.policy.max_attempts_per_task
