"""Fault injection for the fault injector: a chaos harness for the backends.

The paper's campaigns inject bugs into the simulated core; this module
injects faults into the *execution layer* that runs those campaigns, so the
recovery machinery (retry, quarantine, watchdog, pool respawn, serial
degradation) can be exercised against real misbehavior instead of mocks.

:func:`chaos_runner` is a drop-in :data:`~repro.exec.backends.TaskRunner`
that executes the normal injection path, except for tasks whose keys appear
in the ``REPRO_CHAOS_*`` environment variables, which it sabotages instead.
Environment variables — not closures — carry the sabotage plan because pool
workers are separate processes: they inherit the parent's environment but
not its objects, and the runner itself is shipped to workers by module
reference.

Behaviors (each variable holds comma-separated task keys):

- ``REPRO_CHAOS_EXIT``: ``os._exit`` immediately — an unconditional hard
  worker crash (kills the current process, whoever it is).
- ``REPRO_CHAOS_EXIT_IN_WORKER``: ``os._exit`` only inside a pool worker
  process; in the parent the task runs normally. This makes degradation to
  serial testable — the pool keeps dying, the in-process fallback finishes.
- ``REPRO_CHAOS_RAISE``: raise :class:`ChaosError` (a deterministic
  "poison" task that fails every attempt).
- ``REPRO_CHAOS_HANG``: sleep for ``REPRO_CHAOS_HANG_S`` seconds (default
  3600) — a non-cooperative hang only the parent watchdog can clear.
- ``REPRO_CHAOS_TORN_APPEND`` (honored by
  :class:`~repro.exec.checkpoint.CheckpointWriter` itself, one task key):
  emit half of that task's checkpoint line and hard-exit — a deterministic
  SIGKILL-mid-append that leaves a torn tail *and* a stale writer lock.

``python -m repro.exec.chaos`` runs the end-to-end smoke used by CI:
a small parallel campaign with one worker-killer and one hung task must run
to completion, quarantine exactly those two as structured failures in the
checkpoint, keep every surviving result bit-identical to a clean serial
run, and then ``--resume`` must execute zero new tasks. A second scenario
SIGKILLs a ``repro campaign`` subprocess mid-append and asserts that
``repro checkpoint verify`` flags the torn tail, ``repair`` salvages every
intact record, the stale lock is taken over, and a resume of the repaired
file completes bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Iterable, Optional, Set

from repro.exec.backends import ExecutionContext
from repro.exec.durability import ENV_TORN_APPEND, TORN_APPEND_EXIT_STATUS
from repro.exec.tasks import BatchedInjectionTask, execute_task

ENV_EXIT = "REPRO_CHAOS_EXIT"
ENV_EXIT_IN_WORKER = "REPRO_CHAOS_EXIT_IN_WORKER"
ENV_RAISE = "REPRO_CHAOS_RAISE"
ENV_HANG = "REPRO_CHAOS_HANG"
ENV_HANG_S = "REPRO_CHAOS_HANG_S"

#: All plan-carrying variables, for scrubbing between scenarios.
ALL_ENV_VARS = (
    ENV_EXIT,
    ENV_EXIT_IN_WORKER,
    ENV_RAISE,
    ENV_HANG,
    ENV_HANG_S,
    ENV_TORN_APPEND,
)

#: Exit status used for deliberate worker kills (recognizable in CI logs).
EXIT_STATUS = 17


class ChaosError(RuntimeError):
    """The deterministic failure raised for ``REPRO_CHAOS_RAISE`` tasks."""


def chaos_env(
    exit_keys: Iterable[str] = (),
    exit_in_worker_keys: Iterable[str] = (),
    raise_keys: Iterable[str] = (),
    hang_keys: Iterable[str] = (),
    hang_s: Optional[float] = None,
) -> Dict[str, str]:
    """Build the environment-variable plan for a chaos scenario.

    Returns only the variables that are set; callers (tests, the smoke
    harness) should clear :data:`ALL_ENV_VARS` first so plans don't leak
    between scenarios.
    """
    env: Dict[str, str] = {}
    if exit_keys:
        env[ENV_EXIT] = ",".join(exit_keys)
    if exit_in_worker_keys:
        env[ENV_EXIT_IN_WORKER] = ",".join(exit_in_worker_keys)
    if raise_keys:
        env[ENV_RAISE] = ",".join(raise_keys)
    if hang_keys:
        env[ENV_HANG] = ",".join(hang_keys)
    if hang_s is not None:
        env[ENV_HANG_S] = repr(hang_s)
    return env


def _keys(name: str) -> Set[str]:
    raw = os.environ.get(name, "")
    return {key for key in raw.split(",") if key}


def _in_pool_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _maybe_sabotage(key: str) -> None:
    if key in _keys(ENV_EXIT):
        os._exit(EXIT_STATUS)
    if key in _keys(ENV_EXIT_IN_WORKER) and _in_pool_worker():
        os._exit(EXIT_STATUS)
    if key in _keys(ENV_RAISE):
        raise ChaosError(f"chaos: deterministic failure for task {key}")
    if key in _keys(ENV_HANG):
        time.sleep(float(os.environ.get(ENV_HANG_S, "3600")))


def chaos_runner(task: object, context: ExecutionContext) -> object:
    """The sabotage-aware task runner (see module docstring).

    A :class:`~repro.exec.tasks.BatchedInjectionTask` is executed member
    by member, with the sabotage check before *each* member — so a plan
    keyed on a later member kills (or poisons) the process genuinely
    mid-batch, after earlier members already produced results that the
    engine must then discard with the rest of the batch.
    """
    if isinstance(task, BatchedInjectionTask):
        golden = context.golden(task.benchmark)
        results = []
        for member in task.members:
            _maybe_sabotage(member.key)
            results.append(
                execute_task(
                    member,
                    context.programs[task.benchmark],
                    golden,
                    context.config,
                    snapshots=context.snapshots(task.benchmark),
                    deadline=context.deadline,
                    differential=context.differential,
                )
            )
        return results
    _maybe_sabotage(task.key)
    golden = context.golden(task.benchmark)
    return execute_task(
        task,
        context.programs[task.benchmark],
        golden,
        context.config,
        snapshots=context.snapshots(task.benchmark),
        deadline=context.deadline,
        differential=context.differential,
    )


# -- the CI smoke harness ------------------------------------------------------


def _scrub_env() -> None:
    for name in ALL_ENV_VARS:
        os.environ.pop(name, None)


def _smoke(jobs: int = 2) -> int:
    import tempfile

    from repro.bugs.models import PRIMARY_MODELS
    from repro.exec.backends import ProcessPoolBackend, SerialBackend
    from repro.exec.checkpoint import load_checkpoint_full, result_to_dict
    from repro.exec.engine import run_engine
    from repro.exec.resilience import FaultPolicy
    from repro.exec.tasks import generate_tasks
    from repro.workloads import WORKLOADS

    programs = {"bitcount": WORKLOADS["bitcount"](scale=0.5)}
    runs, seed = 4, 1
    tasks = generate_tasks(
        list(programs), runs, list(PRIMARY_MODELS), seed, 6
    )
    kill_key, hang_key = tasks[1].key, tasks[5].key
    print(f"chaos-smoke: {len(tasks)} tasks, jobs={jobs}")
    print(f"  kill: {kill_key}\n  hang: {hang_key}")

    def comparable(result) -> Dict[str, object]:
        # Everything but the throughput bookkeeping: wall-clock measurement
        # and warm-start/differential accounting vary with *how* a run was
        # executed; every simulation outcome must not.
        record = result_to_dict(result)
        record.pop("sim_wall_ns")
        record.pop("warm_start_cycles_skipped")
        record.pop("early_terminated_cycle")
        return record

    # Clean serial reference: what every surviving task must reproduce.
    _scrub_env()
    baseline = run_engine(programs, runs, seed=seed, backend=SerialBackend())
    baseline_by_key = {
        task.key: comparable(result)
        for task, result in zip(tasks, baseline.results)
    }

    # Hang timeout = task_timeout_s + grace; the hung task burns two of
    # those (one per attempt), so keep them short but far above the ~tens
    # of milliseconds a real bitcount task needs.
    policy = FaultPolicy(
        task_timeout_s=10.0, watchdog_grace_s=2.0, max_task_retries=1
    )
    os.environ.update(
        chaos_env(exit_keys=[kill_key], hang_keys=[hang_key], hang_s=600.0)
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "chaos.jsonl")
        campaign = run_engine(
            programs,
            runs,
            seed=seed,
            backend=ProcessPoolBackend(jobs, policy=policy),
            checkpoint_path=path,
            task_runner=chaos_runner,
        )

        assert len(campaign.results) == len(tasks) - 2, (
            f"expected {len(tasks) - 2} survivors, got {len(campaign.results)}"
        )
        kinds = {rec.key: rec.failure.kind for rec in campaign.failures}
        assert kinds == {kill_key: "worker-crash", hang_key: "timeout"}, kinds
        for rec in campaign.failures:
            assert rec.failure.attempts == policy.max_attempts_per_task

        _, done, quarantined = load_checkpoint_full(path)
        assert set(quarantined) == {kill_key, hang_key}
        assert len(done) == len(tasks) - 2
        for key, (_, result) in done.items():
            assert comparable(result) == baseline_by_key[key], (
                f"survivor {key} diverged from the clean serial run"
            )
        print("chaos-smoke: survivors bit-identical to clean serial run")

        # Resume must execute nothing: all work is completed or quarantined.
        events = []
        resumed = run_engine(
            programs,
            runs,
            seed=seed,
            backend=ProcessPoolBackend(jobs, policy=policy),
            checkpoint_path=path,
            resume=True,
            observers=[events.append],
            task_runner=chaos_runner,
        )
        executed = sum(1 for event in events if event.benchmark is not None)
        assert executed == 0, f"resume executed {executed} tasks"
        assert len(resumed.results) == len(tasks) - 2
        assert len(resumed.failures) == 2
    _scrub_env()
    print(
        f"chaos-smoke OK: {len(campaign.results)} completed, "
        f"{campaign.quarantined} quarantined, resume executed 0 tasks"
    )
    _smoke_torn_append(programs, runs, seed, tasks, baseline_by_key, comparable)
    _smoke_midbatch_kill(programs, runs, seed, tasks, baseline_by_key, comparable)
    return 0


#: Parameters shared by the mid-batch scenario parent and ``--batch-child``.
_BATCH_CHILD_SCALE = 0.5
_BATCH_CHILD_RUNS = 4
_BATCH_CHILD_SEED = 1
_BATCH_CHILD_INTERVAL = 100
_BATCH_CHILD_SIZE = 4


def _batch_child(path: str) -> int:
    """Run a batched differential campaign against ``path`` (see below).

    ``python -m repro.exec.chaos --batch-child <checkpoint>`` is the
    subprocess half of the mid-batch SIGKILL scenario: a serial campaign
    with batching and differential execution on, dying by ``os._exit``
    when the inherited ``REPRO_CHAOS_EXIT`` plan names a batch member.
    Run again with a scrubbed environment it resumes the checkpoint.
    """
    from repro.exec.backends import SerialBackend
    from repro.exec.engine import run_engine
    from repro.workloads import WORKLOADS

    programs = {"bitcount": WORKLOADS["bitcount"](scale=_BATCH_CHILD_SCALE)}
    run_engine(
        programs,
        _BATCH_CHILD_RUNS,
        seed=_BATCH_CHILD_SEED,
        backend=SerialBackend(),
        checkpoint_path=path,
        resume=os.path.exists(path),
        snapshot_interval=_BATCH_CHILD_INTERVAL,
        differential=True,
        batch_size=_BATCH_CHILD_SIZE,
        task_runner=chaos_runner,
    )
    return 0


def _smoke_midbatch_kill(
    programs, runs, seed, tasks, baseline_by_key, comparable
) -> None:
    """SIGKILL a campaign mid-batch; resume must lose and repeat nothing.

    A ``--batch-child`` subprocess runs a batched differential campaign
    and hard-exits while executing the *second* member of a multi-member
    batch — after that batch's first member already simulated, but before
    any of the batch reached the checkpoint (batch outcomes are written
    only once the whole batch returns). The resumed child must complete
    the campaign with every task appearing in the checkpoint exactly once
    (none lost, none double-counted) and every result bit-identical to
    the clean serial baseline.
    """
    import json
    import subprocess
    import sys
    import tempfile
    from collections import Counter

    from repro.exec.backends import ExecutionContext
    from repro.exec.checkpoint import load_checkpoint_full
    from repro.exec.tasks import group_into_batches

    # Replay the child's batch grouping to aim the kill at a mid-batch
    # member: the second member of a multi-member batch that is not the
    # first dispatched unit, so some earlier results are already
    # checkpointed when the process dies.
    context = ExecutionContext(programs=programs, config=None)
    goldens = {name: context.golden(name) for name in programs}
    batches = group_into_batches(
        tasks, goldens, None, _BATCH_CHILD_INTERVAL, _BATCH_CHILD_SIZE
    )
    target = next(
        unit
        for unit in batches[1:]
        if isinstance(unit, BatchedInjectionTask) and len(unit.members) >= 2
    )
    kill_key = target.members[1].key
    batch_keys = {member.key for member in target.members}

    _scrub_env()
    clean_env = {
        name: value
        for name, value in os.environ.items()
        if name not in ALL_ENV_VARS
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "midbatch.jsonl")
        child = subprocess.run(
            [sys.executable, "-m", "repro.exec.chaos", "--batch-child", path],
            env=dict(clean_env, **{ENV_EXIT: kill_key}),
            capture_output=True,
            text=True,
        )
        assert child.returncode == EXIT_STATUS, (
            f"expected mid-batch kill exit {EXIT_STATUS}, got "
            f"{child.returncode}: {child.stderr}"
        )
        with open(path) as handle:
            keys_before = [
                record["key"]
                for record in map(json.loads, handle)
                if record.get("type") == "result"
            ]
        assert 0 < len(keys_before) < len(tasks), (
            f"kill must land mid-campaign, got {len(keys_before)} records"
        )
        assert not batch_keys & set(keys_before), (
            "no member of a killed batch may reach the checkpoint"
        )

        resumed = subprocess.run(
            [sys.executable, "-m", "repro.exec.chaos", "--batch-child", path],
            env=clean_env,
            capture_output=True,
            text=True,
        )
        assert resumed.returncode == 0, (
            f"resume failed ({resumed.returncode}): {resumed.stderr}"
        )
        with open(path) as handle:
            key_counts = Counter(
                record["key"]
                for record in map(json.loads, handle)
                if record.get("type") == "result"
            )
        expected = Counter(task.key for task in tasks)
        assert key_counts == expected, (
            "resume lost or double-counted tasks: "
            f"{key_counts - expected} extra, {expected - key_counts} missing"
        )
        _, done, quarantined = load_checkpoint_full(path)
        assert not quarantined and len(done) == len(tasks)
        for key, (_, result) in done.items():
            assert comparable(result) == baseline_by_key[key], (
                f"task {key} diverged from the clean serial baseline"
            )
    print(
        "chaos-smoke OK: mid-batch kill resumed with every task exactly "
        f"once ({len(tasks)} results, kill at {kill_key})"
    )


def _smoke_torn_append(
    programs, runs, seed, tasks, baseline_by_key, comparable
) -> None:
    """Kill ``repro campaign`` mid-append, then verify → repair → resume.

    The writer process dies after emitting half of one record's line (a
    deterministic SIGKILL-mid-append), leaving a torn tail and a stale
    writer lock. ``repro checkpoint verify`` must flag the damage,
    ``repair`` must salvage everything but the torn record, the dead
    owner's lock must be taken over, and a resume of the repaired file
    must complete bit-identically to an uninterrupted run.
    """
    import subprocess
    import sys
    import tempfile

    from repro.exec.backends import SerialBackend
    from repro.exec.checkpoint import load_checkpoint_full
    from repro.exec.cli import checkpoint_main
    from repro.exec.durability import lock_path_for, scan_checkpoint
    from repro.exec.engine import run_engine

    torn_key = tasks[2].key  # third record: manifest + 2 intact + torn tail
    _scrub_env()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "torn.jsonl")
        child = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "--runs",
                str(runs),
                "--benchmarks",
                "bitcount",
                "--scale",
                "0.5",
                "--seed",
                str(seed),
                "--checkpoint",
                path,
                "--snapshot-interval",
                "0",  # cold starts, comparable to the cold baseline
                "--no-progress",
                "--figures",
                "3",
            ],
            env=dict(os.environ, **{ENV_TORN_APPEND: torn_key}),
            capture_output=True,
            text=True,
        )
        assert child.returncode == TORN_APPEND_EXIT_STATUS, (
            f"expected torn-append exit {TORN_APPEND_EXIT_STATUS}, got "
            f"{child.returncode}: {child.stderr}"
        )
        assert os.path.exists(lock_path_for(path)), (
            "a killed writer must leave its lock behind"
        )

        report = scan_checkpoint(path)
        assert report.torn_tail and not report.interior_issues, report.issues
        assert report.records == 2, f"expected 2 intact records, {report}"
        assert checkpoint_main(["verify", path]) == 1, (
            "verify must flag a torn tail with a nonzero exit"
        )
        print(f"chaos-smoke: torn tail at {path}:{report.issues[0].lineno} "
              "flagged by verify")

        repaired = os.path.join(tmp, "torn.repaired.jsonl")
        assert checkpoint_main(["repair", path, "-o", repaired]) == 0
        assert checkpoint_main(["verify", repaired]) == 0, (
            "a repaired checkpoint must verify clean"
        )
        _, done, quarantined = load_checkpoint_full(repaired)
        assert len(done) == 2 and not quarantined, (
            f"repair must salvage exactly the 2 intact records, got {done}"
        )

        # Park the dead owner's lock next to the repaired file: the resume
        # must take it over (same host, provably dead PID), not refuse.
        os.replace(lock_path_for(path), lock_path_for(repaired))
        resumed = run_engine(
            programs,
            runs,
            seed=seed,
            backend=SerialBackend(),
            checkpoint_path=repaired,
            resume=True,
        )
        assert len(resumed.results) == len(tasks), (
            f"resume must finish all {len(tasks)} tasks, "
            f"got {len(resumed.results)}"
        )
        for task, result in zip(tasks, resumed.results):
            assert comparable(result) == baseline_by_key[task.key], (
                f"resumed task {task.key} diverged from the clean run"
            )
        assert checkpoint_main(["verify", repaired]) == 0
    print(
        "chaos-smoke OK: torn append repaired, stale lock taken over, "
        "resume bit-identical to the uninterrupted run"
    )


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 2 and sys.argv[1] == "--batch-child":
        raise SystemExit(_batch_child(sys.argv[2]))
    raise SystemExit(_smoke())
