"""Fault injection for the fault injector: a chaos harness for the backends.

The paper's campaigns inject bugs into the simulated core; this module
injects faults into the *execution layer* that runs those campaigns, so the
recovery machinery (retry, quarantine, watchdog, pool respawn, serial
degradation) can be exercised against real misbehavior instead of mocks.

:func:`chaos_runner` is a drop-in :data:`~repro.exec.backends.TaskRunner`
that executes the normal injection path, except for tasks whose keys appear
in the ``REPRO_CHAOS_*`` environment variables, which it sabotages instead.
Environment variables — not closures — carry the sabotage plan because pool
workers are separate processes: they inherit the parent's environment but
not its objects, and the runner itself is shipped to workers by module
reference.

Behaviors (each variable holds comma-separated task keys):

- ``REPRO_CHAOS_EXIT``: ``os._exit`` immediately — an unconditional hard
  worker crash (kills the current process, whoever it is).
- ``REPRO_CHAOS_EXIT_IN_WORKER``: ``os._exit`` only inside a pool worker
  process; in the parent the task runs normally. This makes degradation to
  serial testable — the pool keeps dying, the in-process fallback finishes.
- ``REPRO_CHAOS_RAISE``: raise :class:`ChaosError` (a deterministic
  "poison" task that fails every attempt).
- ``REPRO_CHAOS_HANG``: sleep for ``REPRO_CHAOS_HANG_S`` seconds (default
  3600) — a non-cooperative hang only the parent watchdog can clear.
- ``REPRO_CHAOS_TORN_APPEND`` (honored by
  :class:`~repro.exec.checkpoint.CheckpointWriter` itself, one task key):
  emit half of that task's checkpoint line and hard-exit — a deterministic
  SIGKILL-mid-append that leaves a torn tail *and* a stale writer lock.

``python -m repro.exec.chaos`` runs the end-to-end smoke used by CI:
a small parallel campaign with one worker-killer and one hung task must run
to completion, quarantine exactly those two as structured failures in the
checkpoint, keep every surviving result bit-identical to a clean serial
run, and then ``--resume`` must execute zero new tasks. A second scenario
SIGKILLs a ``repro campaign`` subprocess mid-append and asserts that
``repro checkpoint verify`` flags the torn tail, ``repair`` salvages every
intact record, the stale lock is taken over, and a resume of the repaired
file completes bit-identically to an uninterrupted run.

``python -m repro.exec.chaos --fabric`` runs the distributed-fabric chaos
smoke (see :mod:`repro.exec.fabric`): a real ``repro serve`` coordinator
plus three ``repro work`` subprocess workers, with one worker SIGKILLed
mid-shard (its lease must expire and the shard be reassigned) and the
coordinator SIGKILLed mid-campaign and restarted on the same port and
state directory (it must resume from the merged artifact). The surviving
fleet must finish the campaign with a fetched artifact whose exports are
byte-identical to a clean single-process ``--jobs 1`` run. A second,
in-process scenario blackholes a worker's heartbeats on a fake clock and
asserts lease expiry, reassignment, and a deterministic merge when both
the silent and the replacement worker upload the same shard.

``python -m repro.exec.chaos --net`` runs the network chaos smoke: a
matrix of seeded :class:`~repro.exec.fabric.FaultyTransport` schedules
(latency+drop, partition+heal, garbage+duplicate, truncate+blackhole)
under which a worker must still finish the campaign with a merged
artifact byte-identical to the serial reference and no shard ever
double-charged; an authenticated end-to-end scenario (unauthenticated,
wrong-secret, and replayed requests → 401 without state mutation; the
authed artifact byte-identical to the unauthed reference; the secret
leaking into no status output or artifact); and a permanent-partition
scenario where the worker's circuit breaker trips, seals partial work
to its workdir, exits 75, and a restarted worker on the same workdir
recovers the sealed upload and completes the campaign bit-identically.
Every schedule (seed and rules) is serialized next to the artifact it
produced, so any failure replays exactly.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Iterable, Optional, Set

from repro.exec.backends import ExecutionContext
from repro.exec.durability import ENV_TORN_APPEND, TORN_APPEND_EXIT_STATUS
from repro.exec.tasks import BatchedInjectionTask, execute_task

ENV_EXIT = "REPRO_CHAOS_EXIT"
ENV_EXIT_IN_WORKER = "REPRO_CHAOS_EXIT_IN_WORKER"
ENV_RAISE = "REPRO_CHAOS_RAISE"
ENV_HANG = "REPRO_CHAOS_HANG"
ENV_HANG_S = "REPRO_CHAOS_HANG_S"

#: All plan-carrying variables, for scrubbing between scenarios.
ALL_ENV_VARS = (
    ENV_EXIT,
    ENV_EXIT_IN_WORKER,
    ENV_RAISE,
    ENV_HANG,
    ENV_HANG_S,
    ENV_TORN_APPEND,
)

#: Exit status used for deliberate worker kills (recognizable in CI logs).
EXIT_STATUS = 17


class ChaosError(RuntimeError):
    """The deterministic failure raised for ``REPRO_CHAOS_RAISE`` tasks."""


def chaos_env(
    exit_keys: Iterable[str] = (),
    exit_in_worker_keys: Iterable[str] = (),
    raise_keys: Iterable[str] = (),
    hang_keys: Iterable[str] = (),
    hang_s: Optional[float] = None,
) -> Dict[str, str]:
    """Build the environment-variable plan for a chaos scenario.

    Returns only the variables that are set; callers (tests, the smoke
    harness) should clear :data:`ALL_ENV_VARS` first so plans don't leak
    between scenarios.
    """
    env: Dict[str, str] = {}
    if exit_keys:
        env[ENV_EXIT] = ",".join(exit_keys)
    if exit_in_worker_keys:
        env[ENV_EXIT_IN_WORKER] = ",".join(exit_in_worker_keys)
    if raise_keys:
        env[ENV_RAISE] = ",".join(raise_keys)
    if hang_keys:
        env[ENV_HANG] = ",".join(hang_keys)
    if hang_s is not None:
        env[ENV_HANG_S] = repr(hang_s)
    return env


def _keys(name: str) -> Set[str]:
    raw = os.environ.get(name, "")
    return {key for key in raw.split(",") if key}


def _in_pool_worker() -> bool:
    return multiprocessing.parent_process() is not None


def _maybe_sabotage(key: str) -> None:
    if key in _keys(ENV_EXIT):
        os._exit(EXIT_STATUS)
    if key in _keys(ENV_EXIT_IN_WORKER) and _in_pool_worker():
        os._exit(EXIT_STATUS)
    if key in _keys(ENV_RAISE):
        raise ChaosError(f"chaos: deterministic failure for task {key}")
    if key in _keys(ENV_HANG):
        time.sleep(float(os.environ.get(ENV_HANG_S, "3600")))


def chaos_runner(task: object, context: ExecutionContext) -> object:
    """The sabotage-aware task runner (see module docstring).

    A :class:`~repro.exec.tasks.BatchedInjectionTask` is executed member
    by member, with the sabotage check before *each* member — so a plan
    keyed on a later member kills (or poisons) the process genuinely
    mid-batch, after earlier members already produced results that the
    engine must then discard with the rest of the batch.
    """
    if isinstance(task, BatchedInjectionTask):
        golden = context.golden(task.benchmark)
        results = []
        for member in task.members:
            _maybe_sabotage(member.key)
            results.append(
                execute_task(
                    member,
                    context.programs[task.benchmark],
                    golden,
                    context.config,
                    snapshots=context.snapshots(task.benchmark),
                    deadline=context.deadline,
                    differential=context.differential,
                )
            )
        return results
    _maybe_sabotage(task.key)
    golden = context.golden(task.benchmark)
    return execute_task(
        task,
        context.programs[task.benchmark],
        golden,
        context.config,
        snapshots=context.snapshots(task.benchmark),
        deadline=context.deadline,
        differential=context.differential,
    )


# -- the CI smoke harness ------------------------------------------------------


def _scrub_env() -> None:
    for name in ALL_ENV_VARS:
        os.environ.pop(name, None)


def _smoke(jobs: int = 2) -> int:
    import tempfile

    from repro.bugs.models import PRIMARY_MODELS
    from repro.exec.backends import ProcessPoolBackend, SerialBackend
    from repro.exec.checkpoint import load_checkpoint_full, result_to_dict
    from repro.exec.engine import run_engine
    from repro.exec.resilience import FaultPolicy
    from repro.exec.tasks import generate_tasks
    from repro.workloads import WORKLOADS

    programs = {"bitcount": WORKLOADS["bitcount"](scale=0.5)}
    runs, seed = 4, 1
    tasks = generate_tasks(
        list(programs), runs, list(PRIMARY_MODELS), seed, 6
    )
    kill_key, hang_key = tasks[1].key, tasks[5].key
    print(f"chaos-smoke: {len(tasks)} tasks, jobs={jobs}")
    print(f"  kill: {kill_key}\n  hang: {hang_key}")

    def comparable(result) -> Dict[str, object]:
        # Everything but the throughput bookkeeping: wall-clock measurement
        # and warm-start/differential accounting vary with *how* a run was
        # executed; every simulation outcome must not.
        record = result_to_dict(result)
        record.pop("sim_wall_ns")
        record.pop("warm_start_cycles_skipped")
        record.pop("early_terminated_cycle")
        return record

    # Clean serial reference: what every surviving task must reproduce.
    _scrub_env()
    baseline = run_engine(programs, runs, seed=seed, backend=SerialBackend())
    baseline_by_key = {
        task.key: comparable(result)
        for task, result in zip(tasks, baseline.results)
    }

    # Hang timeout = task_timeout_s + grace; the hung task burns two of
    # those (one per attempt), so keep them short but far above the ~tens
    # of milliseconds a real bitcount task needs.
    policy = FaultPolicy(
        task_timeout_s=10.0, watchdog_grace_s=2.0, max_task_retries=1
    )
    os.environ.update(
        chaos_env(exit_keys=[kill_key], hang_keys=[hang_key], hang_s=600.0)
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "chaos.jsonl")
        campaign = run_engine(
            programs,
            runs,
            seed=seed,
            backend=ProcessPoolBackend(jobs, policy=policy),
            checkpoint_path=path,
            task_runner=chaos_runner,
        )

        assert len(campaign.results) == len(tasks) - 2, (
            f"expected {len(tasks) - 2} survivors, got {len(campaign.results)}"
        )
        kinds = {rec.key: rec.failure.kind for rec in campaign.failures}
        assert kinds == {kill_key: "worker-crash", hang_key: "timeout"}, kinds
        for rec in campaign.failures:
            assert rec.failure.attempts == policy.max_attempts_per_task

        _, done, quarantined = load_checkpoint_full(path)
        assert set(quarantined) == {kill_key, hang_key}
        assert len(done) == len(tasks) - 2
        for key, (_, result) in done.items():
            assert comparable(result) == baseline_by_key[key], (
                f"survivor {key} diverged from the clean serial run"
            )
        print("chaos-smoke: survivors bit-identical to clean serial run")

        # Resume must execute nothing: all work is completed or quarantined.
        events = []
        resumed = run_engine(
            programs,
            runs,
            seed=seed,
            backend=ProcessPoolBackend(jobs, policy=policy),
            checkpoint_path=path,
            resume=True,
            observers=[events.append],
            task_runner=chaos_runner,
        )
        executed = sum(1 for event in events if event.benchmark is not None)
        assert executed == 0, f"resume executed {executed} tasks"
        assert len(resumed.results) == len(tasks) - 2
        assert len(resumed.failures) == 2
    _scrub_env()
    print(
        f"chaos-smoke OK: {len(campaign.results)} completed, "
        f"{campaign.quarantined} quarantined, resume executed 0 tasks"
    )
    _smoke_torn_append(programs, runs, seed, tasks, baseline_by_key, comparable)
    _smoke_midbatch_kill(programs, runs, seed, tasks, baseline_by_key, comparable)
    return 0


#: Parameters shared by the mid-batch scenario parent and ``--batch-child``.
_BATCH_CHILD_SCALE = 0.5
_BATCH_CHILD_RUNS = 4
_BATCH_CHILD_SEED = 1
_BATCH_CHILD_INTERVAL = 100
_BATCH_CHILD_SIZE = 4


def _batch_child(path: str) -> int:
    """Run a batched differential campaign against ``path`` (see below).

    ``python -m repro.exec.chaos --batch-child <checkpoint>`` is the
    subprocess half of the mid-batch SIGKILL scenario: a serial campaign
    with batching and differential execution on, dying by ``os._exit``
    when the inherited ``REPRO_CHAOS_EXIT`` plan names a batch member.
    Run again with a scrubbed environment it resumes the checkpoint.
    """
    from repro.exec.backends import SerialBackend
    from repro.exec.engine import run_engine
    from repro.workloads import WORKLOADS

    programs = {"bitcount": WORKLOADS["bitcount"](scale=_BATCH_CHILD_SCALE)}
    run_engine(
        programs,
        _BATCH_CHILD_RUNS,
        seed=_BATCH_CHILD_SEED,
        backend=SerialBackend(),
        checkpoint_path=path,
        resume=os.path.exists(path),
        snapshot_interval=_BATCH_CHILD_INTERVAL,
        differential=True,
        batch_size=_BATCH_CHILD_SIZE,
        task_runner=chaos_runner,
    )
    return 0


def _smoke_midbatch_kill(
    programs, runs, seed, tasks, baseline_by_key, comparable
) -> None:
    """SIGKILL a campaign mid-batch; resume must lose and repeat nothing.

    A ``--batch-child`` subprocess runs a batched differential campaign
    and hard-exits while executing the *second* member of a multi-member
    batch — after that batch's first member already simulated, but before
    any of the batch reached the checkpoint (batch outcomes are written
    only once the whole batch returns). The resumed child must complete
    the campaign with every task appearing in the checkpoint exactly once
    (none lost, none double-counted) and every result bit-identical to
    the clean serial baseline.
    """
    import json
    import subprocess
    import sys
    import tempfile
    from collections import Counter

    from repro.exec.backends import ExecutionContext
    from repro.exec.checkpoint import load_checkpoint_full
    from repro.exec.tasks import group_into_batches

    # Replay the child's batch grouping to aim the kill at a mid-batch
    # member: the second member of a multi-member batch that is not the
    # first dispatched unit, so some earlier results are already
    # checkpointed when the process dies.
    context = ExecutionContext(programs=programs, config=None)
    goldens = {name: context.golden(name) for name in programs}
    batches = group_into_batches(
        tasks, goldens, None, _BATCH_CHILD_INTERVAL, _BATCH_CHILD_SIZE
    )
    target = next(
        unit
        for unit in batches[1:]
        if isinstance(unit, BatchedInjectionTask) and len(unit.members) >= 2
    )
    kill_key = target.members[1].key
    batch_keys = {member.key for member in target.members}

    _scrub_env()
    clean_env = {
        name: value
        for name, value in os.environ.items()
        if name not in ALL_ENV_VARS
    }
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "midbatch.jsonl")
        child = subprocess.run(
            [sys.executable, "-m", "repro.exec.chaos", "--batch-child", path],
            env=dict(clean_env, **{ENV_EXIT: kill_key}),
            capture_output=True,
            text=True,
        )
        assert child.returncode == EXIT_STATUS, (
            f"expected mid-batch kill exit {EXIT_STATUS}, got "
            f"{child.returncode}: {child.stderr}"
        )
        with open(path) as handle:
            keys_before = [
                record["key"]
                for record in map(json.loads, handle)
                if record.get("type") == "result"
            ]
        assert 0 < len(keys_before) < len(tasks), (
            f"kill must land mid-campaign, got {len(keys_before)} records"
        )
        assert not batch_keys & set(keys_before), (
            "no member of a killed batch may reach the checkpoint"
        )

        resumed = subprocess.run(
            [sys.executable, "-m", "repro.exec.chaos", "--batch-child", path],
            env=clean_env,
            capture_output=True,
            text=True,
        )
        assert resumed.returncode == 0, (
            f"resume failed ({resumed.returncode}): {resumed.stderr}"
        )
        with open(path) as handle:
            key_counts = Counter(
                record["key"]
                for record in map(json.loads, handle)
                if record.get("type") == "result"
            )
        expected = Counter(task.key for task in tasks)
        assert key_counts == expected, (
            "resume lost or double-counted tasks: "
            f"{key_counts - expected} extra, {expected - key_counts} missing"
        )
        _, done, quarantined = load_checkpoint_full(path)
        assert not quarantined and len(done) == len(tasks)
        for key, (_, result) in done.items():
            assert comparable(result) == baseline_by_key[key], (
                f"task {key} diverged from the clean serial baseline"
            )
    print(
        "chaos-smoke OK: mid-batch kill resumed with every task exactly "
        f"once ({len(tasks)} results, kill at {kill_key})"
    )


def _smoke_torn_append(
    programs, runs, seed, tasks, baseline_by_key, comparable
) -> None:
    """Kill ``repro campaign`` mid-append, then verify → repair → resume.

    The writer process dies after emitting half of one record's line (a
    deterministic SIGKILL-mid-append), leaving a torn tail and a stale
    writer lock. ``repro checkpoint verify`` must flag the damage,
    ``repair`` must salvage everything but the torn record, the dead
    owner's lock must be taken over, and a resume of the repaired file
    must complete bit-identically to an uninterrupted run.
    """
    import subprocess
    import sys
    import tempfile

    from repro.exec.backends import SerialBackend
    from repro.exec.checkpoint import load_checkpoint_full
    from repro.exec.cli import checkpoint_main
    from repro.exec.durability import lock_path_for, scan_checkpoint
    from repro.exec.engine import run_engine

    torn_key = tasks[2].key  # third record: manifest + 2 intact + torn tail
    _scrub_env()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "torn.jsonl")
        child = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "--runs",
                str(runs),
                "--benchmarks",
                "bitcount",
                "--scale",
                "0.5",
                "--seed",
                str(seed),
                "--checkpoint",
                path,
                "--snapshot-interval",
                "0",  # cold starts, comparable to the cold baseline
                "--no-progress",
                "--figures",
                "3",
            ],
            env=dict(os.environ, **{ENV_TORN_APPEND: torn_key}),
            capture_output=True,
            text=True,
        )
        assert child.returncode == TORN_APPEND_EXIT_STATUS, (
            f"expected torn-append exit {TORN_APPEND_EXIT_STATUS}, got "
            f"{child.returncode}: {child.stderr}"
        )
        assert os.path.exists(lock_path_for(path)), (
            "a killed writer must leave its lock behind"
        )

        report = scan_checkpoint(path)
        assert report.torn_tail and not report.interior_issues, report.issues
        assert report.records == 2, f"expected 2 intact records, {report}"
        assert checkpoint_main(["verify", path]) == 1, (
            "verify must flag a torn tail with a nonzero exit"
        )
        print(f"chaos-smoke: torn tail at {path}:{report.issues[0].lineno} "
              "flagged by verify")

        repaired = os.path.join(tmp, "torn.repaired.jsonl")
        assert checkpoint_main(["repair", path, "-o", repaired]) == 0
        assert checkpoint_main(["verify", repaired]) == 0, (
            "a repaired checkpoint must verify clean"
        )
        _, done, quarantined = load_checkpoint_full(repaired)
        assert len(done) == 2 and not quarantined, (
            f"repair must salvage exactly the 2 intact records, got {done}"
        )

        # Park the dead owner's lock next to the repaired file: the resume
        # must take it over (same host, provably dead PID), not refuse.
        os.replace(lock_path_for(path), lock_path_for(repaired))
        resumed = run_engine(
            programs,
            runs,
            seed=seed,
            backend=SerialBackend(),
            checkpoint_path=repaired,
            resume=True,
        )
        assert len(resumed.results) == len(tasks), (
            f"resume must finish all {len(tasks)} tasks, "
            f"got {len(resumed.results)}"
        )
        for task, result in zip(tasks, resumed.results):
            assert comparable(result) == baseline_by_key[task.key], (
                f"resumed task {task.key} diverged from the clean run"
            )
        assert checkpoint_main(["verify", repaired]) == 0
    print(
        "chaos-smoke OK: torn append repaired, stale lock taken over, "
        "resume bit-identical to the uninterrupted run"
    )


# -- the distributed-fabric chaos smoke ----------------------------------------

#: Parameters shared by the fabric scenarios and their serial reference.
_FABRIC_BENCHMARK = "bitcount"
_FABRIC_SCALE = 0.5
_FABRIC_RUNS = 6
_FABRIC_SEED = 1
_FABRIC_SHARD = 2


def _fabric_reference():
    """The clean ``--jobs 1`` reference exports every fabric artifact must
    reproduce byte for byte (CSV carries no wall-clock fields; JSON golden
    summaries come from the manifest either way)."""
    from repro.analysis.export import to_csv, to_json
    from repro.exec.backends import SerialBackend
    from repro.exec.engine import run_engine
    from repro.workloads import WORKLOADS

    programs = {
        _FABRIC_BENCHMARK: WORKLOADS[_FABRIC_BENCHMARK](scale=_FABRIC_SCALE)
    }
    campaign = run_engine(
        programs, _FABRIC_RUNS, seed=_FABRIC_SEED, backend=SerialBackend()
    )
    return to_csv(campaign), to_json(campaign)


def _free_port() -> int:
    import socket

    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _wait_for(predicate, deadline_s: float, what: str):
    """Poll ``predicate`` until it returns a truthy value or the deadline
    lapses (transport errors count as 'not yet')."""
    from repro.exec.fabric import TransportError

    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            value = predicate()
        except TransportError:
            value = None
        if value:
            return value
        time.sleep(0.2)
    raise AssertionError(f"timed out after {deadline_s:.0f}s waiting for {what}")


def _smoke_fabric_fleet() -> None:
    """Kill a worker and the coordinator mid-campaign; the artifact must
    not notice.

    Three ``repro work`` subprocesses against a real ``repro serve``
    coordinator. The first worker is SIGKILLed while holding a lease; the
    coordinator must expire that lease and hand the shard to someone else.
    Then the coordinator itself is SIGKILLed mid-campaign and restarted on
    the same port and state directory; the restart must resume from the
    merged artifact (never re-executing merged work) and the fleet must
    finish. The fetched artifact has to verify clean and export
    byte-identically to the serial reference.
    """
    import signal
    import subprocess
    import sys
    import tempfile

    from repro.cli import repro_main
    from repro.exec.cli import checkpoint_main
    from repro.exec.fabric import HttpTransport

    ref_csv, ref_json = _fabric_reference()
    port = _free_port()
    url = f"http://127.0.0.1:{port}"
    transport = HttpTransport(url, timeout_s=10.0)

    def serve(state_dir: str) -> "subprocess.Popen":
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", state_dir,
                "--host", "127.0.0.1", "--port", str(port),
                "--lease-ttl", "5", "--no-progress",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def work(workdir: str) -> "subprocess.Popen":
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "work",
                "--coordinator", url,
                "--workdir", workdir,
                "--poll", "0.2",
                "--snapshot-interval", "100",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    procs = []
    with tempfile.TemporaryDirectory() as tmp:
        state_dir = os.path.join(tmp, "state")
        try:
            coordinator = serve(state_dir)
            procs.append(coordinator)
            _wait_for(
                lambda: transport.status().get("state") is not None,
                30, "the coordinator to come up",
            )
            assert repro_main([
                "submit", "--coordinator", url,
                "--runs", str(_FABRIC_RUNS),
                "--benchmarks", _FABRIC_BENCHMARK,
                "--seed", str(_FABRIC_SEED),
                "--scale", str(_FABRIC_SCALE),
                "--shard-size", str(_FABRIC_SHARD),
            ]) == 0, "repro submit failed"
            total = transport.status()["total_tasks"]
            shards = transport.status()["shards"]["total"]
            print(
                f"fabric-chaos: {total} tasks in {shards} shards on {url}"
            )

            # One worker, killed while it holds a lease: the coordinator
            # must reclaim the shard by lease expiry, with nobody there to
            # release it politely.
            victim_dir = os.path.join(tmp, "w1")
            os.makedirs(victim_dir)
            victim = work(victim_dir)
            procs.append(victim)
            _wait_for(
                lambda: transport.status()["shards"]["leased"] > 0,
                30, "the victim worker to lease a shard",
            )
            victim.kill()
            victim.wait()
            assert victim.returncode == -signal.SIGKILL
            _wait_for(
                lambda: transport.status()["shards"]["leased"] == 0,
                30, "the dead worker's lease to expire",
            )
            status = transport.status()
            assert status["state"] == "running", (
                "one dead worker must not finish (or wedge) the campaign"
            )
            print(
                "fabric-chaos: worker SIGKILLed mid-shard, lease expired "
                f"(merged so far: {status['done_tasks']}/{total})"
            )

            # The surviving fleet.
            workers = []
            for name in ("w2", "w3"):
                workdir = os.path.join(tmp, name)
                os.makedirs(workdir)
                workers.append(work(workdir))
            procs.extend(workers)

            # Kill the coordinator mid-campaign, restart it on the same
            # port and state directory.
            _wait_for(
                lambda: transport.status()["done_tasks"] >= _FABRIC_SHARD,
                60, "some shards to merge before the coordinator dies",
            )
            merged_before = transport.status()["done_tasks"]
            coordinator.kill()
            coordinator.wait()
            assert coordinator.returncode == -signal.SIGKILL
            coordinator = serve(state_dir)
            procs.append(coordinator)
            resumed = _wait_for(
                lambda: transport.status(),
                30, "the restarted coordinator to come up",
            )
            assert resumed["done_tasks"] >= merged_before, (
                "a coordinator restart must not lose merged work "
                f"({resumed['done_tasks']} < {merged_before})"
            )
            print(
                "fabric-chaos: coordinator SIGKILLed and restarted with "
                f"{resumed['done_tasks']}/{total} tasks already merged"
            )

            final = _wait_for(
                lambda: (lambda s: s if s["state"] == "done" else None)(
                    transport.status()
                ),
                180, "the fleet to finish the campaign",
            )
            assert final["done_tasks"] == total, final
            assert not final["quarantined_shards"], final
            for worker in workers:
                assert worker.wait(timeout=30) == 0, (
                    "surviving workers must exit 0 once the campaign is done"
                )

            artifact = os.path.join(tmp, "fetched.jsonl")
            assert repro_main(
                ["fetch", "--coordinator", url, "-o", artifact]
            ) == 0
            assert checkpoint_main(["verify", artifact]) == 0, (
                "the fetched artifact must be CRC-clean"
            )
            from repro.analysis.export import (
                campaign_from_checkpoint,
                to_csv,
                to_json,
            )

            campaign = campaign_from_checkpoint(artifact)
            assert not campaign.failures, campaign.failures
            assert to_csv(campaign) == ref_csv, (
                "fleet CSV export diverged from the serial reference"
            )
            assert to_json(campaign) == ref_json, (
                "fleet JSON export diverged from the serial reference"
            )
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait()
    print(
        "fabric-chaos OK: worker kill + coordinator kill/restart survived, "
        f"artifact byte-identical to --jobs 1 ({total} tasks)"
    )


def _smoke_fabric_blackhole() -> None:
    """Heartbeat blackhole: a silent worker loses its lease, the shard is
    reassigned, and when *both* workers eventually upload the same shard
    the merge stays deterministic — one record per task, exports
    byte-identical to the serial reference.

    Runs in-process on a fake clock (the coordinator's timeline is
    injectable) so lease expiry is exact, not sleep-based.
    """
    import tempfile

    from repro.analysis.export import (
        campaign_from_checkpoint,
        to_csv,
        to_json,
    )
    from repro.exec.engine import run_engine
    from repro.exec.fabric import (
        CampaignSpec,
        FabricCoordinator,
        FabricPolicy,
    )
    from repro.workloads import WORKLOADS

    ref_csv, ref_json = _fabric_reference()
    clock_now = [0.0]
    spec = CampaignSpec(
        benchmarks=(_FABRIC_BENCHMARK,),
        runs_per_model=_FABRIC_RUNS,
        seed=_FABRIC_SEED,
        scale=_FABRIC_SCALE,
        shard_size=_FABRIC_SHARD,
    )
    programs = {
        _FABRIC_BENCHMARK: WORKLOADS[_FABRIC_BENCHMARK](scale=_FABRIC_SCALE)
    }

    def run_shard(tmp: str, name: str, keys):
        import zlib

        path = os.path.join(tmp, f"{name}.jsonl")
        run_engine(
            programs,
            _FABRIC_RUNS,
            seed=_FABRIC_SEED,
            checkpoint_path=path,
            shard_keys=list(keys),
        )
        with open(path, "rb") as handle:
            data = handle.read()
        return data, zlib.crc32(data) & 0xFFFFFFFF

    with tempfile.TemporaryDirectory() as tmp:
        coordinator = FabricCoordinator(
            os.path.join(tmp, "state"),
            policy=FabricPolicy(lease_ttl_s=60.0, reassign_backoff_max_s=0.0),
            clock=lambda: clock_now[0],
        )
        coordinator.submit(spec.to_dict())

        # The silent worker takes a lease and never heartbeats again.
        silent = coordinator.request("w-silent")["lease"]
        assert silent is not None
        clock_now[0] += 61.0  # one whole TTL of silence
        assert not coordinator.heartbeat(
            "w-silent", silent["shard"], silent["token"]
        ), "a silent worker's heartbeat must find its lease gone"

        # The shard must be reassigned to the next worker that asks.
        release = coordinator.request("w-replacement")["lease"]
        assert release is not None and release["shard"] == silent["shard"], (
            f"expected shard {silent['shard']} reassigned, got {release}"
        )

        # Both finish the same shard; the replacement merges first, the
        # silent worker's late upload (stale token!) must still be
        # accepted and dedup to the same records.
        data, crc = run_shard(tmp, "replacement", release["keys"])
        accepted = coordinator.upload(
            "w-replacement", release["shard"], release["token"], data, crc
        )
        assert accepted["ok"] and accepted["new_records"] == len(
            release["keys"]
        ), accepted
        coordinator.release(
            "w-replacement", release["shard"], release["token"], "complete"
        )
        late_data, late_crc = run_shard(tmp, "silent", silent["keys"])
        late = coordinator.upload(
            "w-silent", silent["shard"], silent["token"], late_data, late_crc
        )
        assert late["ok"] and late["new_records"] == 0, (
            f"a late duplicate upload must merge to nothing new: {late}"
        )

        # Drain the rest of the campaign with the replacement worker.
        while True:
            response = coordinator.request("w-replacement")
            lease = response["lease"]
            if lease is None:
                assert response["done"], response
                break
            data, crc = run_shard(
                tmp, f"shard-{lease['shard']}", lease["keys"]
            )
            assert coordinator.upload(
                "w-replacement", lease["shard"], lease["token"], data, crc
            )["ok"]
            coordinator.release(
                "w-replacement", lease["shard"], lease["token"], "complete"
            )

        campaign = campaign_from_checkpoint(coordinator.artifact_path)
        assert to_csv(campaign) == ref_csv and to_json(campaign) == ref_json, (
            "blackhole-merged artifact diverged from the serial reference"
        )
    print(
        "fabric-chaos OK: heartbeat blackhole expired the lease, the shard "
        "was reassigned, and the double upload merged deterministically"
    )


def _smoke_fabric() -> int:
    _scrub_env()
    _smoke_fabric_fleet()
    _smoke_fabric_blackhole()
    return 0


# -- the network chaos smoke ---------------------------------------------------


def _net_spec():
    from repro.exec.fabric import CampaignSpec

    return CampaignSpec(
        benchmarks=(_FABRIC_BENCHMARK,),
        runs_per_model=_FABRIC_RUNS,
        seed=_FABRIC_SEED,
        scale=_FABRIC_SCALE,
        shard_size=_FABRIC_SHARD,
    )


def _net_mixes():
    """The fault-schedule matrix: every kind the injector knows, mixed the
    way real networks mix them. Each mix is (name, schedule)."""
    from repro.exec.fabric import FaultRule, FaultSchedule

    return (
        (
            "latency+drop",
            FaultSchedule(seed=101, rules=(
                FaultRule(kind="latency", p=0.3, latency_s=0.01),
                FaultRule(kind="drop", p=0.25),
            )),
        ),
        (
            "partition+heal",
            # Asymmetric outage windows per endpoint, then everything
            # heals: calls inside the window never reach the coordinator.
            FaultSchedule(seed=102, rules=(
                FaultRule(kind="partition", endpoint="request",
                          first_call=2, last_call=4),
                FaultRule(kind="partition", endpoint="upload",
                          first_call=1, last_call=3),
                FaultRule(kind="partition", endpoint="heartbeat",
                          first_call=1, last_call=5),
            )),
        ),
        (
            "garbage+duplicate",
            FaultSchedule(seed=103, rules=(
                FaultRule(kind="garbage", p=0.2),
                FaultRule(kind="duplicate", p=0.3),
            )),
        ),
        (
            "truncate+blackhole",
            # Responses destroyed *after* the request was applied — the
            # pure idempotency torture: every retry re-applies something
            # that already happened.
            FaultSchedule(seed=104, rules=(
                FaultRule(kind="truncate", endpoint="upload", p=0.25),
                FaultRule(kind="blackhole-response", endpoint="request",
                          p=0.2),
                FaultRule(kind="blackhole-response", endpoint="release",
                          p=0.5),
            )),
        ),
    )


def _net_check_artifact(coordinator, ref_csv: str, ref_json: str,
                        what: str) -> None:
    """The acceptance bar: CRC-clean and byte-identical to ``--jobs 1``."""
    from repro.analysis.export import (
        campaign_from_checkpoint,
        to_csv,
        to_json,
    )
    from repro.exec.cli import checkpoint_main

    assert checkpoint_main(["verify", coordinator.artifact_path]) == 0, (
        f"{what}: merged artifact must verify clean"
    )
    campaign = campaign_from_checkpoint(coordinator.artifact_path)
    assert not campaign.failures, f"{what}: {campaign.failures}"
    assert to_csv(campaign) == ref_csv, (
        f"{what}: CSV export diverged from the serial reference"
    )
    assert to_json(campaign) == ref_json, (
        f"{what}: JSON export diverged from the serial reference"
    )


def _smoke_net_mix(name: str, schedule, ref_csv: str, ref_json: str) -> None:
    """One fault mix: a worker behind a FaultyTransport must finish the
    campaign with a byte-identical artifact and no shard double-charged."""
    import json as json_mod
    import tempfile

    from repro.exec.fabric import (
        FabricCoordinator,
        FabricPolicy,
        FabricWorker,
        FaultyTransport,
        LocalTransport,
    )

    with tempfile.TemporaryDirectory() as tmp:
        coordinator = FabricCoordinator(
            os.path.join(tmp, "state"),
            policy=FabricPolicy(reassign_backoff_max_s=0.0),
        )
        coordinator.submit(_net_spec().to_dict())
        faulty = FaultyTransport(
            LocalTransport(coordinator),
            schedule,
            sleep=lambda s: time.sleep(min(s, 0.01)),  # test-speed latency
        )
        worker = FabricWorker(
            faulty,
            worker_id=f"net-{schedule.seed}",
            workdir=os.path.join(tmp, "work"),
            snapshot_interval=100,
            poll_s=0.05,
            sleep=lambda s: time.sleep(min(s, 0.02)),  # test-speed backoff
        )
        code = worker.run()
        assert code == 0, f"{name}: worker exited {code}"
        assert faulty.injected, (
            f"{name}: the schedule injected nothing — this mix proves "
            "nothing; widen its windows or raise its probabilities"
        )
        # A healed (or merely lossy) network must never charge a shard:
        # charges are for dead/hung workers, and this worker was neither.
        charged = [s.index for s in coordinator.shards if s.failed_workers]
        assert not charged, f"{name}: shards {charged} were double-charged"
        # The replay contract: the exact schedule rides with the artifact.
        with open(
            os.path.join(coordinator.state_dir, "fault-schedule.json"), "w"
        ) as handle:
            json_mod.dump(schedule.to_dict(), handle, sort_keys=True)
        _net_check_artifact(coordinator, ref_csv, ref_json, name)
        tally = faulty.injected_by_kind()
    print(
        f"net-chaos OK [{name}]: seed={schedule.seed}, "
        f"injected={json_mod.dumps(tally, sort_keys=True)}, "
        "artifact byte-identical to --jobs 1"
    )


def _smoke_net_auth(ref_csv: str, ref_json: str) -> None:
    """Authenticated RPC end-to-end: forgeries and replays bounce off with
    401 and no state change; the authed campaign is byte-identical; the
    secret leaks nowhere."""
    import json as json_mod
    import tempfile
    import threading as threading_mod
    import urllib.error
    import urllib.request

    from repro.exec.fabric import (
        FabricCoordinator,
        FabricRejected,
        FabricWorker,
        HttpTransport,
        NONCE_HEADER,
        SIGNATURE_HEADER,
        TIMESTAMP_HEADER,
        make_http_server,
        sign_request,
    )

    secret = b"net-chaos-shared-secret"
    with tempfile.TemporaryDirectory() as tmp:
        coordinator = FabricCoordinator(os.path.join(tmp, "state"))
        server = make_http_server(coordinator, port=0, secret=secret)
        host, port = server.server_address[:2]
        url = f"http://{host}:{port}"
        thread = threading_mod.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            for label, transport in (
                ("unauthenticated", HttpTransport(url, timeout_s=10.0)),
                ("wrong-secret",
                 HttpTransport(url, timeout_s=10.0, secret=b"not-it")),
            ):
                try:
                    transport.status()
                    raise AssertionError(
                        f"a {label} request must be rejected"
                    )
                except FabricRejected as exc:
                    assert exc.code == 401, f"{label}: {exc}"
            assert coordinator.spec is None, (
                "rejected requests must not have touched the coordinator"
            )

            authed = HttpTransport(url, timeout_s=10.0, secret=secret)
            authed.submit(_net_spec().to_dict())

            # A captured-and-resent request (same bytes, same nonce) is a
            # replay: first send works, second bounces with 401 and the
            # lease book doesn't move.
            body = json_mod.dumps({"worker": "replay-w"}).encode("utf-8")
            timestamp = f"{time.time():.3f}"
            nonce = "replayed-nonce-0001"
            headers = {
                "Content-Type": "application/json",
                TIMESTAMP_HEADER: timestamp,
                NONCE_HEADER: nonce,
                SIGNATURE_HEADER: sign_request(
                    secret, "POST", "/api/request", timestamp, nonce, body
                ),
            }
            first = json_mod.loads(
                urllib.request.urlopen(
                    urllib.request.Request(
                        url + "/api/request", data=body, headers=headers
                    ),
                    timeout=10.0,
                ).read()
            )
            assert first["lease"] is not None, first
            grants_before = [s.grants for s in coordinator.shards]
            try:
                urllib.request.urlopen(
                    urllib.request.Request(
                        url + "/api/request", data=body, headers=headers
                    ),
                    timeout=10.0,
                )
                raise AssertionError("a replayed request must be rejected")
            except urllib.error.HTTPError as exc:
                assert exc.code == 401, exc
            assert [s.grants for s in coordinator.shards] == grants_before, (
                "the replay mutated the lease book"
            )
            authed.release(
                "replay-w", first["lease"]["shard"],
                first["lease"]["token"], "drain",
            )

            # The authed fleet must produce the same bytes as anyone else.
            worker = FabricWorker(
                authed,
                worker_id="auth-w",
                workdir=os.path.join(tmp, "work"),
                snapshot_interval=100,
                poll_s=0.05,
            )
            assert worker.run() == 0
            _net_check_artifact(coordinator, ref_csv, ref_json, "auth")

            # The secret must appear in no status output and no artifact.
            status_blob = json_mod.dumps(authed.status())
            with open(coordinator.artifact_path, "rb") as handle:
                artifact_blob = handle.read()
            assert secret.decode() not in status_blob, "secret in status"
            assert secret not in artifact_blob, "secret in artifact"
        finally:
            server.shutdown()
            thread.join(timeout=5.0)
    print(
        "net-chaos OK [auth]: unauthenticated/wrong-secret/replayed all "
        "401 without state change; authed artifact byte-identical; "
        "secret leaked nowhere"
    )


def _smoke_net_breaker(ref_csv: str, ref_json: str) -> None:
    """Permanent partition: the breaker trips, partial work is sealed to
    the workdir, the worker exits 75 — and the documented resume (restart
    in the same workdir once the network heals) completes the campaign
    byte-identically. Runs on a fake clock so 'five minutes offline'
    takes milliseconds."""
    import tempfile

    from repro.exec.durability import SHUTDOWN_EXIT_CODE
    from repro.exec.fabric import (
        FabricCoordinator,
        FabricWorker,
        FaultRule,
        FaultSchedule,
        FaultyTransport,
        LocalTransport,
    )

    # Everything except the very first work request is partitioned away:
    # the worker wins a lease, computes, and then finds the world gone.
    schedule = FaultSchedule(seed=105, rules=(
        FaultRule(kind="partition", endpoint="request", first_call=2),
        FaultRule(kind="partition", endpoint="heartbeat"),
        FaultRule(kind="partition", endpoint="upload"),
        FaultRule(kind="partition", endpoint="release"),
    ))
    clock_now = [0.0]

    def advancing_sleep(seconds: float) -> None:
        clock_now[0] += seconds

    with tempfile.TemporaryDirectory() as tmp:
        workdir = os.path.join(tmp, "work")
        coordinator = FabricCoordinator(os.path.join(tmp, "state"))
        coordinator.submit(_net_spec().to_dict())
        worker = FabricWorker(
            FaultyTransport(LocalTransport(coordinator), schedule),
            worker_id="breaker-w",
            workdir=workdir,
            snapshot_interval=100,
            poll_s=0.05,
            offline_budget_s=1.0,
            clock=lambda: clock_now[0],
            sleep=advancing_sleep,
        )
        code = worker.run()
        assert code == SHUTDOWN_EXIT_CODE, (
            f"a permanent partition must exit {SHUTDOWN_EXIT_CODE}, "
            f"got {code}"
        )
        assert worker.offline, "the breaker must mark the run offline"
        assert worker.sealed_paths and all(
            os.path.exists(path) for path in worker.sealed_paths
        ), "partial work must be sealed to the workdir"
        assert coordinator.status()["done_tasks"] == 0, (
            "nothing can have crossed a total partition"
        )
        print(
            "net-chaos: breaker tripped after "
            f"{worker.offline_budget_s:.0f}s (fake) offline; sealed "
            f"{len(worker.sealed_paths)} partial(s); exit {code}"
        )

        # The resume hint, executed: same workdir, healed network.
        resumed = FabricWorker(
            LocalTransport(coordinator),
            worker_id="breaker-w",
            workdir=workdir,
            snapshot_interval=100,
            poll_s=0.05,
        )
        assert resumed.run() == 0
        leftovers = [
            path for path in worker.sealed_paths if os.path.exists(path)
        ]
        assert not leftovers, (
            f"recovered seals must be deleted, found {leftovers}"
        )
        _net_check_artifact(coordinator, ref_csv, ref_json, "breaker-resume")
    print(
        "net-chaos OK [breaker]: sealed partial recovered on restart, "
        "campaign completed byte-identical to --jobs 1"
    )


def _smoke_net() -> int:
    _scrub_env()
    ref_csv, ref_json = _fabric_reference()
    for name, schedule in _net_mixes():
        _smoke_net_mix(name, schedule, ref_csv, ref_json)
    _smoke_net_auth(ref_csv, ref_json)
    _smoke_net_breaker(ref_csv, ref_json)
    return 0


if __name__ == "__main__":
    import sys

    if len(sys.argv) > 2 and sys.argv[1] == "--batch-child":
        raise SystemExit(_batch_child(sys.argv[2]))
    if len(sys.argv) > 1 and sys.argv[1] == "--fabric":
        raise SystemExit(_smoke_fabric())
    if len(sys.argv) > 1 and sys.argv[1] == "--net":
        raise SystemExit(_smoke_net())
    raise SystemExit(_smoke())
