"""Append-only JSONL checkpointing for campaigns (``--checkpoint/--resume``).

File layout: line 1 is a ``manifest`` record pinning the campaign identity
(seed, models, benchmarks, runs, golden-run summaries); every later line is
one completed task ``result`` record — or one ``failure`` record for a task
the execution layer quarantined (kind ∈ {exception, timeout, worker-crash},
attempts, truncated traceback) — appended in completion order. Records
carry the canonical task index, so a campaign rebuilt from a checkpoint is
re-sorted into task order and is identical to an uninterrupted run; a
resume skips quarantined tasks instead of re-crashing on them.

A process killed mid-append may leave a truncated final line; the loader
tolerates (and drops) exactly that — a malformed line anywhere else is a
corruption error.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, IO, List, Optional, Tuple

from repro.analysis.outcomes import OutcomeClass
from repro.bugs.campaign import InjectionResult
from repro.bugs.models import BugModel, BugSpec
from repro.core.cpu import RunResult
from repro.core.rrs.signals import ArrayName, SignalKind
from repro.exec.resilience import TaskFailure, TaskFailureRecord
from repro.exec.tasks import InjectionTask

#: Checkpoint format version; readers reject anything else.
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised on corrupt or mismatched checkpoint files."""


@dataclass(frozen=True)
class GoldenSummary:
    """The golden-run facts a checkpoint preserves (duck-types RunResult
    for :func:`repro.analysis.export.to_json`)."""

    cycles: int
    committed: int


@dataclass
class Manifest:
    """Identity of the campaign a checkpoint belongs to."""

    seed: int
    runs_per_model: int
    models: List[str]
    benchmarks: List[str]
    max_attempts: int
    goldens: Dict[str, GoldenSummary]

    def to_record(self) -> Dict[str, object]:
        return {
            "type": "manifest",
            "version": FORMAT_VERSION,
            "seed": self.seed,
            "runs_per_model": self.runs_per_model,
            "models": self.models,
            "benchmarks": self.benchmarks,
            "max_attempts": self.max_attempts,
            "goldens": {
                name: {"cycles": g.cycles, "committed": g.committed}
                for name, g in self.goldens.items()
            },
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Manifest":
        if record.get("type") != "manifest":
            raise CheckpointError("checkpoint does not start with a manifest")
        if record.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {record.get('version')!r}"
            )
        return cls(
            seed=record["seed"],
            runs_per_model=record["runs_per_model"],
            models=list(record["models"]),
            benchmarks=list(record["benchmarks"]),
            max_attempts=record["max_attempts"],
            goldens={
                name: GoldenSummary(entry["cycles"], entry["committed"])
                for name, entry in record["goldens"].items()
            },
        )


def spec_to_dict(spec: BugSpec) -> Dict[str, object]:
    return {
        "model": spec.model.value,
        "inject_cycle": spec.inject_cycle,
        "array": spec.array.value if spec.array is not None else None,
        "kind": spec.kind.value if spec.kind is not None else None,
        "xor_mask": spec.xor_mask,
    }


def spec_from_dict(data: Dict[str, object]) -> BugSpec:
    return BugSpec(
        model=BugModel(data["model"]),
        inject_cycle=data["inject_cycle"],
        array=ArrayName(data["array"]) if data["array"] is not None else None,
        kind=SignalKind(data["kind"]) if data["kind"] is not None else None,
        xor_mask=data["xor_mask"],
    )


def result_to_dict(result: InjectionResult) -> Dict[str, object]:
    return {
        "benchmark": result.benchmark,
        "spec": spec_to_dict(result.spec),
        "activated": result.activated,
        "activation_cycle": result.activation_cycle,
        "outcome": result.outcome.value,
        "manifestation_cycle": result.manifestation_cycle,
        "final_cycle": result.final_cycle,
        "persists": result.persists,
        "idld_cycle": result.idld_cycle,
        "bv_cycle": result.bv_cycle,
        "counter_cycle": result.counter_cycle,
        "eot_detected": result.eot_detected,
        "sim_wall_ns": result.sim_wall_ns,
        "warm_start_cycles_skipped": result.warm_start_cycles_skipped,
    }


def result_from_dict(data: Dict[str, object]) -> InjectionResult:
    return InjectionResult(
        benchmark=data["benchmark"],
        spec=spec_from_dict(data["spec"]),
        activated=data["activated"],
        activation_cycle=data["activation_cycle"],
        outcome=OutcomeClass(data["outcome"]),
        manifestation_cycle=data["manifestation_cycle"],
        final_cycle=data["final_cycle"],
        persists=data["persists"],
        idld_cycle=data["idld_cycle"],
        bv_cycle=data["bv_cycle"],
        counter_cycle=data["counter_cycle"],
        eot_detected=data["eot_detected"],
        # Measurement metadata added after v1 checkpoints shipped; absent
        # keys (old files) default rather than fail so resume keeps working.
        sim_wall_ns=data.get("sim_wall_ns"),
        warm_start_cycles_skipped=data.get("warm_start_cycles_skipped", 0),
    )


def _truncate_torn_tail(path: str) -> None:
    """Drop a partial final line (no trailing newline) left by a kill,
    so appended records start on a fresh line."""
    with open(path, "rb+") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        if size == 0:
            return
        handle.seek(size - 1)
        if handle.read(1) == b"\n":
            return
        handle.seek(0)
        data = handle.read()
        keep = data.rfind(b"\n") + 1
        handle.truncate(keep)


class CheckpointWriter:
    """Appends completed task results to a JSONL checkpoint file.

    In fresh mode the manifest is written (and flushed) first; in resume
    mode the file is opened for append and the manifest must already be
    present. Every record is flushed, so a *process* kill loses at most
    the line being written; with ``fsync=True`` every record is also
    ``os.fsync``'d, so the checkpoint additionally survives hard machine
    kills (power loss, kernel panic) at a per-record I/O cost.
    """

    def __init__(
        self,
        path: str,
        manifest: Manifest,
        resume: bool = False,
        fsync: bool = False,
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None
        if resume:
            _truncate_torn_tail(path)
            self._handle = open(path, "a")
        else:
            self._handle = open(path, "w")
            self._append(manifest.to_record())

    def write_result(self, task: InjectionTask, result: InjectionResult) -> None:
        self._append(
            {
                "type": "result",
                "index": task.index,
                "key": task.key,
                "run_index": task.run_index,
                "derived_seed": task.derived_seed,
                "result": result_to_dict(result),
            }
        )

    def write_failure(self, task: InjectionTask, failure: TaskFailure) -> None:
        """Record one quarantined task so a resume skips it."""
        self._append(
            {
                "type": "failure",
                "index": task.index,
                "key": task.key,
                "benchmark": getattr(task, "benchmark", None),
                "failure": failure.to_record(),
            }
        )

    def _append(self, record: Dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_checkpoint(
    path: str,
) -> Tuple[Manifest, Dict[str, Tuple[int, InjectionResult]]]:
    """Load a checkpoint: the manifest plus ``task key -> (index, result)``.

    Quarantined-task ``failure`` records are tolerated but dropped; use
    :func:`load_checkpoint_full` to get them too.
    """
    manifest, done, _ = load_checkpoint_full(path)
    return manifest, done


def load_checkpoint_full(
    path: str,
) -> Tuple[
    Manifest,
    Dict[str, Tuple[int, InjectionResult]],
    Dict[str, TaskFailureRecord],
]:
    """Load a checkpoint: manifest, completed results, quarantined tasks.

    Returns ``(manifest, key -> (index, result), key -> failure record)``.
    Tolerates a truncated final line (the signature of a killed run);
    raises :class:`CheckpointError` for any other malformation. When the
    same key appears twice the later record wins — harmless for results
    (records for a key are byte-identical by construction) and correct for
    failures (a later *result* for a previously-quarantined key means a
    retry eventually succeeded, so the failure is superseded).
    """
    with open(path) as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise CheckpointError(f"{path}: empty checkpoint file")
    records: List[Dict[str, object]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # truncated final line from an interrupted run
            raise CheckpointError(f"{path}:{lineno + 1}: corrupt record")
    if not records:
        raise CheckpointError(f"{path}: no complete records")
    manifest = Manifest.from_record(records[0])
    done: Dict[str, Tuple[int, InjectionResult]] = {}
    failures: Dict[str, TaskFailureRecord] = {}
    for record in records[1:]:
        kind = record.get("type")
        if kind == "result":
            key = record["key"]
            done[key] = (record["index"], result_from_dict(record["result"]))
            failures.pop(key, None)
        elif kind == "failure":
            key = record["key"]
            if key in done:
                continue  # a completed result outranks any failure record
            failures[key] = TaskFailureRecord(
                key=key,
                index=record["index"],
                benchmark=record.get("benchmark"),
                failure=TaskFailure.from_record(record["failure"]),
            )
        else:
            raise CheckpointError(f"unexpected record type {kind!r}")
    return manifest, done, failures


def manifest_for(
    seed: int,
    runs_per_model: int,
    models: List[BugModel],
    benchmarks: List[str],
    max_attempts: int,
    goldens: Dict[str, RunResult],
) -> Manifest:
    return Manifest(
        seed=seed,
        runs_per_model=runs_per_model,
        models=[m.value for m in models],
        benchmarks=list(benchmarks),
        max_attempts=max_attempts,
        goldens={
            name: GoldenSummary(g.cycles, g.committed)
            for name, g in goldens.items()
        },
    )
