"""Append-only JSONL checkpointing for campaigns (``--checkpoint/--resume``).

File layout: line 1 is a ``manifest`` record pinning the campaign identity
(seed, models, benchmarks, runs, golden-run summaries); every later line is
one completed task ``result`` record — or one ``failure`` record for a task
the execution layer quarantined (kind ∈ {exception, timeout, worker-crash},
attempts, truncated traceback) — appended in completion order. Records
carry the canonical task index, so a campaign rebuilt from a checkpoint is
re-sorted into task order and is identical to an uninterrupted run; a
resume skips quarantined tasks instead of re-crashing on them.

Format v2 (this writer): every record additionally carries a ``crc``
(CRC32 of its canonical JSON payload) and the manifest an ``identity``
content hash of the campaign-identity fields, so interior corruption is
detected at read time with line numbers (``repro checkpoint verify`` /
``repair`` operate on exactly this). v1 files (no CRCs) are still loaded
and resumed; their records simply go unchecksummed.

A process killed mid-append may leave a truncated final line; the loader
tolerates (and drops) exactly that — a malformed line anywhere else is a
corruption error. A sidecar ``<path>.lock`` (PID + heartbeat mtime) makes
the writer single-owner: a second concurrent run refuses to append to the
same file, with stale-lock takeover once the heartbeat ages out.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, IO, List, Optional, TYPE_CHECKING, Tuple

from repro.analysis.outcomes import OutcomeClass
from repro.bugs.campaign import InjectionResult
from repro.bugs.models import BugModel, BugSpec
from repro.core.cpu import RunResult
from repro.core.rrs.signals import ArrayName, SignalKind
from repro.exec.durability import (
    CheckpointError,
    CheckpointLock,
    ENV_TORN_APPEND,
    TORN_APPEND_EXIT_STATUS,
    iter_sealed_records,
    manifest_identity,
    seal_record,
    truncate_torn_tail,
)
from repro.exec.resilience import TaskFailure, TaskFailureRecord
from repro.exec.tasks import InjectionTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import CoreConfig

#: Checkpoint format version this writer produces.
FORMAT_VERSION = 2

#: Versions the loaders accept (v1: pre-CRC files, still resumable).
SUPPORTED_VERSIONS = (1, 2)


@dataclass(frozen=True)
class GoldenSummary:
    """The golden-run facts a checkpoint preserves (duck-types RunResult
    for :func:`repro.analysis.export.to_json`)."""

    cycles: int
    committed: int


@dataclass
class Manifest:
    """Identity of the campaign a checkpoint belongs to."""

    seed: int
    runs_per_model: int
    models: List[str]
    benchmarks: List[str]
    max_attempts: int
    goldens: Dict[str, GoldenSummary]
    #: Serialized CoreConfig (CoreConfig.to_dict()) the campaign ran at,
    #: or None for the default design point / files predating this field.
    #: Part of the manifest identity: resume and merge refuse to mix
    #: results produced on different core geometries.
    design_point: Optional[Dict[str, object]] = None

    def to_record(self) -> Dict[str, object]:
        record = {
            "type": "manifest",
            "version": FORMAT_VERSION,
            "seed": self.seed,
            "runs_per_model": self.runs_per_model,
            "models": self.models,
            "benchmarks": self.benchmarks,
            "max_attempts": self.max_attempts,
            "goldens": {
                name: {"cycles": g.cycles, "committed": g.committed}
                for name, g in self.goldens.items()
            },
        }
        if self.design_point is not None:
            record["design_point"] = self.design_point
        record["identity"] = manifest_identity(record)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "Manifest":
        if record.get("type") != "manifest":
            raise CheckpointError("checkpoint does not start with a manifest")
        if record.get("version") not in SUPPORTED_VERSIONS:
            raise CheckpointError(
                f"unsupported checkpoint version {record.get('version')!r}"
            )
        identity = record.get("identity")
        if identity is not None and identity != manifest_identity(record):
            raise CheckpointError(
                "manifest identity hash mismatch (manifest edited or "
                "corrupted)"
            )
        return cls(
            seed=record["seed"],
            runs_per_model=record["runs_per_model"],
            models=list(record["models"]),
            benchmarks=list(record["benchmarks"]),
            max_attempts=record["max_attempts"],
            goldens={
                name: GoldenSummary(entry["cycles"], entry["committed"])
                for name, entry in record["goldens"].items()
            },
            # Absent in files written before design points existed (and in
            # default-config campaigns, whose manifests stay byte-stable).
            design_point=record.get("design_point"),
        )


def spec_to_dict(spec: BugSpec) -> Dict[str, object]:
    return {
        "model": spec.model.value,
        "inject_cycle": spec.inject_cycle,
        "array": spec.array.value if spec.array is not None else None,
        "kind": spec.kind.value if spec.kind is not None else None,
        "xor_mask": spec.xor_mask,
    }


def spec_from_dict(data: Dict[str, object]) -> BugSpec:
    return BugSpec(
        model=BugModel(data["model"]),
        inject_cycle=data["inject_cycle"],
        array=ArrayName(data["array"]) if data["array"] is not None else None,
        kind=SignalKind(data["kind"]) if data["kind"] is not None else None,
        xor_mask=data["xor_mask"],
    )


def result_to_dict(result: InjectionResult) -> Dict[str, object]:
    return {
        "benchmark": result.benchmark,
        "spec": spec_to_dict(result.spec),
        "activated": result.activated,
        "activation_cycle": result.activation_cycle,
        "outcome": result.outcome.value,
        "manifestation_cycle": result.manifestation_cycle,
        "final_cycle": result.final_cycle,
        "persists": result.persists,
        "idld_cycle": result.idld_cycle,
        "bv_cycle": result.bv_cycle,
        "counter_cycle": result.counter_cycle,
        "eot_detected": result.eot_detected,
        "sim_wall_ns": result.sim_wall_ns,
        "warm_start_cycles_skipped": result.warm_start_cycles_skipped,
        "early_terminated_cycle": result.early_terminated_cycle,
    }


def result_from_dict(data: Dict[str, object]) -> InjectionResult:
    return InjectionResult(
        benchmark=data["benchmark"],
        spec=spec_from_dict(data["spec"]),
        activated=data["activated"],
        activation_cycle=data["activation_cycle"],
        outcome=OutcomeClass(data["outcome"]),
        manifestation_cycle=data["manifestation_cycle"],
        final_cycle=data["final_cycle"],
        persists=data["persists"],
        idld_cycle=data["idld_cycle"],
        bv_cycle=data["bv_cycle"],
        counter_cycle=data["counter_cycle"],
        eot_detected=data["eot_detected"],
        # Measurement metadata added after v1 checkpoints shipped; absent
        # keys (old files) default rather than fail so resume keeps working.
        sim_wall_ns=data.get("sim_wall_ns"),
        warm_start_cycles_skipped=data.get("warm_start_cycles_skipped", 0),
        early_terminated_cycle=data.get("early_terminated_cycle"),
    )


#: Backwards-compatible alias: torn-tail truncation now streams backwards
#: block-wise (O(torn tail) RAM, not O(file)) in :mod:`repro.exec.durability`.
_truncate_torn_tail = truncate_torn_tail


class CheckpointWriter:
    """Appends completed task results to a JSONL checkpoint file.

    In fresh mode the manifest is written (and flushed) first; in resume
    mode the file is opened for append and the manifest must already be
    present. Every record is flushed, so a *process* kill loses at most
    the line being written; with ``fsync=True`` every record is also
    ``os.fsync``'d, so the checkpoint additionally survives hard machine
    kills (power loss, kernel panic) at a per-record I/O cost.

    Every record is CRC-sealed (format v2), and with ``lock=True`` (the
    default) a sidecar single-writer lock is held for the writer's
    lifetime — a concurrent second run raises
    :class:`~repro.exec.durability.CheckpointLockedError` instead of
    interleaving appends; the lock's heartbeat refreshes on every append.
    """

    def __init__(
        self,
        path: str,
        manifest: Manifest,
        resume: bool = False,
        fsync: bool = False,
        lock: bool = True,
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.fsync = fsync
        self._handle: Optional[IO[str]] = None
        self._lock: Optional[CheckpointLock] = None
        if lock:
            self._lock = CheckpointLock(path).acquire()
        try:
            if resume:
                _truncate_torn_tail(path)
                self._handle = open(path, "a")
            else:
                self._handle = open(path, "w")
                self._append(manifest.to_record())
        except BaseException:
            if self._lock is not None:
                self._lock.release()
            raise

    def write_result(self, task: InjectionTask, result: InjectionResult) -> None:
        self._append(
            {
                "type": "result",
                "index": task.index,
                "key": task.key,
                "run_index": task.run_index,
                "derived_seed": task.derived_seed,
                "result": result_to_dict(result),
            }
        )

    def write_failure(self, task: InjectionTask, failure: TaskFailure) -> None:
        """Record one quarantined task so a resume skips it."""
        self._append(
            {
                "type": "failure",
                "index": task.index,
                "key": task.key,
                "benchmark": getattr(task, "benchmark", None),
                "failure": failure.to_record(),
            }
        )

    def _append(self, record: Dict[str, object]) -> None:
        assert self._handle is not None
        line = json.dumps(seal_record(record), sort_keys=True) + "\n"
        torn_key = os.environ.get(ENV_TORN_APPEND)
        if torn_key and record.get("key") == torn_key:
            # Chaos hook: a deterministic SIGKILL-mid-append — half the
            # line reaches the file, no newline, and the process dies with
            # the lock still on disk. Production runs never set this.
            self._handle.write(line[: len(line) // 2])
            self._handle.flush()
            os._exit(TORN_APPEND_EXIT_STATUS)
        self._handle.write(line)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        if self._lock is not None:
            self._lock.heartbeat()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self._lock is not None:
            self._lock.release()
            self._lock = None

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_checkpoint(
    path: str,
) -> Tuple[Manifest, Dict[str, Tuple[int, InjectionResult]]]:
    """Load a checkpoint: the manifest plus ``task key -> (index, result)``.

    Quarantined-task ``failure`` records are tolerated but dropped; use
    :func:`load_checkpoint_full` to get them too.
    """
    manifest, done, _ = load_checkpoint_full(path)
    return manifest, done


def load_checkpoint_full(
    path: str,
) -> Tuple[
    Manifest,
    Dict[str, Tuple[int, InjectionResult]],
    Dict[str, TaskFailureRecord],
]:
    """Load a checkpoint: manifest, completed results, quarantined tasks.

    Returns ``(manifest, key -> (index, result), key -> failure record)``.
    Tolerates a truncated final line (the signature of a killed run);
    raises :class:`CheckpointError` — with the line number — for any other
    malformation, including an interior CRC mismatch. Streams the file
    line by line (multi-GB checkpoints never land in memory whole). When
    the same key appears twice the later record wins — harmless for
    results (records for a key are byte-identical by construction) and
    correct for failures (a later *result* for a previously-quarantined
    key means a retry eventually succeeded, so the failure is superseded).
    """
    if os.path.getsize(path) == 0:
        raise CheckpointError(f"{path}: empty checkpoint file")
    manifest: Optional[Manifest] = None
    done: Dict[str, Tuple[int, InjectionResult]] = {}
    failures: Dict[str, TaskFailureRecord] = {}
    for lineno, record in iter_sealed_records(path):
        if manifest is None:
            manifest = Manifest.from_record(record)
            continue
        kind = record.get("type")
        if kind == "result":
            key = record["key"]
            done[key] = (record["index"], result_from_dict(record["result"]))
            failures.pop(key, None)
        elif kind == "failure":
            key = record["key"]
            if key in done:
                continue  # a completed result outranks any failure record
            failures[key] = TaskFailureRecord(
                key=key,
                index=record["index"],
                benchmark=record.get("benchmark"),
                failure=TaskFailure.from_record(record["failure"]),
            )
        else:
            raise CheckpointError(
                f"{path}:{lineno}: unexpected record type {kind!r}"
            )
    if manifest is None:
        raise CheckpointError(f"{path}: no complete records")
    return manifest, done, failures


def manifest_for(
    seed: int,
    runs_per_model: int,
    models: List[BugModel],
    benchmarks: List[str],
    max_attempts: int,
    goldens: Dict[str, RunResult],
    config: Optional["CoreConfig"] = None,
) -> Manifest:
    return Manifest(
        seed=seed,
        runs_per_model=runs_per_model,
        models=[m.value for m in models],
        benchmarks=list(benchmarks),
        max_attempts=max_attempts,
        goldens={
            name: GoldenSummary(g.cycles, g.committed)
            for name, g in goldens.items()
        },
        design_point=None if config is None else config.to_dict(),
    )
