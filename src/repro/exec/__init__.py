"""Campaign execution engine: tasks, backends, checkpointing, progress.

The injection campaign is decomposed into independent
:class:`~repro.exec.tasks.InjectionTask` units, each carrying its own
deterministically-derived seed, so execution order and worker count never
change results. Pluggable backends (:class:`~repro.exec.backends.SerialBackend`,
:class:`~repro.exec.backends.ProcessPoolBackend`) run the tasks; the engine
aggregates results in canonical task order, checkpoints them incrementally
to an append-only JSONL file, and emits progress events.
"""

from repro.exec.backends import Backend, ProcessPoolBackend, SerialBackend
from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
)
from repro.exec.engine import run_engine
from repro.exec.progress import ProgressEvent, ProgressPrinter
from repro.exec.tasks import (
    InjectionTask,
    derive_seed,
    execute_task,
    generate_tasks,
)

__all__ = [
    "Backend",
    "CheckpointError",
    "CheckpointWriter",
    "InjectionTask",
    "ProcessPoolBackend",
    "ProgressEvent",
    "ProgressPrinter",
    "SerialBackend",
    "derive_seed",
    "execute_task",
    "generate_tasks",
    "load_checkpoint",
    "run_engine",
]
