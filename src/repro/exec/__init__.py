"""Campaign execution engine: tasks, backends, checkpointing, progress.

The injection campaign is decomposed into independent
:class:`~repro.exec.tasks.InjectionTask` units, each carrying its own
deterministically-derived seed, so execution order and worker count never
change results. Pluggable backends (:class:`~repro.exec.backends.SerialBackend`,
:class:`~repro.exec.backends.ProcessPoolBackend`) run the tasks; the engine
aggregates results in canonical task order, checkpoints them incrementally
to an append-only JSONL file, and emits progress events.

Fault tolerance lives in :mod:`repro.exec.resilience`: construct a backend
with a :class:`~repro.exec.resilience.FaultPolicy` and tasks get wall-clock
deadlines, bounded retries, structured quarantine
(:class:`~repro.exec.resilience.TaskFailure`), worker-crash recovery with
pool respawn, and graceful degradation to serial execution.
"""

from repro.exec.backends import Backend, ProcessPoolBackend, SerialBackend
from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    load_checkpoint_full,
)
from repro.exec.engine import run_engine
from repro.exec.progress import ProgressEvent, ProgressPrinter
from repro.exec.resilience import (
    FaultPolicy,
    FaultToleranceError,
    TaskFailure,
    TaskFailureRecord,
)
from repro.exec.tasks import (
    InjectionTask,
    derive_seed,
    execute_task,
    generate_tasks,
)

__all__ = [
    "Backend",
    "CheckpointError",
    "CheckpointWriter",
    "FaultPolicy",
    "FaultToleranceError",
    "InjectionTask",
    "ProcessPoolBackend",
    "ProgressEvent",
    "ProgressPrinter",
    "SerialBackend",
    "TaskFailure",
    "TaskFailureRecord",
    "derive_seed",
    "execute_task",
    "generate_tasks",
    "load_checkpoint",
    "load_checkpoint_full",
    "run_engine",
]
