"""Campaign execution engine: tasks, backends, checkpointing, progress.

The injection campaign is decomposed into independent
:class:`~repro.exec.tasks.InjectionTask` units, each carrying its own
deterministically-derived seed, so execution order and worker count never
change results. Pluggable backends (:class:`~repro.exec.backends.SerialBackend`,
:class:`~repro.exec.backends.ProcessPoolBackend`) run the tasks; the engine
aggregates results in canonical task order, checkpoints them incrementally
to an append-only JSONL file, and emits progress events.

Fault tolerance lives in :mod:`repro.exec.resilience`: construct a backend
with a :class:`~repro.exec.resilience.FaultPolicy` and tasks get wall-clock
deadlines, bounded retries, structured quarantine
(:class:`~repro.exec.resilience.TaskFailure`), worker-crash recovery with
pool respawn, and graceful degradation to serial execution.

Artifact integrity lives in :mod:`repro.exec.durability`: CRC-sealed
checkpoint records (format v2) with streaming scan/repair primitives
behind the ``repro checkpoint`` CLI, single-writer lockfiles
(:class:`~repro.exec.durability.CheckpointLock`), atomic exports and the
SIGINT/SIGTERM :class:`~repro.exec.durability.GracefulShutdown` latch.

Distribution lives in :mod:`repro.exec.fabric`: a shard-leasing
coordinator (``repro serve``/``submit``/``status``/``fetch``) with
heartbeat-based lease expiry, jittered reassignment backoff, poison-shard
quarantine and continuous merge, plus the worker runtime (``repro work``)
that executes leased shards through :func:`run_engine` with graceful
drain and CRC-verified uploads.
"""

from repro.exec.backends import Backend, ProcessPoolBackend, SerialBackend
from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    load_checkpoint_full,
)
from repro.exec.durability import (
    CheckpointLock,
    CheckpointLockedError,
    GracefulShutdown,
    SHUTDOWN_EXIT_CODE,
    atomic_write_text,
    scan_checkpoint,
    truncate_torn_tail,
)
from repro.exec.engine import run_engine
from repro.exec.fabric import (
    CampaignSpec,
    FabricCoordinator,
    FabricPolicy,
    FabricWorker,
    HttpTransport,
    LocalTransport,
)
from repro.exec.progress import ProgressEvent, ProgressPrinter
from repro.exec.resilience import (
    FaultPolicy,
    FaultToleranceError,
    TaskFailure,
    TaskFailureRecord,
)
from repro.exec.tasks import (
    InjectionTask,
    derive_seed,
    execute_task,
    generate_tasks,
)

__all__ = [
    "Backend",
    "CampaignSpec",
    "CheckpointError",
    "CheckpointLock",
    "CheckpointLockedError",
    "CheckpointWriter",
    "FabricCoordinator",
    "FabricPolicy",
    "FabricWorker",
    "FaultPolicy",
    "FaultToleranceError",
    "GracefulShutdown",
    "HttpTransport",
    "InjectionTask",
    "LocalTransport",
    "ProcessPoolBackend",
    "ProgressEvent",
    "ProgressPrinter",
    "SHUTDOWN_EXIT_CODE",
    "SerialBackend",
    "TaskFailure",
    "TaskFailureRecord",
    "atomic_write_text",
    "derive_seed",
    "execute_task",
    "generate_tasks",
    "load_checkpoint",
    "load_checkpoint_full",
    "run_engine",
    "scan_checkpoint",
    "truncate_torn_tail",
]
