"""Per-entry parity protection for stored PdstIDs (Section V.D's companion).

"The purpose of the proposed IDLD scheme is not to detect bugs that cause
a Pdst corruption while a PdstID is already stored in FL, RAT, or ROB.
Such simple bugs can be detected by other well-established schemes, like
ECC [46] or circular parity [47]. Such schemes are orthogonal to IDLD and
can be combined to provide a comprehensive RRS protection."

:class:`ParityStore` models the classic scheme: a parity bit is computed
and stored with every array write and re-checked on every read. An at-rest
upset flips stored data without updating the parity bit, so the next read
of that location raises an alarm -- with the *location* attached, which is
exactly what IDLD's aggregate code cannot provide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple


def parity(value: int) -> int:
    """Even parity of a non-negative integer."""
    return bin(value).count("1") & 1


@dataclass
class ParityAlarm:
    """One detected stored-value corruption."""

    cycle: int
    array: str
    location: Hashable
    value: int


class ParityStore:
    """Shadow parity bits for one array's PdstID storage.

    The arrays call :meth:`on_write` whenever a location is (re)written
    through a port and :meth:`on_read` whenever it is read; a fault
    injector that flips stored data bypasses :meth:`on_write` by design
    (real upsets do not update parity either).
    """

    def __init__(self, array_name: str, enabled: bool = True) -> None:
        self.array_name = array_name
        self.enabled = enabled
        self._bits: Dict[Hashable, int] = {}
        self.alarms: List[ParityAlarm] = []

    def reset(self) -> None:
        self._bits = {}
        self.alarms = []

    def on_write(self, location: Hashable, value: int) -> None:
        """A legitimate port write: parity follows the data."""
        self._bits[location] = parity(value)

    def on_read(self, location: Hashable, value: int, cycle: int) -> None:
        """A port read: check the stored parity, if we have one."""
        if not self.enabled:
            return
        expected = self._bits.get(location)
        if expected is not None and parity(value) != expected:
            self.alarms.append(
                ParityAlarm(cycle, self.array_name, location, value)
            )

    def forget(self, location: Hashable) -> None:
        """The location was invalidated (e.g. FIFO slot freed)."""
        self._bits.pop(location, None)

    @property
    def detected(self) -> bool:
        return bool(self.alarms)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.alarms[0].cycle if self.alarms else None

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot shadow parity bits + alarms for the warm-start layer."""
        return (
            self.enabled,
            dict(self._bits),
            tuple(
                (a.cycle, a.array, a.location, a.value) for a in self.alarms
            ),
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        enabled, bits, alarms = state
        self.enabled = enabled
        self._bits = dict(bits)
        self.alarms = [ParityAlarm(*a) for a in alarms]
