"""Traditional end-of-test checking (the industry baseline of Figure 9).

"Current industry post-silicon validation methods mainly rely either on
comparing the results of a program's execution to simulation-based
reference/golden models, or on using multi-pass consistency end-of-test
results" (Section I). The flow observes only what is externally visible
when the test finishes: a wrong output, or an abort (crash / assert /
overrun). Bug activations masked by later correct operation pass silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.outcomes import OBSERVABLE, OutcomeClass


@dataclass
class EndOfTestVerdict:
    """What the end-of-test comparison concluded for one buggy run."""

    detected: bool
    #: Cycle at which detection becomes possible: the end of the run (or
    #: the abort cycle). None when undetected.
    detection_cycle: Optional[int]


def end_of_test_check(
    outcome: OutcomeClass, final_cycle: int
) -> EndOfTestVerdict:
    """Apply the traditional end-of-test criterion to a classified run.

    Args:
        outcome: The run's bug-effect class.
        final_cycle: The cycle the run ended (normally or by abort).

    Returns:
        Detected iff the outcome is externally observable; the detection
        latency is always the full remaining run -- the checking phase only
        happens after the test completes.
    """
    if outcome in OBSERVABLE:
        return EndOfTestVerdict(True, final_cycle)
    return EndOfTestVerdict(False, None)
