"""IDLD and the detector zoo it is evaluated against.

* :class:`IDLDChecker` -- the paper's contribution: per-array XOR codes
  with an end-of-cycle zero check (Section V).
* :class:`BitVectorScheme` -- the bit-per-Pdst alternative (Section V.E).
* :class:`CounterScheme` -- the free-counter alternative (Section V.E).
* :func:`end_of_test_check` -- traditional end-of-test validation
  (Figures 9/10 baseline).
"""

from repro.idld.bitvector import BitVectorScheme, BVDetection
from repro.idld.checker import IDLDChecker, Violation
from repro.idld.codes import expected_constant, extend, extension_bit, xor_fold
from repro.idld.counter import CounterDetection, CounterScheme
from repro.idld.endoftest import EndOfTestVerdict, end_of_test_check
from repro.idld.flow import FlowInvariantChecker, FlowViolation
from repro.idld.parity import ParityAlarm, ParityStore, parity

__all__ = [
    "BVDetection",
    "BitVectorScheme",
    "CounterDetection",
    "CounterScheme",
    "EndOfTestVerdict",
    "FlowInvariantChecker",
    "FlowViolation",
    "IDLDChecker",
    "ParityAlarm",
    "ParityStore",
    "Violation",
    "end_of_test_check",
    "expected_constant",
    "extend",
    "extension_bit",
    "parity",
    "xor_fold",
]
