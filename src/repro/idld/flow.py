"""Generic IDLD flow-invariance checker (Section V.F, last paragraph).

"The IDLD approach is applicable to any system where there is incoming and
outgoing information flow from read and write ports, and it is a system
invariance that the overall outgoing and incoming info should match. This
has applicability in many situations (bus communication, exchanges between
NoC links, FIFOs etc.)."

:class:`FlowInvariantChecker` packages the recipe's four requirements as a
reusable component: fold every token leaving the source into one XOR
register and every token reaching the sink into another, count outstanding
tokens, and compare the two codes at explicit quiescent points and/or
whenever the outstanding counter returns to zero. The RRS and MDP checkers
are hand-specialized instances of the same idea; this class is the one
downstream users attach to their own channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.idld.codes import extend, extension_bit


@dataclass
class FlowViolation:
    """One detected source/sink mismatch."""

    cycle: int
    policy: str  # "counter_zero" or "quiescent"
    source_xor: int
    sink_xor: int
    outstanding: int


class FlowInvariantChecker:
    """Two XOR registers plus an outstanding-token counter.

    Args:
        id_space: Number of distinct token identifiers; sizes the
            extension bit so token 0 is visible to the code.
        check_on_counter_zero: Evaluate whenever the outstanding counter
            returns to zero at a tick (the cheapest frequent check).
        enabled: The chicken bit.

    Usage::

        guard = FlowInvariantChecker(id_space=64)
        guard.source(flit_id)     # token left the producer
        ...
        guard.sink(flit_id)       # token consumed at the far end
        guard.tick(cycle)         # once per cycle
        guard.quiescent(cycle)    # at known-empty points
    """

    def __init__(
        self,
        id_space: int,
        check_on_counter_zero: bool = True,
        enabled: bool = True,
    ) -> None:
        if id_space < 1:
            raise ValueError("id_space must be positive")
        self.enabled = enabled
        self.check_on_counter_zero = check_on_counter_zero
        self._ext_bit = extension_bit(id_space)
        self.source_xor = 0
        self.sink_xor = 0
        self.outstanding = 0
        self.violations: List[FlowViolation] = []

    # -- taps -------------------------------------------------------------------

    def source(self, token_id: int) -> None:
        """A token left the producer side."""
        self.source_xor ^= extend(token_id, self._ext_bit)
        self.outstanding += 1

    def sink(self, token_id: int) -> None:
        """A token arrived/was consumed at the sink side."""
        self.sink_xor ^= extend(token_id, self._ext_bit)
        self.outstanding -= 1

    # -- checks ------------------------------------------------------------------

    @property
    def syndrome(self) -> int:
        return self.source_xor ^ self.sink_xor

    def _check(self, cycle: int, policy: str) -> None:
        if self.enabled and self.syndrome != 0:
            self.violations.append(
                FlowViolation(
                    cycle, policy, self.source_xor, self.sink_xor,
                    self.outstanding,
                )
            )

    def tick(self, cycle: int) -> None:
        """Per-cycle hook: checks when no tokens are outstanding."""
        if self.check_on_counter_zero and self.outstanding == 0:
            self._check(cycle, "counter_zero")

    def quiescent(self, cycle: int) -> None:
        """Explicit known-empty checking opportunity.

        At a quiescent point *both* codes must match *and* no tokens may be
        outstanding: the counter catches even-multiplicity losses that the
        XOR projection cancels (two leaked tokens with the same id).
        """
        if self.enabled and self.outstanding != 0 and self.syndrome == 0:
            self.violations.append(
                FlowViolation(
                    cycle, "quiescent", self.source_xor, self.sink_xor,
                    self.outstanding,
                )
            )
            return
        self._check(cycle, "quiescent")

    # -- results --------------------------------------------------------------------

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.violations[0].cycle if self.violations else None
