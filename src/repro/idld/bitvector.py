"""The bit-vector (BV) alternative scheme the paper compares against.

Section V.E: "a bit-vector that has as many bits as unique Pdsts... The bit
position corresponding to a Pdst is set when its PdstID is freed and unset
when allocated. Duplication is detected when a PdstID becomes free, and its
bit is already set. Leakage is detected by counting the number of free
registers... when the pipeline is empty and checking that it is equal to
the difference between the number of physical and logical registers."

The scheme's structural weaknesses are exactly what Figure 10 measures:
detection waits for a reclamation or a quiescent pipeline (unbounded
latency), and bug activations whose effect is repaired before either event
(e.g. wrong-path leakage recovered through the RHT) are never seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class BVDetection:
    """One BV-scheme alarm."""

    cycle: int
    kind: str  # "duplication" or "leakage"
    pdst: Optional[int] = None
    free_count: Optional[int] = None


from repro.core.rrs.ports import RRSObserver


class BitVectorScheme(RRSObserver):
    """Free/allocated bit per physical register with quiescent leak probe."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._bits: List[bool] = []
        self._free_count = 0
        self._expected_free = 0
        self.detections: List[BVDetection] = []
        self._cycle = 0

    def power_on(self, num_physical, num_logical, initial_free, initial_rat):
        self._bits = [False] * num_physical
        for pdst in initial_free:
            self._bits[pdst] = True
        # Maintained incrementally so the quiescent leak probe, which fires
        # every pipeline-empty cycle, does not rescan the whole vector.
        self._free_count = sum(self._bits)
        self._expected_free = num_physical - num_logical
        self.detections = []
        self._cycle = 1

    def cycle_end(self, cycle: int) -> None:
        # Port events arrive before their cycle's cycle_end; stamp them with
        # the upcoming cycle number.
        self._cycle = cycle + 1

    def fl_read(self, pdst: int) -> None:
        # Allocation clears the free bit.
        if 0 <= pdst < len(self._bits):
            if self._bits[pdst]:
                self._free_count -= 1
            self._bits[pdst] = False

    def fl_write(self, pdst: int) -> None:
        # Reclamation with the bit already set is a duplication.
        if not 0 <= pdst < len(self._bits):
            return
        if self._bits[pdst]:
            if self.enabled:
                self.detections.append(
                    BVDetection(self._cycle, "duplication", pdst=pdst)
                )
        else:
            self._free_count += 1
        self._bits[pdst] = True

    def pipeline_empty(self, cycle: int) -> None:
        if not self.enabled:
            return
        free = self._free_count
        if free != self._expected_free:
            self.detections.append(
                BVDetection(cycle, "leakage", free_count=free)
            )

    def fast_forward(
        self, start_cycle: int, end_cycle: int, pipeline_empty: bool
    ) -> None:
        """Closed-form replay of the per-cycle hooks over a skipped span.

        No FL traffic happens in a quiescent span, so the bit vector and
        free count are constant: each skipped cycle would have appended one
        identical leakage detection iff the pipeline was empty and the
        count off, then advanced the event clock. See the bulk-replay
        protocol in :mod:`repro.core.rrs.ports`.
        """
        if (
            pipeline_empty
            and self.enabled
            and self._free_count != self._expected_free
        ):
            free = self._free_count
            self.detections.extend(
                BVDetection(cycle, "leakage", free_count=free)
                for cycle in range(start_cycle + 1, end_cycle + 1)
            )
        self._cycle = end_cycle + 1

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.detections[0].cycle if self.detections else None

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot bits + detections for the warm-start layer."""
        return (
            self.enabled,
            tuple(self._bits),
            self._expected_free,
            tuple(
                (d.cycle, d.kind, d.pdst, d.free_count)
                for d in self.detections
            ),
            self._cycle,
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        enabled, bits, expected_free, detections, cycle = state
        self.enabled = enabled
        self._bits = list(bits)
        self._free_count = sum(self._bits)
        self._expected_free = expected_free
        self.detections = [BVDetection(*d) for d in detections]
        self._cycle = cycle

    @staticmethod
    def tracking_of(state: tuple) -> tuple:
        """The tracking projection of a :meth:`save_state` tuple (bits,
        expected-free count, clock) without the recorded detections; see
        the differential convergence predicate in
        :mod:`repro.bugs.differential`."""
        return (state[0], state[1], state[2], state[4])
