"""XOR-code algebra shared by the IDLD checkers.

Section V.D: "if the PdstID with value 0 gets duplicated or leaked, the
proposed scheme will not detect it (XOR with zero does not cause a change).
This can be fixed by logically extending all the PdstIDs by one bit with
value 1. This bit should not be stored in the arrays but only used as an
input constant in the XOR calculation."
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable


def extension_bit(num_physical_regs: int) -> int:
    """The constant-1 extension bit position for a given register count."""
    bits = max(1, (num_physical_regs - 1).bit_length())
    return 1 << bits


def extend(pdst: int, ext_bit: int) -> int:
    """Logically extend a PdstID with the constant-1 bit."""
    return pdst | ext_bit


def xor_fold(ids: Iterable[int], ext_bit: int) -> int:
    """XOR of a collection of extended PdstIDs."""
    return reduce(lambda acc, pdst: acc ^ extend(pdst, ext_bit), ids, 0)


def expected_constant(num_physical_regs: int) -> int:
    """The invariant constant: XOR of every extended PdstID exactly once.

    Zero for power-of-two register counts (the paper's 128-register design
    checks against literal zero); nonzero otherwise, which the checker
    handles transparently.
    """
    ext_bit = extension_bit(num_physical_regs)
    return xor_fold(range(num_physical_regs), ext_bit)
