"""The counting alternative scheme of Section V.E.

"Another way to track the PdstID-invariance is by counting the number of
free and allocated registers and checking that their sum is equal to the
number of unique Pdsts... However, unlike IDLD, this scheme cannot detect a
combined duplication and leakage, since the total number of PdstIDs remains
invariant (x+1-1=x). Further, it cannot capture corruption in a PdstID."

The ablation bench (`benchmarks/test_ablation_alternatives.py`) measures
exactly these blind spots against IDLD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.rrs.ports import RRSObserver


@dataclass
class CounterDetection:
    """One counter-scheme alarm (free count off at a quiescent point)."""

    cycle: int
    free_count: int
    expected: int


class CounterScheme(RRSObserver):
    """log2(#Pdsts)-bit free-register counter, checked at quiescence."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._free = 0
        self._expected_free = 0
        self.detections: List[CounterDetection] = []

    def power_on(self, num_physical, num_logical, initial_free, initial_rat):
        self._free = len(initial_free)
        self._expected_free = num_physical - num_logical
        self.detections = []

    def fl_read(self, pdst: int) -> None:
        self._free -= 1

    def fl_write(self, pdst: int) -> None:
        self._free += 1

    def pipeline_empty(self, cycle: int) -> None:
        if not self.enabled:
            return
        if self._free != self._expected_free:
            self.detections.append(
                CounterDetection(cycle, self._free, self._expected_free)
            )

    def fast_forward(
        self, start_cycle: int, end_cycle: int, pipeline_empty: bool
    ) -> None:
        """Closed-form replay of ``pipeline_empty`` over a skipped span:
        the free counter is constant (no FL traffic in a quiescent span),
        so the per-cycle checks would have appended identical detections.
        See the bulk-replay protocol in :mod:`repro.core.rrs.ports`."""
        if (
            pipeline_empty
            and self.enabled
            and self._free != self._expected_free
        ):
            free, expected = self._free, self._expected_free
            self.detections.extend(
                CounterDetection(cycle, free, expected)
                for cycle in range(start_cycle + 1, end_cycle + 1)
            )

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.detections[0].cycle if self.detections else None

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the free counter + detections for the warm-start layer."""
        return (
            self.enabled,
            self._free,
            self._expected_free,
            tuple(
                (d.cycle, d.free_count, d.expected) for d in self.detections
            ),
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        enabled, free, expected_free, detections = state
        self.enabled = enabled
        self._free = free
        self._expected_free = expected_free
        self.detections = [CounterDetection(*d) for d in detections]

    @staticmethod
    def tracking_of(state: tuple) -> tuple:
        """The tracking projection of a :meth:`save_state` tuple (the free
        counters) without the recorded detections; see the differential
        convergence predicate in :mod:`repro.bugs.differential`."""
        return state[:3]
