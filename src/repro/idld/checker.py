"""IDLD: the paper's instantaneous leakage/duplication checker.

The scheme (Section V.B, Figure 6) keeps one XOR register per tracked
array -- FL\\ :sub:`XOR`, RAT\\ :sub:`XOR`, ROB\\ :sub:`XOR` -- each folded
with every PdstID its array's ports insert or remove. The central
invariance is that a PdstID read from one array is written to another by
cycle end, so::

    FLxor ^ RATxor ^ ROBxor == K     (K = 0 for power-of-two Pdst counts)

holds at the end of every cycle outside flush recovery. Each XOR register
is ``pdst_bits + 1`` wide: identifiers are logically extended with a
constant 1 bit so that PdstID 0 is visible to the code (Section V.D).

Flush handling (Section V.C):

* RATxor and ROBxor are checkpointed alongside each RAT checkpoint and
  restored with it; the positive RHT walk then replays through the regular
  RAT port, updating RATxor, while each walk eviction is folded back into
  ROBxor ("the ROBxor is also recovered and walked with the PdstIDs evicted
  from the RAT during positive reclamation").
* Commits fold the reclaimed PdstID out of every *younger* checkpointed
  ROBxor so a later restore reflects entries that already left the ROB
  (a few XOR gates per checkpoint slot in hardware).
* FLxor needs no special handling: negative-walk returns flow through the
  regular FL write port.
* Checks are suspended while the recovery flow is in progress.

Because every XOR update is gated by the same control signal as the array
action it mirrors (the arrays only emit events for actions that actually
happened), a suppressed enable breaks the read/write pairing and the code
goes nonzero in the very cycle the bug perturbs the PdstID flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.rrs.ports import RRSObserver
from repro.idld.codes import expected_constant, extend, extension_bit, xor_fold


@dataclass
class Violation:
    """One detected invariance violation."""

    cycle: int
    fl_xor: int
    rat_xor: int
    rob_xor: int
    syndrome: int

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"IDLD violation @cycle {self.cycle}: syndrome={self.syndrome:#x} "
            f"(FL={self.fl_xor:#x} RAT={self.rat_xor:#x} ROB={self.rob_xor:#x})"
        )


@dataclass
class _CheckpointMirror:
    """Per-CKPT-slot shadow state: position + checkpointed XORs."""

    pos: int = -1
    rat_xor: int = 0
    rob_xor: int = 0
    valid: bool = False


class IDLDChecker(RRSObserver):
    """The IDLD hardware, as an observer over the RRS ports.

    Attributes:
        enabled: The "chicken bit" (Section V.B): when False the checker
            keeps its XOR state but never raises a violation.
        violations: Every end-of-cycle check failure, in order.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.fl_xor = 0
        self.rat_xor = 0
        self.rob_xor = 0
        self._ext_bit = 2
        self._expected = 0
        self._in_recovery = False
        self._mirrors: Dict[int, _CheckpointMirror] = {}
        self.violations: List[Violation] = []

    # -- reset -------------------------------------------------------------------

    def power_on(self, num_physical, num_logical, initial_free, initial_rat):
        self._ext_bit = extension_bit(num_physical)
        self._expected = expected_constant(num_physical)
        self.fl_xor = xor_fold(initial_free, self._ext_bit)
        self.rat_xor = xor_fold(initial_rat, self._ext_bit)
        self.rob_xor = 0
        self._in_recovery = False
        self._mirrors = {}
        self.violations = []

    # -- port taps -------------------------------------------------------------------
    # These run on every FL pop/push, RAT write and ROB traffic event;
    # ``extend(p, bit)`` is inlined as ``p | bit`` here because the call
    # overhead itself was a measurable slice of simulation time.

    def fl_read(self, pdst: int) -> None:
        self.fl_xor ^= pdst | self._ext_bit

    def fl_write(self, pdst: int) -> None:
        self.fl_xor ^= pdst | self._ext_bit

    def rat_write(self, ldst: int, old_pdst: int, new_pdst: int) -> None:
        ext_bit = self._ext_bit
        self.rat_xor ^= (old_pdst | ext_bit) ^ (new_pdst | ext_bit)
        if self._in_recovery:
            # Positive-walk reclamation: the evicted PdstID re-enters the
            # recovered ROBxor (Section V.C).
            self.rob_xor ^= old_pdst | ext_bit

    def rat_write_zero_idiom(self, ldst: int, old_pdst: int) -> None:
        # Section V.E: the duplicate-marking signal keeps the shared zero
        # register out of the code; only the eviction is tracked.
        self.rat_xor ^= old_pdst | self._ext_bit
        if self._in_recovery:
            self.rob_xor ^= old_pdst | self._ext_bit

    def rat_write_over_zero(self, ldst: int, new_pdst: int) -> None:
        # The shared zero register leaves the RAT entry: only the inserted
        # identifier is tracked.
        self.rat_xor ^= new_pdst | self._ext_bit

    def rob_pdst_write(self, pdst: int, seq: int) -> None:
        self.rob_xor ^= pdst | self._ext_bit

    def rob_pdst_read(self, pdst: int, seq: int) -> None:
        # Every live checkpointed ROBxor folds the commit-reclaim bus too:
        # for a checkpoint younger than the committing entry this removes an
        # id the capture included; for an older (anchor) checkpoint it
        # pre-compensates the positive walk, which will replay the eviction
        # of this already-committed entry after a restore.
        code = pdst | self._ext_bit
        self.rob_xor ^= code
        for mirror in self._mirrors.values():
            if mirror.valid:
                mirror.rob_xor ^= code

    # -- recovery / checkpoints ----------------------------------------------------------

    def recovery_begin(self, cycle: int) -> None:
        self._in_recovery = True

    def recovery_end(self, cycle: int) -> None:
        # "Cost-effective debugging of multi-cycle RRS flows... by simply
        # checking that IDLD's invariance is maintained after each execution
        # of such flows" (Section V.C): evaluate at the flow boundary itself,
        # so a violation cannot hide between back-to-back recoveries.
        self._in_recovery = False
        self._check(cycle)

    def _mirror(self, slot: int) -> _CheckpointMirror:
        if slot not in self._mirrors:
            self._mirrors[slot] = _CheckpointMirror()
        return self._mirrors[slot]

    def checkpoint_content(self, slot: int, pos: int) -> None:
        mirror = self._mirror(slot)
        mirror.rat_xor = self.rat_xor
        mirror.rob_xor = self.rob_xor
        mirror.pos = pos
        mirror.valid = True

    def checkpoint_meta(self, slot: int, pos: int) -> None:
        # Metadata advances even when the content capture was suppressed by
        # a bug; the stale XORs stay, mirroring the stale RAT image.
        mirror = self._mirror(slot)
        mirror.pos = pos
        mirror.valid = True

    def checkpoint_restored(self, slot: int) -> None:
        mirror = self._mirror(slot)
        self.rat_xor = mirror.rat_xor
        self.rob_xor = mirror.rob_xor

    def checkpoint_freed(self, slot: int) -> None:
        if slot in self._mirrors:
            self._mirrors[slot].valid = False

    # -- the check -----------------------------------------------------------------------

    @property
    def syndrome(self) -> int:
        """Current deviation of the code from the invariant constant."""
        return self.fl_xor ^ self.rat_xor ^ self.rob_xor ^ self._expected

    def cycle_end(self, cycle: int) -> None:
        if self._in_recovery:
            return
        self._check(cycle)

    def _check(self, cycle: int) -> None:
        if not self.enabled:
            return
        syndrome = self.syndrome
        if syndrome != 0:
            self.violations.append(
                Violation(cycle, self.fl_xor, self.rat_xor, self.rob_xor, syndrome)
            )

    def fast_forward(
        self, start_cycle: int, end_cycle: int, pipeline_empty: bool
    ) -> None:
        """Closed-form replay of ``cycle_end`` over a skipped quiescent span.

        No port traffic happens in the span, so the XOR registers — and
        therefore the syndrome — are constant across it: per-cycle stepping
        would have appended one identical :class:`Violation` per cycle (or
        none). Replaying that in bulk is exact, which is what lets the core
        keep this checker attached while fast-forwarding (see the
        bulk-replay protocol in :mod:`repro.core.rrs.ports`).
        """
        if self._in_recovery or not self.enabled:
            return
        syndrome = self.syndrome
        if syndrome == 0:
            return
        fl, rat, rob = self.fl_xor, self.rat_xor, self.rob_xor
        self.violations.extend(
            Violation(cycle, fl, rat, rob, syndrome)
            for cycle in range(start_cycle + 1, end_cycle + 1)
        )

    # -- results ---------------------------------------------------------------------------

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.violations[0].cycle if self.violations else None

    # -- warm-start snapshot/restore -----------------------------------------

    def save_state(self) -> tuple:
        """Snapshot the full checker state (XORs, recovery flag, checkpoint
        mirrors, violations) as plain tuples for the warm-start layer."""
        return (
            self.enabled,
            self.fl_xor,
            self.rat_xor,
            self.rob_xor,
            self._ext_bit,
            self._expected,
            self._in_recovery,
            tuple(
                (slot, m.pos, m.rat_xor, m.rob_xor, m.valid)
                for slot, m in self._mirrors.items()
            ),
            tuple(
                (v.cycle, v.fl_xor, v.rat_xor, v.rob_xor, v.syndrome)
                for v in self.violations
            ),
        )

    def load_state(self, state: tuple) -> None:
        """Restore a :meth:`save_state` snapshot."""
        (
            self.enabled,
            self.fl_xor,
            self.rat_xor,
            self.rob_xor,
            self._ext_bit,
            self._expected,
            self._in_recovery,
            mirrors,
            violations,
        ) = state
        self._mirrors = {
            slot: _CheckpointMirror(pos, rat_xor, rob_xor, valid)
            for slot, pos, rat_xor, rob_xor, valid in mirrors
        }
        self.violations = [Violation(*v) for v in violations]

    @staticmethod
    def tracking_of(state: tuple) -> tuple:
        """The *tracking* projection of a :meth:`save_state` tuple: the XOR
        codes, recovery flag, and checkpoint mirrors that determine every
        future observation — excluding the recorded violations, which are
        results rather than evolving state. Mirrors are normalized by slot
        so two states touching checkpoints in a different order still
        compare equal. Used by the differential-execution convergence
        predicate (:mod:`repro.bugs.differential`)."""
        return state[:7] + (tuple(sorted(state[7])),)
