"""MiBench *bitcount* analog: population count over an input array.

Data-dependent inner-loop trip counts make the branch predictor miss
irregularly, exercising flush recovery throughout the run.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 1000


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Count set bits of ``scaled(48*scale)`` words; outputs the total and a
    per-word-parity checksum."""
    n = scaled(48, scale)
    data = input_words(seed, n, bits=16)
    b = ProgramBuilder("bitcount")
    b.data(DATA_BASE, data)
    b.li(ZERO, 0)
    b.li(1, 0)           # i
    b.li(2, n)           # n
    b.li(3, 0)           # total
    b.li(8, 0)           # parity checksum
    b.label("word")
    b.addi(4, 1, DATA_BASE)
    b.ld(5, 4, 0)        # v = data[i]
    b.li(6, 0)           # cnt = 0
    b.label("bit")
    b.andi(7, 5, 1)
    b.add(6, 6, 7)
    b.srli(5, 5, 1)
    b.bne(5, ZERO, "bit")
    b.add(3, 3, 6)       # total += cnt
    b.andi(9, 6, 1)
    b.slli(8, 8, 1)
    b.or_(8, 8, 9)       # checksum = checksum<<1 | (cnt&1)
    b.andi(8, 8, 0xFFFF)
    b.addi(1, 1, 1)
    b.blt(1, 2, "word")
    b.out(3)
    b.out(8)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python model of the program's output (for validation tests)."""
    n = scaled(48, scale)
    data = input_words(seed, n, bits=16)
    total = 0
    checksum = 0
    for v in data:
        cnt = bin(v).count("1")
        total += cnt
        checksum = ((checksum << 1) | (cnt & 1)) & 0xFFFF
    return [total, checksum]
