"""MiBench *CRC32* analog: bitwise (table-less) CRC-32 over a byte stream.

Long dependent chains through the crc register plus a data-dependent
conditional XOR per bit -- the classic serial workload of the suite.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 1200
POLY = 0xEDB88320
MASK32 = 0xFFFFFFFF


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """CRC-32 of ``scaled(40*scale)`` bytes; outputs the final CRC."""
    n = scaled(40, scale)
    data = [w & 0xFF for w in input_words(seed, n, bits=8)]
    b = ProgramBuilder("crc32")
    b.data(DATA_BASE, data)
    b.li(ZERO, 0)
    b.li(1, 0)            # i
    b.li(2, n)            # n
    b.li(3, MASK32)       # crc = 0xFFFFFFFF
    b.li(16, POLY)        # polynomial
    b.label("byte")
    b.addi(4, 1, DATA_BASE)
    b.ld(5, 4, 0)         # b = data[i]
    b.xor(3, 3, 5)        # crc ^= b
    b.li(6, 8)            # k = 8
    b.label("bit")
    b.andi(7, 3, 1)       # lsb
    b.srli(3, 3, 1)
    b.sub(8, ZERO, 7)     # mask = -lsb (all ones iff lsb set)
    b.and_(8, 8, 16)      # poly & mask
    b.xor(3, 3, 8)        # crc ^= poly (branchless, like the table form)
    b.addi(6, 6, -1)
    b.bne(6, ZERO, "bit")
    b.addi(1, 1, 1)
    b.blt(1, 2, "byte")
    b.xori(3, 3, MASK32)  # final inversion
    b.li(17, MASK32)
    b.and_(3, 3, 17)
    b.out(3)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python CRC-32 of the same byte stream."""
    n = scaled(40, scale)
    data = [w & 0xFF for w in input_words(seed, n, bits=8)]
    crc = MASK32
    for byte in data:
        crc ^= byte
        for _ in range(8):
            lsb = crc & 1
            crc >>= 1
            if lsb:
                crc ^= POLY
    return [(crc ^ MASK32) & MASK32]
