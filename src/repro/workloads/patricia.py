"""MiBench *patricia* analog: bitwise binary trie insert + lookup.

Nodes live in three parallel arrays (left child, right child, leaf value);
traversal is pointer chasing with a branch per key bit -- the suite's
irregular-memory, deep-dependence workload.
"""

from __future__ import annotations

import random

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, scaled

LEFT_BASE = 6400
RIGHT_BASE = 6700
VALUE_BASE = 7000
KEY_BITS = 8


def _keys(num_keys: int, num_probes: int, seed: int):
    rng = random.Random(seed)
    keys = rng.sample(range(1 << KEY_BITS), num_keys)
    probes = [rng.randrange(1 << KEY_BITS) for _ in range(num_probes)]
    probes.extend(rng.sample(keys, min(4, len(keys))))  # guaranteed hits
    return keys, probes


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Insert ``scaled(14*scale)`` keys then probe ``scaled(20*scale)``;
    outputs node count, hit count and hit-value sum."""
    num_keys = scaled(14, scale)
    num_probes = scaled(20, scale)
    keys, probes = _keys(num_keys, num_probes, seed)
    key_base = 7300
    probe_base = 7400
    b = ProgramBuilder("patricia")
    b.data(key_base, keys)
    b.data(probe_base, probes)
    b.li(ZERO, 0)
    b.li(1, 1)                  # next free node (0 = root)
    # -- insertion loop --
    b.li(2, 0)                  # key index
    b.li(3, len(keys))
    b.label("ins")
    b.addi(4, 2, key_base)
    b.ld(5, 4, 0)               # key
    b.li(6, 0)                  # node = root
    b.li(7, KEY_BITS - 1)       # bit position
    b.label("ins_bit")
    b.srl(8, 5, 7)
    b.andi(8, 8, 1)             # bit
    b.beq(8, ZERO, "ins_left")
    b.addi(9, 6, RIGHT_BASE)
    b.jmp("ins_step")
    b.label("ins_left")
    b.addi(9, 6, LEFT_BASE)
    b.label("ins_step")
    b.ld(10, 9, 0)              # child
    b.bne(10, ZERO, "ins_go")
    b.st(9, 1, 0)               # allocate: child = next free node
    b.add(10, 1, ZERO)
    b.addi(1, 1, 1)
    b.label("ins_go")
    b.add(6, 10, ZERO)          # node = child
    b.addi(7, 7, -1)
    b.bge(7, ZERO, "ins_bit")
    b.addi(9, 6, VALUE_BASE)
    b.st(9, 5, 0)               # leaf value = key
    b.addi(2, 2, 1)
    b.blt(2, 3, "ins")
    # -- probe loop --
    b.li(2, 0)
    b.li(3, len(probes))
    b.li(11, 0)                 # hits
    b.li(12, 0)                 # hit value sum
    b.label("probe")
    b.addi(4, 2, probe_base)
    b.ld(5, 4, 0)               # probe key
    b.li(6, 0)
    b.li(7, KEY_BITS - 1)
    b.label("pr_bit")
    b.srl(8, 5, 7)
    b.andi(8, 8, 1)
    b.beq(8, ZERO, "pr_left")
    b.addi(9, 6, RIGHT_BASE)
    b.jmp("pr_step")
    b.label("pr_left")
    b.addi(9, 6, LEFT_BASE)
    b.label("pr_step")
    b.ld(10, 9, 0)
    b.beq(10, ZERO, "pr_next")  # missing edge -> miss
    b.add(6, 10, ZERO)
    b.addi(7, 7, -1)
    b.bge(7, ZERO, "pr_bit")
    b.addi(9, 6, VALUE_BASE)
    b.ld(10, 9, 0)
    b.bne(10, 5, "pr_next")     # stale leaf -> miss
    b.addi(11, 11, 1)
    b.add(12, 12, 5)
    b.label("pr_next")
    b.addi(2, 2, 1)
    b.blt(2, 3, "probe")
    b.out(1)                    # node count
    b.out(11)
    b.out(12)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python trie with identical allocation order."""
    num_keys = scaled(14, scale)
    num_probes = scaled(20, scale)
    keys, probes = _keys(num_keys, num_probes, seed)
    left = {}
    right = {}
    value = {}
    next_node = 1
    for key in keys:
        node = 0
        for bit_pos in range(KEY_BITS - 1, -1, -1):
            bit = (key >> bit_pos) & 1
            table = right if bit else left
            child = table.get(node, 0)
            if child == 0:
                table[node] = next_node
                child = next_node
                next_node += 1
            node = child
        value[node] = key
    hits = 0
    hit_sum = 0
    for key in probes:
        node = 0
        ok = True
        for bit_pos in range(KEY_BITS - 1, -1, -1):
            bit = (key >> bit_pos) & 1
            child = (right if bit else left).get(node, 0)
            if child == 0:
                ok = False
                break
            node = child
        if ok and value.get(node) == key:
            hits += 1
            hit_sum += key
    return [next_node, hits, hit_sum]
