"""MiBench *basicmath* analog: gcd chains and Newton integer square roots.

Division/remainder-heavy with long-latency units busy most of the time;
convergence-test branches depend on iterated arithmetic.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 5000


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def _isqrt(v: int) -> int:
    if v < 2:
        return v
    x = v
    y = (x + 1) // 2
    while y < x:
        x = y
        y = (x + v // x) // 2
    return x


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """gcd of ``scaled(12*scale)`` pairs plus isqrt of each pair sum;
    outputs the two accumulated sums."""
    pairs = scaled(12, scale)
    data = [v + 1 for v in input_words(seed, 2 * pairs, bits=14)]
    b = ProgramBuilder("basicmath")
    b.data(DATA_BASE, data)
    b.li(ZERO, 0)
    b.li(1, 0)                  # pair index
    b.li(2, pairs)
    b.li(3, 0)                  # gcd sum
    b.li(4, 0)                  # isqrt sum
    b.label("pair")
    b.slli(5, 1, 1)
    b.addi(5, 5, DATA_BASE)
    b.ld(6, 5, 0)               # a
    b.ld(7, 5, 1)               # b
    # -- Euclid --
    b.label("gcd")
    b.beq(7, ZERO, "gcd_done")
    b.rem(8, 6, 7)
    b.add(6, 7, ZERO)
    b.add(7, 8, ZERO)
    b.jmp("gcd")
    b.label("gcd_done")
    b.add(3, 3, 6)
    # -- Newton isqrt of a + b (reload operands) --
    b.ld(6, 5, 0)
    b.ld(7, 5, 1)
    b.add(9, 6, 7)              # v
    b.slti(10, 9, 2)
    b.bne(10, ZERO, "small")
    b.add(11, 9, ZERO)          # x = v
    b.addi(12, 9, 1)
    b.srli(12, 12, 1)           # y = (v + 1) >> 1
    b.label("newton")
    b.bge(12, 11, "isq_done")   # while y < x
    b.add(11, 12, ZERO)         # x = y
    b.div(13, 9, 11)            # v / x
    b.add(12, 11, 13)
    b.srli(12, 12, 1)           # y = (x + v/x) >> 1
    b.jmp("newton")
    b.label("small")
    b.add(11, 9, ZERO)
    b.label("isq_done")
    b.add(4, 4, 11)
    b.addi(1, 1, 1)
    b.blt(1, 2, "pair")
    b.out(3)
    b.out(4)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python gcd/isqrt sums over the same pairs."""
    pairs = scaled(12, scale)
    data = [v + 1 for v in input_words(seed, 2 * pairs, bits=14)]
    gcd_sum = 0
    isq_sum = 0
    for i in range(pairs):
        a, b = data[2 * i], data[2 * i + 1]
        gcd_sum += _gcd(a, b)
        isq_sum += _isqrt(a + b)
    return [gcd_sum, isq_sum]
