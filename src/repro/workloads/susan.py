"""MiBench *susan* analog: 3x3 neighbourhood smoothing + corner threshold.

Two-dimensional strided loads with a per-pixel threshold branch; output is
the corner count plus a smoothed-image checksum.
"""

from __future__ import annotations

import random

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, scaled

IMG_BASE = 8000
OUT_BASE = 9200
THRESHOLD = 48


def _dims(scale: float):
    side = scaled(10, scale, minimum=5)
    return side, side


def _image(width: int, height: int, seed: int):
    rng = random.Random(seed)
    return [rng.randrange(256) for _ in range(width * height)]


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Smooth a ``~(10*scale)^2`` image; outputs corner count and checksum."""
    width, height = _dims(scale)
    img = _image(width, height, seed)
    b = ProgramBuilder("susan")
    b.data(IMG_BASE, img)
    b.li(ZERO, 0)
    b.li(1, 1)                   # y
    b.li(2, height - 1)
    b.li(16, width)
    b.li(17, THRESHOLD)
    b.li(14, 0)                  # corner count
    b.li(15, 0)                  # checksum
    b.label("row")
    b.li(3, 1)                   # x
    b.li(4, width)
    b.addi(4, 4, -1)
    b.label("col")
    b.mul(5, 1, 16)
    b.add(5, 5, 3)               # idx = y * width + x
    b.addi(5, 5, IMG_BASE)
    # 3x3 neighbourhood sum.
    b.li(6, 0)
    b.sub(7, 5, 16)              # row above
    b.ld(8, 7, -1)
    b.add(6, 6, 8)
    b.ld(8, 7, 0)
    b.add(6, 6, 8)
    b.ld(8, 7, 1)
    b.add(6, 6, 8)
    b.ld(8, 5, -1)
    b.add(6, 6, 8)
    b.ld(9, 5, 0)                # center
    b.add(6, 6, 9)
    b.ld(8, 5, 1)
    b.add(6, 6, 8)
    b.add(7, 5, 16)              # row below
    b.ld(8, 7, -1)
    b.add(6, 6, 8)
    b.ld(8, 7, 0)
    b.add(6, 6, 8)
    b.ld(8, 7, 1)
    b.add(6, 6, 8)
    # smoothed = sum / 9
    b.li(10, 9)
    b.div(11, 6, 10)
    # corner if |center - smoothed| > threshold
    b.sub(12, 9, 11)
    b.blt(12, ZERO, "negate")
    b.jmp("absdone")
    b.label("negate")
    b.sub(12, ZERO, 12)
    b.label("absdone")
    b.blt(17, 12, "corner")
    b.jmp("store")
    b.label("corner")
    b.addi(14, 14, 1)
    b.label("store")
    b.mul(13, 1, 16)
    b.add(13, 13, 3)
    b.addi(13, 13, OUT_BASE)
    b.st(13, 11, 0)
    b.add(15, 15, 11)
    b.xor(15, 15, 12)
    b.addi(3, 3, 1)
    b.blt(3, 4, "col")
    b.addi(1, 1, 1)
    b.blt(1, 2, "row")
    b.out(14)
    b.out(15)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python smoothing/threshold over the same image."""
    width, height = _dims(scale)
    img = _image(width, height, seed)
    corners = 0
    checksum = 0
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            total = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    total += img[(y + dy) * width + (x + dx)]
            center = img[y * width + x]
            smoothed = total // 9
            diff = abs(center - smoothed)
            if diff > THRESHOLD:
                corners += 1
            checksum = (checksum + smoothed) ^ diff
    return [corners, checksum]
