"""MiBench *stringsearch* analog: naive substring search, word-per-char.

Early-exit mismatch comparisons give short, unpredictable inner loops --
the highest branch-per-instruction ratio in the suite.
"""

from __future__ import annotations

import random

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, scaled

TEXT_BASE = 4000
PAT_BASE = 4600


def _inputs(n: int, m: int, seed: int):
    rng = random.Random(seed)
    alphabet = 4  # small alphabet -> plenty of partial matches
    text = [rng.randrange(alphabet) for _ in range(n)]
    pattern = [rng.randrange(alphabet) for _ in range(m)]
    # Plant a few true matches.
    for _ in range(3):
        pos = rng.randrange(0, max(1, n - m))
        text[pos:pos + m] = pattern
    return text, pattern


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Search a planted pattern in ``scaled(80*scale)`` chars; outputs the
    match count and the sum of match positions."""
    n = scaled(80, scale)
    m = 4
    text, pattern = _inputs(n, m, seed)
    b = ProgramBuilder("stringsearch")
    b.data(TEXT_BASE, text)
    b.data(PAT_BASE, pattern)
    b.li(ZERO, 0)
    b.li(1, 0)                  # i (text index)
    b.li(2, n - m + 1)          # limit
    b.li(3, m)
    b.li(4, 0)                  # matches
    b.li(5, 0)                  # position sum
    b.label("outer")
    b.li(6, 0)                  # k
    b.label("cmp")
    b.add(7, 1, 6)
    b.addi(7, 7, TEXT_BASE)
    b.ld(8, 7, 0)               # text[i+k]
    b.addi(9, 6, PAT_BASE)
    b.ld(10, 9, 0)              # pattern[k]
    b.bne(8, 10, "miss")
    b.addi(6, 6, 1)
    b.blt(6, 3, "cmp")
    b.addi(4, 4, 1)             # full match
    b.add(5, 5, 1)
    b.label("miss")
    b.addi(1, 1, 1)
    b.blt(1, 2, "outer")
    b.out(4)
    b.out(5)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python naive search over the same inputs."""
    n = scaled(80, scale)
    m = 4
    text, pattern = _inputs(n, m, seed)
    matches = 0
    possum = 0
    for i in range(n - m + 1):
        if text[i:i + m] == pattern:
            matches += 1
            possum += i
    return [matches, possum]
