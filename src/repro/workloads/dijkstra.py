"""MiBench *dijkstra* analog: single-source shortest paths, O(V^2) scan.

Adjacency matrix, distance array and visited flags all live in data
memory, giving the run a load/store-heavy profile with comparison
branches whose outcomes depend on accumulated path lengths.
"""

from __future__ import annotations

import random

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, scaled

ADJ_BASE = 2000
DIST_BASE = 3200
SEEN_BASE = 3300
INF = 1 << 20


def _graph(num_nodes: int, seed: int):
    """Random sparse-ish weighted digraph as a dense matrix (INF = absent)."""
    rng = random.Random(seed)
    matrix = [[INF] * num_nodes for _ in range(num_nodes)]
    for i in range(num_nodes):
        matrix[i][i] = 0
        for j in range(num_nodes):
            if i != j and rng.random() < 0.45:
                matrix[i][j] = rng.randint(1, 50)
    return matrix


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Shortest paths from node 0 on ``scaled(10*scale)`` nodes; outputs
    every distance."""
    v = scaled(10, scale, minimum=3)
    matrix = _graph(v, seed)
    b = ProgramBuilder("dijkstra")
    flat = [matrix[i][j] for i in range(v) for j in range(v)]
    b.data(ADJ_BASE, flat)
    b.data(DIST_BASE, [0] + [INF] * (v - 1))
    b.data(SEEN_BASE, [0] * v)
    b.li(ZERO, 0)
    b.li(1, 0)                  # iteration count
    b.li(2, v)
    b.li(16, INF)
    b.label("iter")
    # -- select unvisited node u with minimal dist --
    b.li(3, -1)                 # u = -1
    b.li(4, INF + 1)            # best
    b.li(5, 0)                  # j
    b.label("select")
    b.addi(6, 5, SEEN_BASE)
    b.ld(7, 6, 0)               # seen[j]
    b.bne(7, ZERO, "sel_next")
    b.addi(6, 5, DIST_BASE)
    b.ld(7, 6, 0)               # dist[j]
    b.bge(7, 4, "sel_next")
    b.add(4, 7, ZERO)           # best = dist[j]
    b.add(3, 5, ZERO)           # u = j
    b.label("sel_next")
    b.addi(5, 5, 1)
    b.blt(5, 2, "select")
    b.blt(3, ZERO, "done")      # no reachable unvisited node left
    # -- mark u visited --
    b.addi(6, 3, SEEN_BASE)
    b.li(7, 1)
    b.st(6, 7, 0)
    # -- relax all edges (u, j) --
    b.mul(8, 3, 2)              # u * v
    b.addi(8, 8, ADJ_BASE)      # row base
    b.li(5, 0)
    b.label("relax")
    b.add(6, 8, 5)
    b.ld(7, 6, 0)               # w(u, j)
    b.bge(7, 16, "rel_next")    # absent edge
    b.add(9, 4, 7)              # cand = dist[u] + w
    b.addi(10, 5, DIST_BASE)
    b.ld(11, 10, 0)             # dist[j]
    b.bge(9, 11, "rel_next")
    b.st(10, 9, 0)              # dist[j] = cand
    b.label("rel_next")
    b.addi(5, 5, 1)
    b.blt(5, 2, "relax")
    b.addi(1, 1, 1)
    b.blt(1, 2, "iter")
    b.label("done")
    b.li(5, 0)
    b.label("emit")
    b.addi(6, 5, DIST_BASE)
    b.ld(7, 6, 0)
    b.out(7)
    b.addi(5, 5, 1)
    b.blt(5, 2, "emit")
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python Dijkstra over the same graph."""
    v = scaled(10, scale, minimum=3)
    matrix = _graph(v, seed)
    dist = [0] + [INF] * (v - 1)
    seen = [False] * v
    for _ in range(v):
        u, best = -1, INF + 1
        for j in range(v):
            if not seen[j] and dist[j] < best:
                best, u = dist[j], j
        if u < 0:
            break
        seen[u] = True
        for j in range(v):
            w = matrix[u][j]
            if w < INF and best + w < dist[j]:
                dist[j] = best + w
    return dist
