"""Random-but-always-halting program generator.

Used for differential fuzzing: every generated program terminates (loops
are counted, never data-controlled), so the cycle-level core can be
validated instruction-for-instruction against the architectural reference
interpreter across thousands of random dataflow/branch/memory shapes.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.isa.instructions import Opcode
from repro.isa.program import Program, ProgramBuilder

#: ALU opcodes the generator draws from (register-register form).
_ALU_OPS = ("add", "sub", "mul", "and_", "or_", "xor", "slt", "sltu")
_IMM_OPS = ("addi", "andi", "ori", "xori")


def random_program(
    seed: int,
    blocks: int = 6,
    block_len: int = 8,
    max_loop_iters: int = 12,
    data_words: int = 32,
    name: Optional[str] = None,
    zero_idiom_rate: float = 0.0,
) -> Program:
    """Generate one random halting program.

    Structure: ``blocks`` basic blocks; each block is a counted loop over
    ``block_len`` random ALU/memory operations, plus a data-dependent (but
    re-convergent) conditional skip. Every block OUTs a live register, so
    bug-corrupted dataflow shows up in the output.

    Args:
        seed: Generator seed (fully determines the program).
        blocks: Number of loop blocks.
        block_len: Operations per loop body.
        max_loop_iters: Upper bound on each loop's trip count.
        data_words: Size of the scratch/data region.
        name: Program name (defaults to ``fuzz<seed>``).

    Returns:
        A halting :class:`Program`.
    """
    rng = random.Random(seed)
    b = ProgramBuilder(name or f"fuzz{seed}")
    base = 10_000
    b.data(base, [rng.getrandbits(16) for _ in range(data_words)])
    b.li(31, 0)
    # Seed a handful of live registers.
    for reg in range(1, 8):
        b.li(reg, rng.getrandbits(12))
    b.li(20, base)  # data pointer
    for block in range(blocks):
        counter = 21
        iters = rng.randint(1, max_loop_iters)
        b.li(counter, iters)
        b.label(f"blk{block}")
        for _ in range(block_len):
            kind = rng.random()
            rd = rng.randint(1, 7)
            rs1 = rng.randint(1, 7)
            rs2 = rng.randint(1, 7)
            if rng.random() < zero_idiom_rate:
                # Zero idioms (eliminable when the core's V.E optimization
                # is on; ordinary instructions otherwise).
                if rng.random() < 0.5:
                    b.li(rd, 0)
                else:
                    b.xor(rd, rs1, rs1)
                continue
            if kind < 0.55:
                getattr(b, rng.choice(_ALU_OPS))(rd, rs1, rs2)
            elif kind < 0.7:
                getattr(b, rng.choice(_IMM_OPS))(rd, rs1, rng.getrandbits(10))
            elif kind < 0.85:
                offset = rng.randrange(data_words)
                b.ld(rd, 20, offset)
            else:
                offset = rng.randrange(data_words)
                b.st(20, rs2, offset)
        # Data-dependent skip that re-converges immediately.
        skip = f"skip{block}_{rng.randrange(1 << 30)}"
        test = rng.randint(1, 7)
        b.andi(8, test, 1)
        b.beq(8, 31, skip)
        b.xor(rng.randint(1, 7), rng.randint(1, 7), test)
        b.label(skip)
        b.addi(counter, counter, -1)
        b.bne(counter, 31, f"blk{block}")
        b.out(rng.randint(1, 7))
    b.halt()
    return b.build()
