"""Shared conventions for the MiBench-analog workloads.

Register conventions (by convention only; nothing is enforced):

* ``r31`` holds the constant 0 for branch comparisons,
* ``r1``-``r15`` are algorithm locals,
* ``r16``-``r30`` hold addresses and large constants.

Every workload exposes ``build(scale=1.0, seed=7) -> Program``; ``scale``
stretches the input size (and therefore the golden run length) linearly,
``seed`` drives the embedded input data. All ten defaults are tuned so a
golden run takes a few thousand cycles on the paper's 4-wide RRS
configuration -- big enough to exercise thousands of renames, small enough
for Python-scale injection campaigns.
"""

from __future__ import annotations

import random
from typing import List

ZERO = 31  # conventional always-zero register


def scaled(base: int, scale: float, minimum: int = 2) -> int:
    """Scale an input-size knob, keeping it sane."""
    return max(minimum, int(round(base * scale)))


def input_words(seed: int, count: int, bits: int = 16) -> List[int]:
    """Deterministic pseudo-random input data for a workload."""
    rng = random.Random(seed)
    return [rng.getrandbits(bits) for _ in range(count)]
