"""MiBench *sha* analog: a rotate/add/xor compression loop over a message.

Straight-line arithmetic with rotates through four chaining registers --
high rename pressure, few mispredicts (the suite's low-masking end: the
paper notes sha has zero persisting masked bugs, Figure 4).
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 1400
MASK32 = 0xFFFFFFFF
H0, H1, H2, H3 = 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476


def _rotl32(value: int, amount: int) -> int:
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Compress ``scaled(56*scale)`` message words; outputs the 4 h-words."""
    n = scaled(56, scale)
    message = input_words(seed, n, bits=32)
    b = ProgramBuilder("sha")
    b.data(DATA_BASE, message)
    b.li(ZERO, 0)
    b.li(1, 0)        # i
    b.li(2, n)
    b.li(3, H0)
    b.li(4, H1)
    b.li(5, H2)
    b.li(6, H3)
    b.li(17, MASK32)
    b.label("round")
    b.addi(7, 1, DATA_BASE)
    b.ld(8, 7, 0)             # w
    # a = rotl32(h0, 5) + (h1 ^ h3) + w
    b.slli(9, 3, 5)
    b.srli(10, 3, 27)
    b.or_(9, 9, 10)
    b.and_(9, 9, 17)          # rotl32(h0, 5)
    b.xor(11, 4, 6)           # h1 ^ h3
    b.add(9, 9, 11)
    b.add(9, 9, 8)
    b.and_(9, 9, 17)          # a &= mask
    # h3 = h2; h2 = rotl32(h1, 13); h1 = h0; h0 = a
    b.add(6, 5, ZERO)
    b.slli(12, 4, 13)
    b.srli(13, 4, 19)
    b.or_(12, 12, 13)
    b.and_(5, 12, 17)
    b.add(4, 3, ZERO)
    b.add(3, 9, ZERO)
    b.addi(1, 1, 1)
    b.blt(1, 2, "round")
    b.out(3)
    b.out(4)
    b.out(5)
    b.out(6)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python model of the compression loop."""
    n = scaled(56, scale)
    message = input_words(seed, n, bits=32)
    h0, h1, h2, h3 = H0, H1, H2, H3
    for w in message:
        a = (_rotl32(h0, 5) + (h1 ^ h3) + w) & MASK32
        h3 = h2
        h2 = _rotl32(h1, 13)
        h1 = h0
        h0 = a
    return [h0, h1, h2, h3]
