"""MiBench *qsort* analog: in-memory sort with data-dependent inner loop.

Implemented as an insertion sort (same O(n^2) data-movement/branching
profile at these input sizes): the inner shift loop's trip count depends
entirely on the data, so branch behaviour is highly irregular.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 1600


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Sort ``scaled(24*scale)`` words; outputs min, max and an
    order-weighted checksum."""
    n = scaled(24, scale)
    data = input_words(seed, n, bits=12)
    b = ProgramBuilder("qsort")
    b.data(DATA_BASE, data)
    b.li(ZERO, 0)
    b.li(1, 1)                 # i = 1
    b.li(2, n)
    b.label("outer")
    b.addi(3, 1, DATA_BASE)
    b.ld(4, 3, 0)              # key = a[i]
    b.addi(5, 1, -1)           # j = i - 1
    b.label("inner")
    b.blt(5, ZERO, "place")
    b.addi(6, 5, DATA_BASE)
    b.ld(7, 6, 0)              # a[j]
    b.bge(4, 7, "place")       # while a[j] > key
    b.st(6, 7, 1)              # a[j+1] = a[j]
    b.addi(5, 5, -1)
    b.jmp("inner")
    b.label("place")
    b.addi(6, 5, DATA_BASE)
    b.st(6, 4, 1)              # a[j+1] = key
    b.addi(1, 1, 1)
    b.blt(1, 2, "outer")
    # Emit min, max, weighted checksum sum(i * a[i]).
    b.li(8, DATA_BASE)
    b.ld(9, 8, 0)              # min = a[0]
    b.addi(10, 8, 0)
    b.ld(11, 10, n - 1)        # max = a[n-1]
    b.out(9)
    b.out(11)
    b.li(1, 0)
    b.li(12, 0)                # checksum
    b.label("sum")
    b.addi(3, 1, DATA_BASE)
    b.ld(4, 3, 0)
    b.mul(4, 4, 1)
    b.add(12, 12, 4)
    b.addi(1, 1, 1)
    b.blt(1, 2, "sum")
    b.out(12)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python model: sorted min/max and the weighted checksum."""
    n = scaled(24, scale)
    data = sorted(input_words(seed, n, bits=12))
    checksum = sum(i * v for i, v in enumerate(data))
    return [data[0], data[-1], checksum]
