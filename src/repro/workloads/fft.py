"""MiBench *fft* analog: in-place butterfly passes over a fixed-point array.

log2(n) stages of stride-doubling butterflies with a rotating coefficient,
all in 32-bit fixed point -- regular control flow, memory-strided access,
multiplier-bound arithmetic.
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder
from repro.workloads.common import ZERO, input_words, scaled

DATA_BASE = 5600
MASK32 = 0xFFFFFFFF
COEFF = 0x9E37  # rotating butterfly coefficient


def _size(scale: float) -> int:
    n = 8
    target = scaled(32, scale, minimum=8)
    while n * 2 <= target:
        n *= 2
    return n


def build(scale: float = 1.0, seed: int = 7) -> Program:
    """Butterfly passes over ``2^k ~ 32*scale`` points; outputs a final
    checksum and the last element."""
    n = _size(scale)
    data = input_words(seed, n, bits=16)
    b = ProgramBuilder("fft")
    b.data(DATA_BASE, data)
    b.li(ZERO, 0)
    b.li(1, 1)                  # stride
    b.li(2, n)
    b.li(16, COEFF)
    b.li(17, MASK32)
    b.label("stage")
    b.li(3, 0)                  # i
    b.label("pair")
    b.addi(4, 3, DATA_BASE)
    b.ld(5, 4, 0)               # a = x[i]
    b.add(6, 4, 1)
    b.ld(7, 6, 0)               # b = x[i + stride]
    b.mul(8, 7, 16)
    b.srli(8, 8, 8)             # t = (b * coeff) >> 8
    b.and_(8, 8, 17)
    b.add(9, 5, 8)
    b.and_(9, 9, 17)            # a' = (a + t) & mask
    b.sub(10, 5, 8)
    b.and_(10, 10, 17)          # b' = (a - t) & mask
    b.st(4, 9, 0)
    b.st(6, 10, 0)
    b.slli(11, 1, 1)
    b.add(3, 3, 11)             # i += 2 * stride
    b.blt(3, 2, "pair")
    b.slli(1, 1, 1)             # stride *= 2
    b.blt(1, 2, "stage")
    # Checksum pass.
    b.li(3, 0)
    b.li(12, 0)
    b.label("sum")
    b.addi(4, 3, DATA_BASE)
    b.ld(5, 4, 0)
    b.xor(12, 12, 5)
    b.add(12, 12, 3)
    b.and_(12, 12, 17)
    b.addi(3, 3, 1)
    b.blt(3, 2, "sum")
    b.out(12)
    b.ld(5, 4, 0)               # last element (r4 still points at it)
    b.out(5)
    b.halt()
    return b.build()


def expected(scale: float = 1.0, seed: int = 7):
    """Pure-Python model of the butterfly passes and checksum."""
    n = _size(scale)
    x = input_words(seed, n, bits=16)
    stride = 1
    while stride < n:
        i = 0
        while i < n:
            a, bval = x[i], x[i + stride]
            t = ((bval * COEFF) >> 8) & MASK32
            x[i] = (a + t) & MASK32
            x[i + stride] = (a - t) & MASK32
            i += 2 * stride
        stride *= 2
    checksum = 0
    for i, v in enumerate(x):
        checksum = ((checksum ^ v) + i) & MASK32
    return [checksum, x[n - 1]]
