"""MiBench-analog workload suite (Section IV.A substitution).

The paper's bug-modeling study runs ten MiBench benchmarks end-to-end on
gem5. This package provides ten analogs for the mini ISA, chosen to span
the same behavioural axes that drive masking/persistence statistics:
branch-misprediction rate (flush recovery pressure), register reuse
distance (RAT eviction patterns), memory intensity and output density.

Each module exposes ``build(scale, seed) -> Program`` and a pure-Python
``expected(scale, seed)`` model used by the validation tests.
"""

from typing import Callable, Dict

from repro.isa.program import Program
from repro.workloads import (
    basicmath,
    bitcount,
    crc32,
    dijkstra,
    fft,
    patricia,
    qsort,
    sha,
    stringsearch,
    susan,
)
from repro.workloads.generator import random_program

#: name -> builder, in the paper's benchmark-suite spirit.
WORKLOADS: Dict[str, Callable[..., Program]] = {
    "basicmath": basicmath.build,
    "bitcount": bitcount.build,
    "crc32": crc32.build,
    "dijkstra": dijkstra.build,
    "fft": fft.build,
    "patricia": patricia.build,
    "qsort": qsort.build,
    "sha": sha.build,
    "stringsearch": stringsearch.build,
    "susan": susan.build,
}

#: name -> pure-Python expected-output model.
EXPECTED: Dict[str, Callable[..., list]] = {
    "basicmath": basicmath.expected,
    "bitcount": bitcount.expected,
    "crc32": crc32.expected,
    "dijkstra": dijkstra.expected,
    "fft": fft.expected,
    "patricia": patricia.expected,
    "qsort": qsort.expected,
    "sha": sha.expected,
    "stringsearch": stringsearch.expected,
    "susan": susan.expected,
}


def build_suite(scale: float = 1.0, seed: int = 7) -> Dict[str, Program]:
    """Build every workload at a common scale/seed."""
    return {name: build(scale=scale, seed=seed) for name, build in WORKLOADS.items()}


__all__ = ["EXPECTED", "WORKLOADS", "build_suite", "random_program"]
