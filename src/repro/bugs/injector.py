"""Draws randomized :class:`BugSpec` instances and arms them on a fabric."""

from __future__ import annotations

import random
from typing import Iterator, Optional, Tuple, Union

from repro.bugs.models import BugModel, BugSpec
from repro.core.config import CoreConfig
from repro.core.rrs.signals import ArmedCorruption, ArmedSuppression, SignalFabric


def draw_spec(
    model: BugModel,
    rng: random.Random,
    golden_cycles: int,
    config: CoreConfig,
) -> BugSpec:
    """Draw one randomized injection for ``model``.

    The injection cycle is uniform over the first 90% of the bug-free run so
    the armed signal is virtually always exercised before the program ends
    (an armed-but-never-exercised de-assertion has no microarchitectural
    effect; see EXPERIMENTS.md on activation semantics).
    """
    window = max(2, int(golden_cycles * 0.9))
    inject_cycle = rng.randint(1, window)
    if model is BugModel.PDST_CORRUPTION:
        mask = rng.randint(1, (1 << config.pdst_bits) - 1)
        return BugSpec(model, inject_cycle, xor_mask=mask)
    array, kind = rng.choice(model.signals)
    return BugSpec(model, inject_cycle, array=array, kind=kind)


def draw_attempts(
    model: BugModel,
    derived_seed: int,
    golden_cycles: int,
    config: CoreConfig,
    max_attempts: int,
) -> Iterator[BugSpec]:
    """Yield up to ``max_attempts`` specs from a task-local random stream.

    Each injection task draws from its own ``random.Random(derived_seed)``
    rather than a campaign-wide shared RNG, so a task's draws (including
    redraws after a never-activated attempt) depend only on its seed —
    never on how many draws other tasks made before it.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
    rng = random.Random(derived_seed)
    for _ in range(max_attempts):
        yield draw_spec(model, rng, golden_cycles, config)


def arm(
    spec: BugSpec, fabric: SignalFabric
) -> Union[ArmedSuppression, ArmedCorruption]:
    """Arm a spec on a fabric; returns the armed handle for introspection."""
    if spec.model is BugModel.PDST_CORRUPTION:
        return fabric.arm_corruption(spec.inject_cycle, spec.xor_mask)
    return fabric.arm_suppression(spec.array, spec.kind, spec.inject_cycle)
