"""Draws randomized :class:`BugSpec` instances and arms them on a fabric."""

from __future__ import annotations

import random
from typing import Optional, Tuple, Union

from repro.bugs.models import BugModel, BugSpec
from repro.core.config import CoreConfig
from repro.core.rrs.signals import ArmedCorruption, ArmedSuppression, SignalFabric


def draw_spec(
    model: BugModel,
    rng: random.Random,
    golden_cycles: int,
    config: CoreConfig,
) -> BugSpec:
    """Draw one randomized injection for ``model``.

    The injection cycle is uniform over the first 90% of the bug-free run so
    the armed signal is virtually always exercised before the program ends
    (an armed-but-never-exercised de-assertion has no microarchitectural
    effect; see EXPERIMENTS.md on activation semantics).
    """
    window = max(2, int(golden_cycles * 0.9))
    inject_cycle = rng.randint(1, window)
    if model is BugModel.PDST_CORRUPTION:
        mask = rng.randint(1, (1 << config.pdst_bits) - 1)
        return BugSpec(model, inject_cycle, xor_mask=mask)
    array, kind = rng.choice(model.signals)
    return BugSpec(model, inject_cycle, array=array, kind=kind)


def arm(
    spec: BugSpec, fabric: SignalFabric
) -> Union[ArmedSuppression, ArmedCorruption]:
    """Arm a spec on a fabric; returns the armed handle for introspection."""
    if spec.model is BugModel.PDST_CORRUPTION:
        return fabric.arm_corruption(spec.inject_cycle, spec.xor_mask)
    return fabric.arm_suppression(spec.array, spec.kind, spec.inject_cycle)
