"""Differential suffix execution: delta traces + convergence termination.

Warm starting (PR 3) removed the bug-free *prefix* of every injection run;
the suffix — everything after the fault fires — was still simulated to
completion even though the overwhelming majority of injections are Benign
or Masked and spend most of that suffix bit-identical to the golden run.
This module removes the redundant suffix too, DejaVuzz-style, by running
the variant *differentially* against the golden run:

1. **Golden delta trace.** The provider's instrumented golden run uses a
   :class:`RecordingFabric` that logs, per control signal, every cycle the
   signal was consulted (and every RAT-write data-path traversal). Because
   a variant is cycle-identical to the golden run until its armed one-shot
   bug first *fires*, and a suppression/corruption armed at cycle ``c``
   fires at the signal's first use at or after ``c``, the golden consult
   log predicts the exact activation cycle of any spec — before simulating
   a single variant cycle (:meth:`DeltaTrace.first_perturbation`).

2. **Activation forecasting.** A spec whose signal is never consulted at
   or after its inject cycle never perturbs the machine at all: the run
   *is* the golden run, and its result is spliced from golden facts with
   zero simulation. A spec that does fire at cycle ``F`` restores the
   nearest snapshot before ``F`` (not before the earlier ``inject_cycle``),
   skipping the armed-but-inert gap as well.

3. **Convergence-terminated suffixes.** After the fault fires, the variant
   is compared against the golden trace at every snapshot cycle: first a
   cheap :meth:`~repro.core.cpu.OoOCore.fingerprint` probe, then — only on
   a fingerprint hit — full structural state equality (:func:`converged`).
   The moment the machine state, the commit/output traces, and the
   detectors' *tracking* state are all back on the golden trajectory with
   no perturbation still pending, every future cycle is determined to be
   golden, so the run is classified immediately (Benign, golden final
   cycle, golden persistence) without simulating the rest.

Soundness of the convergence predicate (see EXPERIMENTS.md):

* ``fabric.any_armed`` must be False: an unfired bug can still perturb any
  future cycle, so no early exit while anything is pending.
* Core state equality is *structural* over the complete
  :meth:`~repro.core.cpu.OoOCore.save_state` dict (minus ``stats``, which
  holds monotonic counters that do not influence future behavior or the
  classification), plus content equality of the output/commit traces
  against the golden prefixes (light-trace snapshots store lengths only).
  Dormant divergence — e.g. an at-rest free-list upset that will only be
  consumed hundreds of cycles later — lives in the compared state, so a
  dormant run can never be declared converged.
* Detector state is compared on its *tracking* projection only
  (``tracking_of``): XOR codes, bit vectors, counters, mirrors — not the
  recorded detections. A run whose detector fired and then recovered can
  converge; its detections are already recorded and are carried into the
  result unchanged.

The deep compare is the expensive path, so a failed deep compare backs off
exponentially (the fingerprint probe keeps running every candidate cycle);
this only delays termination and never affects the classification.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.bugs.models import BugModel, BugSpec
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind
from repro.idld.bitvector import BitVectorScheme
from repro.idld.checker import IDLDChecker
from repro.idld.counter import CounterScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.snapshot import SnapshotProvider
    from repro.core.cpu import OoOCore


class RecordingFabric(SignalFabric):
    """A signal fabric that additionally logs consultation cycles.

    Used only for the provider's golden run (nothing armed, behavior
    identical to a plain fabric). Logs are compact ``array('l')`` columns,
    deduplicated per cycle — the forecast only needs the first consult of a
    (array, kind) pair in a given cycle, which is exactly the consult that
    would fire a one-shot suppression.
    """

    # Every consult must reach the overridden methods below even with
    # nothing armed: the delta trace IS the consult log. This keeps the
    # ports' ``fabric.hot`` fast path permanently disabled here.
    _force_consult = True

    def __init__(self) -> None:
        super().__init__()
        self.hot = True
        self.consults: Dict[Tuple[ArrayName, SignalKind], array] = {}
        self.pdst_writes: array = array("l")

    def asserted(self, arr: ArrayName, kind: SignalKind) -> bool:
        log = self.consults.get((arr, kind))
        if log is None:
            log = self.consults[(arr, kind)] = array("l")
        if not log or log[-1] != self.cycle:
            log.append(self.cycle)
        return super().asserted(arr, kind)

    def corrupt_pdst(self, value: int) -> int:
        log = self.pdst_writes
        if not log or log[-1] != self.cycle:
            log.append(self.cycle)
        return super().corrupt_pdst(value)


class DeltaTrace:
    """Golden-run facts the differential mode replays instead of simulating.

    Attributes:
        consults: Per-(array, kind) sorted cycles the signal was consulted.
        pdst_writes: Sorted cycles the RAT-write data path carried a PdstID.
        fingerprints: Snapshot cycle -> the golden core's fingerprint there.
        golden_persists: The golden run's own persistence probe
            (``not census_is_clean()`` at HALT) — what any run that follows
            the golden trajectory to completion would measure.
        clean: True when the golden run halted with every detector silent;
            differential shortcuts are only taken for clean goldens (in
            practice goldens are always clean — this is a guard, not a
            policy).
    """

    __slots__ = (
        "consults",
        "pdst_writes",
        "fingerprints",
        "golden_persists",
        "clean",
    )

    def __init__(
        self,
        consults: Dict[Tuple[ArrayName, SignalKind], array],
        pdst_writes: array,
        fingerprints: Dict[int, tuple],
        golden_persists: bool,
        clean: bool,
    ) -> None:
        self.consults = consults
        self.pdst_writes = pdst_writes
        self.fingerprints = fingerprints
        self.golden_persists = golden_persists
        self.clean = clean

    def first_perturbation(self, spec: BugSpec) -> Optional[int]:
        """The exact cycle ``spec`` would fire, or None if it never does.

        A variant is cycle-identical to the golden run until its one-shot
        bug fires, so the golden consult log *is* the variant's consult log
        up to that point: the first golden consult of the spec's signal at
        or after ``inject_cycle`` is the variant's activation cycle.
        """
        if spec.model is BugModel.PDST_CORRUPTION:
            log = self.pdst_writes
        else:
            log = self.consults.get((spec.array, spec.kind))
            if log is None:
                return None
        pos = bisect_left(log, spec.inject_cycle)
        if pos >= len(log):
            return None
        return log[pos]


#: Per-detector tracking projections, in canonical attach order. Each maps
#: a detector ``save_state()`` tuple onto the components that influence
#: *future* observations — excluding the already-recorded detections, which
#: are results, not state the machine evolves on.
_TRACKING = (
    IDLDChecker.tracking_of,
    BitVectorScheme.tracking_of,
    CounterScheme.tracking_of,
)


def converged(
    provider: "SnapshotProvider",
    core: "OoOCore",
    detectors: Tuple[IDLDChecker, BitVectorScheme, CounterScheme],
    fabric: SignalFabric,
    cycle: int,
) -> bool:
    """The convergence predicate: may this variant terminate at ``cycle``?

    True only when *every* future cycle of the variant is provably the
    golden run's: nothing armed is still pending, and the variant's
    complete machine state — core structural state, output/commit trace
    contents, and detector tracking state — equals the golden run's
    snapshot at the same cycle. ``cycle`` must be a snapshot cycle of the
    (differential) provider; any other cycle is simply not a candidate.
    """
    if fabric.any_armed:
        return False
    delta = provider.delta
    if delta is None:
        return False
    reference = delta.fingerprints.get(cycle)
    if reference is None or core.fingerprint() != reference:
        return False
    snapshot = provider.at(cycle)
    if snapshot is None:
        return False
    state = core.save_state(light_trace=True)
    golden_state = snapshot.core_state
    for key, value in state.items():
        if key != "stats" and value != golden_state[key]:
            return False
    # Light-trace states carry prefix *lengths*; equal lengths do not imply
    # equal contents (an SDC-in-progress can have committed the same number
    # of instructions with different values), so compare the actual traces
    # against the golden prefixes.
    out_len, committed = state["trace"]
    golden = provider.golden
    if core.output != golden.output[:out_len]:
        return False
    if core.commit_pcs != golden.commit_pcs[:committed]:
        return False
    if core.commit_cycles != golden.commit_cycles[:committed]:
        return False
    for detector, reference_state, tracking in zip(
        detectors, snapshot.detector_states, _TRACKING
    ):
        if tracking(detector.save_state()) != tracking(reference_state):
            # A detector whose tracking state desynced permanently (e.g. a
            # leaked ID stuck in the IDLD XOR code while the machine itself
            # recovered) only matters while its first detection is still
            # pending: detectors are pure observers, and the result records
            # first-detection cycles only. Once it has detected, its future
            # cannot change the classification.
            if detector.first_detection_cycle is None:
                return False
    return True
