"""Single-bug injection campaigns (the paper's Section IV methodology).

One campaign = for each benchmark x bug model, N independent runs, each
with exactly one bug activation at a random point of execution, classified
against the benchmark's golden run, with every detector attached:

* IDLD (the contribution),
* the bit-vector (BV) scheme,
* the counter scheme,
* traditional end-of-test checking.

The paper runs 3,000 injections per benchmark (30,000 total); campaign
sizes here are parameters so the pytest benches run laptop-scale samples
and the CLI harness can scale up (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

from repro.analysis.outcomes import OutcomeClass
from repro.bugs.classify import classify_run, timeout_budget
from repro.bugs.differential import converged
from repro.bugs.injector import arm
from repro.bugs.models import BugModel, BugSpec, PRIMARY_MODELS
from repro.core.config import CoreConfig
from repro.core.cpu import OoOCore, RunResult
from repro.core.errors import SimulationError
from repro.core.rrs.signals import SignalFabric
from repro.idld.bitvector import BitVectorScheme
from repro.idld.checker import IDLDChecker
from repro.idld.counter import CounterScheme
from repro.idld.endoftest import end_of_test_check
from repro.isa.program import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.bugs.snapshot import SnapshotProvider
    from repro.exec.resilience import TaskFailureRecord


@dataclass
class InjectionResult:
    """Everything recorded about one bug injection run.

    The two trailing fields are measurement metadata, not simulation
    outcomes: they are excluded from equality so warm-started and cold runs
    of the same spec compare equal, which is exactly the property the
    differential tests assert.
    """

    benchmark: str
    spec: BugSpec
    activated: bool
    activation_cycle: Optional[int]
    outcome: OutcomeClass
    manifestation_cycle: Optional[int]
    final_cycle: int
    persists: Optional[bool]
    idld_cycle: Optional[int]
    bv_cycle: Optional[int]
    counter_cycle: Optional[int]
    eot_detected: bool
    sim_wall_ns: Optional[int] = field(default=None, compare=False)
    warm_start_cycles_skipped: int = field(default=0, compare=False)
    #: Differential-execution measurement metadata (compare-excluded like
    #: the wall clock): None = the suffix was simulated to completion;
    #: 0 = the golden delta trace proved the bug never activates, so
    #: nothing was simulated at all; c > 0 = the variant re-converged with
    #: the golden trajectory at cycle c and was classified there.
    early_terminated_cycle: Optional[int] = field(default=None, compare=False)

    @property
    def masked(self) -> bool:
        return self.outcome.masked

    @property
    def idld_detected(self) -> bool:
        return self.idld_cycle is not None

    @property
    def bv_detected(self) -> bool:
        return self.bv_cycle is not None

    @property
    def counter_detected(self) -> bool:
        return self.counter_cycle is not None

    @property
    def idld_latency(self) -> Optional[int]:
        if self.idld_cycle is None or self.activation_cycle is None:
            return None
        return self.idld_cycle - self.activation_cycle

    @property
    def bv_latency(self) -> Optional[int]:
        if self.bv_cycle is None or self.activation_cycle is None:
            return None
        return self.bv_cycle - self.activation_cycle

    @property
    def manifestation_latency(self) -> Optional[int]:
        if self.manifestation_cycle is None or self.activation_cycle is None:
            return None
        return max(0, self.manifestation_cycle - self.activation_cycle)


def run_golden(program: Program, config: Optional[CoreConfig] = None) -> RunResult:
    """Bug-free reference run of a program."""
    core = OoOCore(program, config=config)
    started = time.perf_counter_ns()
    result = core.run()
    if not result.halted:
        raise RuntimeError(f"golden run of {program.name} did not halt")
    result.stats["sim_wall_ns"] = time.perf_counter_ns() - started
    result.stats["warm_start_cycles_skipped"] = 0
    return result


def run_injection(
    program: Program,
    golden: RunResult,
    spec: BugSpec,
    config: Optional[CoreConfig] = None,
    snapshots: Optional["SnapshotProvider"] = None,
    deadline: Optional[float] = None,
    differential: bool = False,
) -> InjectionResult:
    """Execute one buggy run with all detectors attached and classify it.

    With a :class:`~repro.bugs.snapshot.SnapshotProvider`, the bug-free
    prefix is skipped: the nearest snapshot *strictly before*
    ``spec.inject_cycle`` is restored and only the suffix is simulated.
    A suppression armed for cycle c can fire during cycle c itself, so the
    restore point must satisfy ``snapshot.cycle <= inject_cycle - 1``.
    The result is bit-identical to a cold run (see tests/test_snapshot.py).

    With ``differential=True`` and a differential provider
    (``SnapshotProvider(..., differential=True)``), the *suffix* is pruned
    too: the golden delta trace forecasts the exact activation cycle (a
    never-activating spec is classified with zero simulation), the restore
    point moves up to just before that forecast, and the run terminates the
    moment the variant provably re-converges with the golden trajectory
    (see :mod:`repro.bugs.differential`). Classification is bit-identical
    either way; the differential flag is purely a throughput knob, recorded
    in ``early_terminated_cycle``. Providers without a delta trace (or
    whose golden run was not detector-silent) silently fall back to the
    full-suffix path.

    ``deadline`` (absolute ``time.monotonic()``) is the harness wall-clock
    budget; on expiry :class:`~repro.core.errors.DeadlineExceeded`
    propagates to the execution layer — it is *not* a simulated outcome
    and is never classified as one.
    """
    if differential and snapshots is not None:
        delta = snapshots.delta
        if delta is not None and delta.clean:
            return _run_injection_differential(
                program, golden, spec, config, snapshots, deadline
            )
    started = time.perf_counter_ns()
    fabric = SignalFabric()
    armed = arm(spec, fabric)
    idld = IDLDChecker()
    bv = BitVectorScheme()
    counter = CounterScheme()
    core = OoOCore(
        program, config=config, observers=[idld, bv, counter], fabric=fabric
    )
    skipped = 0
    if snapshots is not None:
        snap = snapshots.nearest(spec.inject_cycle - 1)
        if snap is not None:
            snapshots.restore_into(snap, core, (idld, bv, counter))
            skipped = snap.cycle
    budget = timeout_budget(golden)
    error: Optional[Exception] = None
    try:
        core.run_cycles(budget, deadline=deadline)
    except SimulationError as exc:
        error = exc
    return _classify_completed_run(
        program, golden, spec, armed, core, (idld, bv, counter),
        error, skipped, started,
    )


def _classify_completed_run(
    program: Program,
    golden: RunResult,
    spec: BugSpec,
    armed,
    core: OoOCore,
    detectors,
    error: Optional[Exception],
    skipped: int,
    started_ns: int,
    early_terminated_cycle: Optional[int] = None,
) -> InjectionResult:
    """Shared classification tail of the full and differential paths."""
    idld, bv, counter = detectors
    result = core.result()
    result.stats["warm_start_cycles_skipped"] = skipped
    classification = classify_run(program, golden, result, error)
    persists: Optional[bool] = None
    if error is None and result.halted:
        persists = not core.census_is_clean()
    eot = end_of_test_check(classification.outcome, result.cycles)
    wall_ns = time.perf_counter_ns() - started_ns
    result.stats["sim_wall_ns"] = wall_ns
    return InjectionResult(
        benchmark=program.name,
        spec=spec,
        activated=armed.fired,
        activation_cycle=armed.fired_cycle,
        outcome=classification.outcome,
        manifestation_cycle=classification.manifestation_cycle,
        final_cycle=result.cycles,
        persists=persists,
        idld_cycle=idld.first_detection_cycle,
        bv_cycle=bv.first_detection_cycle,
        counter_cycle=counter.first_detection_cycle,
        eot_detected=eot.detected,
        sim_wall_ns=wall_ns,
        warm_start_cycles_skipped=skipped,
        early_terminated_cycle=early_terminated_cycle,
    )


#: Exponential-backoff cap on the deep-compare stride, in snapshot
#: intervals. A dormant divergence (fingerprint-equal, state-unequal) stops
#: paying a full structural compare every interval; the cap bounds how far
#: past the true convergence point a run can terminate.
_MAX_DEEP_STRIDE = 32


def _run_injection_differential(
    program: Program,
    golden: RunResult,
    spec: BugSpec,
    config: Optional[CoreConfig],
    snapshots: "SnapshotProvider",
    deadline: Optional[float],
) -> InjectionResult:
    """Differential-mode injection: forecast, delta-restore, converge.

    Produces classifications bit-identical to the full-suffix path (the
    property tests and tests/test_differential_exec.py assert this): every
    shortcut only replaces simulation whose outcome is already determined
    by the golden run.
    """
    started = time.perf_counter_ns()
    delta = snapshots.delta
    fire = delta.first_perturbation(spec)
    if fire is None:
        # The armed one-shot is never exercised: the variant is the golden
        # run, cycle for cycle. Splice the result from golden facts.
        eot = end_of_test_check(OutcomeClass.BENIGN, golden.cycles)
        return InjectionResult(
            benchmark=program.name,
            spec=spec,
            activated=False,
            activation_cycle=None,
            outcome=OutcomeClass.BENIGN,
            manifestation_cycle=None,
            final_cycle=golden.cycles,
            persists=delta.golden_persists,
            idld_cycle=None,
            bv_cycle=None,
            counter_cycle=None,
            eot_detected=eot.detected,
            sim_wall_ns=time.perf_counter_ns() - started,
            warm_start_cycles_skipped=golden.cycles,
            early_terminated_cycle=0,
        )
    fabric = SignalFabric()
    armed = arm(spec, fabric)
    idld = IDLDChecker()
    bv = BitVectorScheme()
    counter = CounterScheme()
    detectors = (idld, bv, counter)
    core = OoOCore(
        program, config=config, observers=[idld, bv, counter], fabric=fabric
    )
    # The forecast is the *first* consult of the armed signal at or after
    # inject_cycle, so every cycle before it is provably golden and the
    # restore point can move up from inject_cycle - 1 to fire - 1.
    skipped = 0
    snap = snapshots.nearest(fire - 1)
    if snap is not None:
        snapshots.restore_into(snap, core, detectors)
        skipped = snap.cycle
    budget = timeout_budget(golden)
    candidates = snapshots.candidate_cycles
    pos = bisect_right(candidates, core.cycle)
    skip_deep_until = 0
    stride = 1
    early_cycle: Optional[int] = None
    error: Optional[Exception] = None
    clock_origin: Optional[float] = None
    try:
        while not core.halted and core.cycle < budget:
            target = candidates[pos] if pos < len(candidates) else budget
            if target > budget:
                target = budget
            clock_origin = core.run_cycles(
                target, deadline=deadline, started=clock_origin
            )
            if core.halted or core.cycle >= budget:
                break
            pos += 1
            cycle = core.cycle
            if fabric.any_armed:
                continue
            reference = delta.fingerprints.get(cycle)
            if reference is None or core.fingerprint() != reference:
                continue
            if cycle < skip_deep_until:
                continue
            if converged(snapshots, core, detectors, fabric, cycle):
                early_cycle = cycle
                break
            skip_deep_until = cycle + stride * snapshots.interval
            if stride < _MAX_DEEP_STRIDE:
                stride <<= 1
    except SimulationError as exc:
        error = exc
    if early_cycle is not None:
        # State, traces, and detector tracking are back on the golden
        # trajectory with nothing pending: every remaining cycle replays
        # the golden run, so the full-suffix result is fully determined.
        eot = end_of_test_check(OutcomeClass.BENIGN, golden.cycles)
        return InjectionResult(
            benchmark=program.name,
            spec=spec,
            activated=armed.fired,
            activation_cycle=armed.fired_cycle,
            outcome=OutcomeClass.BENIGN,
            manifestation_cycle=None,
            final_cycle=golden.cycles,
            persists=delta.golden_persists,
            idld_cycle=idld.first_detection_cycle,
            bv_cycle=bv.first_detection_cycle,
            counter_cycle=counter.first_detection_cycle,
            eot_detected=eot.detected,
            sim_wall_ns=time.perf_counter_ns() - started,
            warm_start_cycles_skipped=skipped,
            early_terminated_cycle=early_cycle,
        )
    return _classify_completed_run(
        program, golden, spec, armed, core, detectors,
        error, skipped, started,
    )


@dataclass
class CampaignResult:
    """All injection results of a campaign, with figure-level aggregations.

    ``failures`` holds the quarantined tasks — injections the execution
    layer gave up on (exception / timeout / worker-crash) after exhausting
    their retry budget. They are *excluded* from ``results`` and therefore
    from every figure aggregation; reports and exports surface them so a
    reproduction with too many quarantines is visibly suspect.
    """

    results: List[InjectionResult] = field(default_factory=list)
    goldens: Dict[str, RunResult] = field(default_factory=dict)
    failures: List["TaskFailureRecord"] = field(default_factory=list)

    @property
    def quarantined(self) -> int:
        """How many tasks were quarantined instead of completed."""
        return len(self.failures)

    # -- generic filters -------------------------------------------------------

    def of(
        self,
        benchmark: Optional[str] = None,
        model: Optional[BugModel] = None,
    ) -> List[InjectionResult]:
        out = self.results
        if benchmark is not None:
            out = [r for r in out if r.benchmark == benchmark]
        if model is not None:
            out = [r for r in out if r.spec.model is model]
        return out

    @property
    def benchmarks(self) -> List[str]:
        seen: List[str] = []
        for r in self.results:
            if r.benchmark not in seen:
                seen.append(r.benchmark)
        return seen

    @property
    def never_activated(self) -> int:
        """Injections whose armed signal was never exercised, even after
        all redraw attempts (reported, not silently dropped)."""
        return sum(1 for r in self.results if not r.activated)

    # -- Figure 3: masked fraction per benchmark x model -----------------------------

    def masked_fraction(
        self, benchmark: Optional[str] = None, model: Optional[BugModel] = None
    ) -> float:
        rows = self.of(benchmark, model)
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.masked) / len(rows)

    # -- Figure 4: persistence of masked bugs ------------------------------------------

    def persistence_fraction(self, benchmark: Optional[str] = None) -> float:
        masked = [r for r in self.of(benchmark) if r.masked]
        if not masked:
            return 0.0
        return sum(1 for r in masked if r.persists) / len(masked)

    # -- Figure 5: manifestation latencies ------------------------------------------------

    def manifestation_latencies(self, masked_side_effects: bool) -> List[int]:
        """Latencies for the non-masked (green) or side-effect-masked (red)
        populations of Figure 5."""
        out = []
        for r in self.results:
            if masked_side_effects:
                if not r.outcome.has_side_effect:
                    continue
            elif r.masked:
                continue
            latency = r.manifestation_latency
            if latency is not None:
                out.append(latency)
        return out

    # -- Figure 8: outcome breakdown --------------------------------------------------------

    def outcome_breakdown(
        self,
        benchmark: Optional[str] = None,
        models: Sequence[BugModel] = (BugModel.DUPLICATION, BugModel.LEAKAGE),
    ) -> Dict[OutcomeClass, int]:
        counts = {outcome: 0 for outcome in OutcomeClass}
        for r in self.of(benchmark):
            if r.spec.model in models:
                counts[r.outcome] += 1
        return counts

    # -- Figures 9/10: detection coverage -------------------------------------------------------

    def coverage(self) -> Dict[str, float]:
        """Detection coverage per method over all activated injections."""
        rows = [r for r in self.results if r.activated]
        if not rows:
            return {
                "idld": 0.0,
                "end_of_test": 0.0,
                "bv": 0.0,
                "end_of_test+bv": 0.0,
                "bv_first": 0.0,
            }
        total = len(rows)
        idld = sum(1 for r in rows if r.idld_detected)
        eot = sum(1 for r in rows if r.eot_detected)
        bv = sum(1 for r in rows if r.bv_detected)
        either = sum(1 for r in rows if r.eot_detected or r.bv_detected)
        bv_first = sum(
            1
            for r in rows
            if r.bv_detected
            and (not r.eot_detected or r.bv_cycle < r.final_cycle)
        )
        return {
            "idld": idld / total,
            "end_of_test": eot / total,
            "bv": bv / total,
            "end_of_test+bv": either / total,
            "bv_first": bv_first / total,
        }

    def detection_latencies(self, method: str) -> List[int]:
        """Per-run detection latency for ``method`` ('idld' or 'bv')."""
        out = []
        for r in self.results:
            latency = r.idld_latency if method == "idld" else r.bv_latency
            if latency is not None:
                out.append(latency)
        return out


def run_campaign(
    programs: Dict[str, Program],
    runs_per_model: int,
    models: Iterable[BugModel] = PRIMARY_MODELS,
    seed: int = 1,
    config: Optional[CoreConfig] = None,
    max_attempts: int = 6,
    snapshot_interval: int = 0,
    differential: bool = False,
    batch_size: int = 1,
) -> CampaignResult:
    """Run a full injection campaign (serially; see :mod:`repro.exec`).

    This is a thin façade over the task engine: each injection draws from
    a task-local seed derived from ``seed`` by stable hash, so the result
    is bit-identical to the same campaign run on any parallel backend.

    Args:
        programs: benchmark name -> program.
        runs_per_model: Injections per (benchmark, model) pair.
        models: Bug models to exercise (the paper's three by default).
        seed: Master seed; every draw derives from it deterministically.
        config: Core configuration (paper defaults when None).
        max_attempts: Redraws allowed until an injection actually fires
            (an armed signal nobody exercises has no effect); must be >= 1.
        snapshot_interval: Warm-start snapshot period in cycles; 0 disables
            warm starting (every injection simulates from power-on). Any
            value yields bit-identical campaign results — it is purely a
            throughput knob.
        differential: Differential suffix execution (requires
            ``snapshot_interval`` >= 1); bit-identical results, see
            :mod:`repro.bugs.differential`.
        batch_size: Dispatch batching of same-(benchmark, window) tasks;
            1 disables. Bit-identical results for any size.

    Returns:
        The populated :class:`CampaignResult`.
    """
    from repro.exec.engine import run_engine  # local: exec imports this module

    return run_engine(
        programs,
        runs_per_model,
        models=models,
        seed=seed,
        config=config,
        max_attempts=max_attempts,
        snapshot_interval=snapshot_interval,
        differential=differential,
        batch_size=batch_size,
    )
