"""Warm-start snapshot provider for injection campaigns.

An injection run is a golden run up to the moment the armed bug first
perturbs the machine: the fabric's suppressions and corruptions are inert
until ``fabric.cycle`` reaches their ``from_cycle``. A campaign therefore
re-simulates the same bug-free prefix thousands of times — once per
injection — just to arrive at a different ``inject_cycle``.

:class:`SnapshotProvider` removes that redundancy. It performs one
instrumented golden run per (benchmark, config) with the standard detector
set attached, capturing a cheap :meth:`~repro.core.cpu.OoOCore.save_state`
snapshot every ``interval`` cycles, and :func:`repro.bugs.campaign.run_injection`
then restores the nearest snapshot *strictly before* the injection cycle
and simulates only the suffix.

Correctness hinges on the strictness: a suppression armed for cycle ``c``
can fire during cycle ``c`` itself (the fabric is consulted with
``fabric.cycle >= from_cycle``), so the newest safe snapshot is the one
taken at the end of cycle ``c - 1``. Snapshots use ``light_trace`` mode —
output/commit traces are stored as prefix lengths and sliced back out of
the provider's own golden :class:`~repro.core.cpu.RunResult` on restore,
keeping per-snapshot cost proportional to pipeline occupancy, not to how
long the program has been running.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

from repro.bugs.differential import DeltaTrace, RecordingFabric
from repro.core.config import CoreConfig
from repro.core.cpu import OoOCore, RunResult
from repro.core.errors import DeadlockError
from repro.idld.bitvector import BitVectorScheme
from repro.idld.checker import IDLDChecker
from repro.idld.counter import CounterScheme
from repro.isa.program import Program


class CoreSnapshot:
    """One captured machine state: core + the three attached detectors."""

    __slots__ = ("cycle", "core_state", "detector_states")

    def __init__(
        self,
        cycle: int,
        core_state: dict,
        detector_states: Tuple[tuple, tuple, tuple],
    ) -> None:
        self.cycle = cycle
        self.core_state = core_state
        self.detector_states = detector_states


def make_detectors() -> Tuple[IDLDChecker, BitVectorScheme, CounterScheme]:
    """The standard campaign detector set, in canonical attach order."""
    return (IDLDChecker(), BitVectorScheme(), CounterScheme())


class SnapshotProvider:
    """Periodic golden-run snapshots of one (benchmark, config) pair.

    Attributes:
        golden: The bug-free :class:`RunResult` of the instrumented run —
            bit-identical to :func:`repro.bugs.campaign.run_golden` because
            the detectors are pure observers.
        interval: Capture period in cycles (must be >= 1).
        delta: The golden :class:`~repro.bugs.differential.DeltaTrace`
            (consult log, per-snapshot fingerprints, persistence) when
            built with ``differential=True``; None otherwise.
    """

    def __init__(
        self,
        program: Program,
        interval: int,
        config: Optional[CoreConfig] = None,
        max_cycles: int = 2_000_000,
        differential: bool = False,
    ) -> None:
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.program = program
        self.interval = interval
        self.config = config
        self.differential = differential
        detectors = make_detectors()
        fabric = RecordingFabric() if differential else None
        core = OoOCore(
            program, config=config, observers=list(detectors), fabric=fabric
        )
        snapshots: List[CoreSnapshot] = []
        fingerprints: Dict[int, tuple] = {}
        deadlock = core.config.deadlock_cycles
        started = time.perf_counter_ns()
        while not core.halted and core.cycle < max_cycles:
            core.step()
            if core.cycle - core.last_progress_cycle > deadlock:
                raise DeadlockError(core.cycle)
            if core.cycle % interval == 0 and not core.halted:
                snapshots.append(
                    CoreSnapshot(
                        core.cycle,
                        core.save_state(light_trace=True),
                        tuple(d.save_state() for d in detectors),
                    )
                )
                if differential:
                    fingerprints[core.cycle] = core.fingerprint()
        self.golden = core.result()
        if not self.golden.halted:
            raise RuntimeError(
                f"golden run of {program.name} did not halt"
            )
        # Same measurement keys run_golden stamps, so a provider-supplied
        # golden is interchangeable with a plain one.
        self.golden.stats["sim_wall_ns"] = time.perf_counter_ns() - started
        self.golden.stats["warm_start_cycles_skipped"] = 0
        self.delta: Optional[DeltaTrace] = None
        if differential:
            # Differential mode needs the whole snapshot timeline: the
            # forecast restore point and the convergence candidates both
            # live past the injection-draw window.
            self._snapshots = snapshots
            self.delta = DeltaTrace(
                consults=fabric.consults,
                pdst_writes=fabric.pdst_writes,
                fingerprints=fingerprints,
                golden_persists=not core.census_is_clean(),
                clean=all(
                    d.first_detection_cycle is None for d in detectors
                ),
            )
        else:
            # Injection cycles are drawn from [1, max(2, 0.9 * golden
            # cycles)] (see repro.bugs.injector.draw_spec) and a snapshot
            # at cycle c only serves injections strictly after c, so
            # anything captured past the draw window can never be used.
            window = max(2, int(self.golden.cycles * 0.9))
            self._snapshots = [s for s in snapshots if s.cycle <= window - 1]
        self._cycles = [s.cycle for s in self._snapshots]
        self._by_cycle = {s.cycle: s for s in self._snapshots}

    @property
    def count(self) -> int:
        return len(self._snapshots)

    @property
    def candidate_cycles(self) -> List[int]:
        """All snapshot cycles, ascending — the convergence-check points."""
        return self._cycles

    def nearest(self, cycle: int) -> Optional[CoreSnapshot]:
        """The latest snapshot taken at or before ``cycle``, if any."""
        pos = bisect_right(self._cycles, cycle)
        if pos == 0:
            return None
        return self._snapshots[pos - 1]

    def at(self, cycle: int) -> Optional[CoreSnapshot]:
        """The snapshot taken at exactly ``cycle``, if any."""
        return self._by_cycle.get(cycle)

    def restore_into(
        self,
        snapshot: CoreSnapshot,
        core: OoOCore,
        detectors: Tuple[IDLDChecker, BitVectorScheme, CounterScheme],
    ) -> None:
        """Load ``snapshot`` into a freshly-built core + detector set.

        The core's own fabric (with whatever the caller armed on it) is
        preserved; only its clock is synchronized to the snapshot cycle.
        """
        core.load_state(snapshot.core_state, trace_source=self.golden)
        for detector, state in zip(detectors, snapshot.detector_states):
            detector.load_state(state)
