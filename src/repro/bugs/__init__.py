"""Bug models, injection, classification and campaigns (Section III/IV)."""

from repro.bugs.campaign import (
    CampaignResult,
    InjectionResult,
    run_campaign,
    run_golden,
    run_injection,
)
from repro.bugs.classify import (
    Classification,
    TIMEOUT_FACTOR,
    classify_run,
    timeout_budget,
)
from repro.bugs.faults import (
    AtRestFault,
    inject_at_rest_fault,
    parity_detected,
    run_with_at_rest_fault,
)
from repro.bugs.injector import arm, draw_spec
from repro.bugs.models import BugModel, BugSpec, PRIMARY_MODELS

__all__ = [
    "BugModel",
    "BugSpec",
    "CampaignResult",
    "Classification",
    "InjectionResult",
    "PRIMARY_MODELS",
    "TIMEOUT_FACTOR",
    "AtRestFault",
    "arm",
    "inject_at_rest_fault",
    "parity_detected",
    "run_with_at_rest_fault",
    "classify_run",
    "draw_spec",
    "run_campaign",
    "run_golden",
    "run_injection",
    "timeout_budget",
]
