"""At-rest storage faults (the Section V.D scope boundary).

These model upsets that corrupt a PdstID *while it sits* in the FL, RAT or
ROB -- explicitly outside IDLD's charter ("the purpose of the proposed
IDLD scheme is not to detect bugs that cause a Pdst corruption while a
PdstID is already stored") and exactly what per-entry parity/ECC covers.
The ablation bench uses them to measure the orthogonality claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.cpu import OoOCore
from repro.core.errors import SimulationError


@dataclass
class AtRestFault:
    """One injected storage upset."""

    array: str
    location: int
    xor_mask: int
    cycle: int
    corrupted_value: int


def inject_at_rest_fault(
    core: OoOCore, rng: random.Random
) -> Optional[AtRestFault]:
    """Flip one bit (a classic single-event upset) in a randomly chosen
    live PdstID location.

    The target array is drawn proportionally to its live PdstID occupancy;
    returns None when nothing is live (nothing to corrupt).
    """
    mask = 1 << rng.randrange(core.config.pdst_bits)
    candidates = []
    fl_count = core.free_list.count
    if fl_count:
        candidates.append(("FL", fl_count))
    candidates.append(("RAT", core.rat.num_logical))
    rob_live = len(core.rob.live_evicted_ids())
    if rob_live:
        candidates.append(("ROB", rob_live))
    total = sum(weight for _, weight in candidates)
    pick = rng.randrange(total)
    for array, weight in candidates:
        if pick < weight:
            break
        pick -= weight
    if array == "FL":
        location = rng.randrange(fl_count)
        value = core.free_list.corrupt_stored(location, mask)
    elif array == "RAT":
        location = rng.randrange(core.rat.num_logical)
        value = core.rat.corrupt_stored(location, mask)
    else:
        location = rng.randrange(rob_live)
        value = core.rob.corrupt_stored(location, mask)
    return AtRestFault(array, location, mask, core.cycle, value)


def run_with_at_rest_fault(
    core: OoOCore,
    at_cycle: int,
    rng: random.Random,
    max_cycles: int = 100_000,
):
    """Run ``core``, injecting one at-rest fault at ``at_cycle``.

    Returns ``(fault, result_or_none, error_or_none)``.
    """
    fault = None
    error = None
    try:
        while not core.halted and core.cycle < max_cycles:
            if fault is None and core.cycle >= at_cycle:
                fault = inject_at_rest_fault(core, rng)
            core.step()
    except SimulationError as exc:
        error = exc
    return fault, core.result(), error


def parity_detected(core: OoOCore) -> bool:
    """True when any of the core's parity stores raised an alarm."""
    return any(store.detected for store in core.parity.values())
