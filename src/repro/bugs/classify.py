"""Classify a buggy run against its bug-free golden run (Sections IV, VI.C).

The classifier reproduces the paper's methodology: "we keep track of the
commit trace of the simulator. Therefore, we can monitor the bug activation
cycle and the bug manifestation cycle (at which time the bug affects the
committed instructions; the commit trace becomes different from the
bug-free commit trace)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.outcomes import OutcomeClass
from repro.core.cpu import RunResult
from repro.core.errors import DeadlockError, MemoryFault, SimulatorAssertion
from repro.isa.instructions import Opcode
from repro.isa.program import Program

#: Timeout threshold: "2.5 times the bug-free execution time" (Section VI.C).
TIMEOUT_FACTOR = 2.5


@dataclass
class Classification:
    """Outcome class plus the manifestation point, if any."""

    outcome: OutcomeClass
    #: Cycle at which the bug first shows evidence (trace divergence, wrong
    #: output word, or abort); None for Benign.
    manifestation_cycle: Optional[int]

    @property
    def masked(self) -> bool:
        return self.outcome.masked


def timeout_budget(golden: RunResult) -> int:
    """Maximum cycles a buggy run may take before it counts as Timeout."""
    return max(64, int(golden.cycles * TIMEOUT_FACTOR))


def _first_trace_divergence(
    golden: RunResult, buggy: RunResult
) -> Optional[int]:
    """Cycle of the first commit that differs in PC or in timing."""
    n = min(len(golden.commit_pcs), len(buggy.commit_pcs))
    for i in range(n):
        if (
            golden.commit_pcs[i] != buggy.commit_pcs[i]
            or golden.commit_cycles[i] != buggy.commit_cycles[i]
        ):
            return buggy.commit_cycles[i]
    if len(buggy.commit_pcs) != len(golden.commit_pcs):
        if len(buggy.commit_pcs) > n and n < len(buggy.commit_cycles):
            return buggy.commit_cycles[n]
        return buggy.cycles
    return None


def _pcs_only_divergence(golden: RunResult, buggy: RunResult) -> bool:
    """True when the committed instruction *sequences* differ."""
    return golden.commit_pcs != buggy.commit_pcs


def _first_output_divergence_cycle(
    program: Program, golden: RunResult, buggy: RunResult
) -> int:
    """Commit cycle of the first differing OUT value."""
    out_cycles = [
        cycle
        for pc, cycle in zip(buggy.commit_pcs, buggy.commit_cycles)
        if program.instructions[pc].opcode is Opcode.OUT
    ]
    n = min(len(golden.output), len(buggy.output))
    for i in range(n):
        if golden.output[i] != buggy.output[i]:
            if i < len(out_cycles):
                return out_cycles[i]
            return buggy.cycles
    if n < len(out_cycles):
        return out_cycles[n]
    return buggy.cycles


def classify_run(
    program: Program,
    golden: RunResult,
    buggy: Optional[RunResult],
    error: Optional[Exception] = None,
) -> Classification:
    """Classify one buggy run.

    Args:
        program: The executed program (to locate OUT instructions).
        golden: The bug-free reference run.
        buggy: The buggy run's result; for aborted runs, the partial result
            at the abort point (or None when unavailable).
        error: The exception that ended the run, if any.

    Returns:
        The paper's outcome class plus the manifestation cycle.
    """
    if error is not None:
        cycle = getattr(error, "cycle", buggy.cycles if buggy else 0)
        if isinstance(error, SimulatorAssertion):
            return Classification(OutcomeClass.ASSERT, cycle)
        if isinstance(error, MemoryFault):
            return Classification(OutcomeClass.CRASH, cycle)
        if isinstance(error, DeadlockError):
            return Classification(OutcomeClass.TIMEOUT, cycle)
        raise error  # unexpected: a simulator defect, not a bug effect
    if buggy is None:
        raise ValueError("need a run result when no error is given")
    if not buggy.halted:
        # Externally stopped at the 2.5x budget.
        divergence = _first_trace_divergence(golden, buggy)
        return Classification(
            OutcomeClass.TIMEOUT,
            divergence if divergence is not None else buggy.cycles,
        )
    if buggy.output != golden.output:
        divergence = _first_trace_divergence(golden, buggy)
        if divergence is None:
            divergence = _first_output_divergence_cycle(program, golden, buggy)
        return Classification(OutcomeClass.SDC, divergence)
    if _pcs_only_divergence(golden, buggy):
        return Classification(
            OutcomeClass.CONTROL_FLOW_DEVIATION,
            _first_trace_divergence(golden, buggy),
        )
    divergence = _first_trace_divergence(golden, buggy)
    if divergence is not None or buggy.cycles != golden.cycles:
        return Classification(
            OutcomeClass.PERFORMANCE,
            divergence if divergence is not None else buggy.cycles,
        )
    return Classification(OutcomeClass.BENIGN, None)
