"""Bug models for the RRS control logic (Section III).

Two mechanisms, three campaign models:

* *Control Signal Corruption* -- "a momentary control signal de-assertion
  when the signal should normally have been asserted". The campaign splits
  these by primary manifestation, as the paper's 1,000+1,000 run split
  does: **DUPLICATION** (a FIFO read pointer erroneously not advanced) and
  **LEAKAGE** (a write enable erroneously not asserted).
* *PdstID Corruption* -- "the PdstID gets corrupted when it is written in
  the RAT": the **PDST_CORRUPTION** model.

A fourth, extended model (**RECOVERY_FLOW**) suppresses the multi-cycle
recovery/checkpoint-flow signals of Table I (RHT walk pointers and writes,
RAT/ROB/RHT recovery, CKPT capture); the paper discusses these in
Section III.C ("multiple PdstIDs are leaked and duplicated") and we
exercise them in the ablation bench.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.rrs.signals import (
    ArrayName,
    DUPLICATION_SIGNALS,
    EXTENDED_SIGNALS,
    LEAKAGE_SIGNALS,
    SignalKind,
)


class BugModel(enum.Enum):
    """The injectable bug models."""

    DUPLICATION = "Duplication"
    LEAKAGE = "Leakage"
    PDST_CORRUPTION = "PdstID Corruption"
    RECOVERY_FLOW = "Recovery Flow"  # extended model (ablation)

    @property
    def signals(self) -> Tuple[Tuple[ArrayName, SignalKind], ...]:
        """Candidate control signals for this model (empty for corruption)."""
        if self is BugModel.DUPLICATION:
            return DUPLICATION_SIGNALS
        if self is BugModel.LEAKAGE:
            return LEAKAGE_SIGNALS
        if self is BugModel.RECOVERY_FLOW:
            return EXTENDED_SIGNALS
        return ()


#: The models of the paper's main campaign (Figures 3/4/5/8/9/10).
PRIMARY_MODELS = (
    BugModel.DUPLICATION,
    BugModel.LEAKAGE,
    BugModel.PDST_CORRUPTION,
)


@dataclass(frozen=True)
class BugSpec:
    """A fully-determined single-bug injection.

    Attributes:
        model: Which bug model.
        inject_cycle: The suppression/corruption arms at this cycle and
            fires on the signal's first use at or after it.
        array / kind: The targeted control signal (None for corruption).
        xor_mask: The corruption mask (None for signal suppressions).
    """

    model: BugModel
    inject_cycle: int
    array: Optional[ArrayName] = None
    kind: Optional[SignalKind] = None
    xor_mask: Optional[int] = None

    def describe(self) -> str:
        if self.model is BugModel.PDST_CORRUPTION:
            return (
                f"{self.model.value}: RAT-write data ^ {self.xor_mask:#x} "
                f"from cycle {self.inject_cycle}"
            )
        return (
            f"{self.model.value}: suppress {self.array.value}."
            f"{self.kind.value} from cycle {self.inject_cycle}"
        )
