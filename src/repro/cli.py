"""Command-line campaign harness (``idld-campaign``).

Runs the paper's experiments at a configurable scale and prints the
figure/table reports. Examples::

    idld-campaign --runs 20                     # quick pass, all figures
    idld-campaign --runs 100 --scale 2.5        # closer to paper scale
    idld-campaign --runs 100 --jobs 4           # parallel, same results
    idld-campaign --figures 3,9 --benchmarks sha,qsort
    idld-campaign --figures table2              # RTL cost model only
    idld-campaign --runs 3000 --jobs 8 --checkpoint run.jsonl
    idld-campaign --runs 3000 --jobs 8 --resume run.jsonl   # pick up a kill
    idld-campaign --from-checkpoint run.jsonl --figures 3   # report only
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.analysis.report import (
    coverage_report,
    figure3_report,
    figure4_report,
    figure5_report,
    figure8_report,
    latency_report,
)
from repro.rtl.report import table_ii_report
from repro.workloads import WORKLOADS

#: Figure ids the reporter understands (``latency`` is the Figures 6/7
#: detection-latency summary; ``table2`` is the RTL cost model).
KNOWN_FIGURES = ("3", "4", "5", "8", "9", "10", "latency", "table2")


def add_fault_args(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance flags shared by ``campaign`` and ``fuzz``."""
    group = parser.add_argument_group("fault tolerance")
    group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        dest="task_timeout",
        help="per-task wall-clock budget; an overrunning simulation is "
        "retried then quarantined (a hung worker is killed by the parent "
        "watchdog after budget + grace) [no limit]",
    )
    group.add_argument(
        "--max-task-retries",
        type=int,
        default=2,
        metavar="N",
        dest="max_task_retries",
        help="extra attempts before a failing task is quarantined [2]",
    )
    group.add_argument(
        "--strict",
        action="store_true",
        help="abort the whole run on the first quarantine instead of "
        "recording it and continuing",
    )
    group.add_argument(
        "--no-fallback-serial",
        action="store_false",
        dest="fallback_serial",
        help="fail hard when the worker pool keeps breaking instead of "
        "degrading to in-process serial execution",
    )
    group.add_argument(
        "--checkpoint-fsync",
        action="store_true",
        dest="checkpoint_fsync",
        help="fsync every checkpoint record (survives power loss, not "
        "just process kills) at an I/O cost",
    )


def policy_from_args(args: argparse.Namespace):
    """Build the FaultPolicy the CLI runs under (resilience is on by
    default here; the library default ``policy=None`` keeps the legacy
    fail-fast behavior). Raises ValueError on bad knob values."""
    from repro.exec.resilience import FaultPolicy

    return FaultPolicy(
        task_timeout_s=args.task_timeout,
        max_task_retries=args.max_task_retries,
        strict=args.strict,
        fallback_serial=args.fallback_serial,
    )


def print_shutdown_notice(shutdown, checkpoint_path, subcommand) -> None:
    """One actionable stderr message for a graceful-signal stop: what was
    saved and exactly how to resume (the CLI then exits with
    :data:`~repro.exec.durability.SHUTDOWN_EXIT_CODE`)."""
    print(
        f"interrupted by {shutdown.signal_name}: stopped dispatching, "
        "drained inflight work and flushed the checkpoint",
        file=sys.stderr,
    )
    if checkpoint_path:
        print(
            f"resume with: repro {subcommand} --resume {checkpoint_path} "
            "(plus your original options)",
            file=sys.stderr,
        )
    else:
        print(
            "no --checkpoint was given, so completed work was not saved; "
            "rerun with --checkpoint PATH to make runs interruptible",
            file=sys.stderr,
        )


def print_quarantine(failures, stream=None) -> None:
    """One line per quarantined task, on stderr by default."""
    stream = stream if stream is not None else sys.stderr
    for record in failures:
        print(
            f"quarantined: task {record.key} [{record.failure.kind}] "
            f"after {record.failure.attempts} attempt(s): "
            f"{record.failure.message}",
            file=stream,
        )


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="idld-campaign",
        description="Reproduce the IDLD (MICRO 2022) evaluation figures.",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=20,
        help="injections per (benchmark, bug model) pair [20]",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input-size scale factor [1.0]",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign master seed [1]"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes; results are identical for any N [1]",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=250,
        metavar="K",
        help=(
            "warm-start injections from golden-run snapshots taken every K "
            "cycles; 0 disables warm starting. Purely a throughput knob: "
            "results are bit-identical for any K [250]"
        ),
    )
    parser.add_argument(
        "--differential",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "differential suffix execution: forecast each injection's "
            "activation from the golden delta trace, restore just before "
            "it, and terminate at provable re-convergence with the golden "
            "run. Bit-identical classifications, large speedup "
            "(--no-differential to disable; needs --snapshot-interval >= 1, "
            "silently off otherwise) [on]"
        ),
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        metavar="N",
        help=(
            "dispatch up to N same-(benchmark, inject-window) injections "
            "per backend round trip, amortizing dispatch overhead; 1 "
            "disables batching. Results are bit-identical for any N [8]"
        ),
    )
    parser.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated benchmark names, or 'all'",
    )
    parser.add_argument(
        "--figures",
        default="3,4,5,8,9,10,table2",
        help=(
            "comma-separated figure ids to report; known ids: "
            + ",".join(KNOWN_FIGURES)
        ),
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="append each completed injection to this JSONL checkpoint",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help=(
            "resume an interrupted campaign from this checkpoint, skipping "
            "completed injections and appending new ones to the same file"
        ),
    )
    parser.add_argument(
        "--from-checkpoint",
        default=None,
        metavar="PATH",
        dest="from_checkpoint",
        help="skip execution: report/export straight from a checkpoint file",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="print live progress (tasks done, inj/s, ETA) to stderr "
        "[auto: on when stderr is a TTY]",
    )
    parser.add_argument(
        "--export-csv",
        default=None,
        metavar="PATH",
        help="write per-injection results to a CSV file",
    )
    parser.add_argument(
        "--export-json",
        default=None,
        metavar="PATH",
        help="write results + aggregates to a JSON file",
    )
    add_fault_args(parser)
    return parser.parse_args(argv)


def _report(campaign, campaign_figures, args) -> None:
    reports = {
        "3": figure3_report,
        "4": figure4_report,
        "5": figure5_report,
        "8": figure8_report,
        "9": lambda c: coverage_report(c, with_bv=False),
        "10": coverage_report,
    }
    for fig in ("3", "4", "5", "8", "9", "10"):
        if fig in campaign_figures:
            print("\n".join(reports[fig](campaign)))
            print()
    if "latency" in campaign_figures:
        print("\n".join(latency_report(campaign)))
    if args.export_csv:
        from repro.analysis.export import write_csv

        write_csv(campaign, args.export_csv)
        print(f"wrote {args.export_csv}")
    if args.export_json:
        from repro.analysis.export import write_json

        write_json(campaign, args.export_json)
        print(f"wrote {args.export_json}")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    figures = {f.strip().lower() for f in args.figures.split(",") if f.strip()}
    unknown_figures = figures - set(KNOWN_FIGURES)
    if unknown_figures:
        print(
            f"unknown figures: {', '.join(sorted(unknown_figures))} "
            f"(known: {', '.join(KNOWN_FIGURES)})",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.snapshot_interval < 0:
        print(
            f"--snapshot-interval must be >= 0, got {args.snapshot_interval}",
            file=sys.stderr,
        )
        return 2
    if args.batch_size < 1:
        print(
            f"--batch-size must be >= 1, got {args.batch_size}",
            file=sys.stderr,
        )
        return 2
    if args.checkpoint and args.resume:
        print(
            "--checkpoint and --resume are mutually exclusive "
            "(--resume keeps appending to the file it loads)",
            file=sys.stderr,
        )
        return 2

    if "table2" in figures:
        print(table_ii_report())
        print()
    campaign_figures = figures - {"table2"}
    exporting = bool(args.export_csv or args.export_json)

    if args.from_checkpoint:
        from repro.analysis.export import campaign_from_checkpoint
        from repro.exec.checkpoint import CheckpointError

        try:
            campaign = campaign_from_checkpoint(args.from_checkpoint)
        except (CheckpointError, OSError) as exc:
            print(f"cannot load checkpoint: {exc}", file=sys.stderr)
            return 2
        quarantined = (
            f", {campaign.quarantined} quarantined"
            if campaign.quarantined
            else ""
        )
        print(
            f"checkpoint: {len(campaign.results)} injections over "
            f"{len(campaign.benchmarks)} benchmarks "
            f"({campaign.never_activated} never activated{quarantined})\n"
        )
        _report(campaign, campaign_figures, args)
        if campaign.quarantined:
            print_quarantine(campaign.failures)
        return 0

    if not campaign_figures and not exporting:
        return 0

    if args.benchmarks == "all":
        names = list(WORKLOADS)
    else:
        names = [n.strip() for n in args.benchmarks.split(",")]
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
            return 2
    programs: Dict[str, object] = {
        name: WORKLOADS[name](scale=args.scale) for name in names
    }

    from repro.exec.backends import ProcessPoolBackend, SerialBackend
    from repro.exec.checkpoint import CheckpointError
    from repro.exec.durability import SHUTDOWN_EXIT_CODE, GracefulShutdown
    from repro.exec.engine import run_engine
    from repro.exec.progress import ProgressPrinter
    from repro.exec.resilience import FaultToleranceError

    try:
        policy = policy_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    backend = (
        ProcessPoolBackend(args.jobs, policy=policy)
        if args.jobs > 1
        else SerialBackend(policy=policy)
    )
    show_progress = (
        args.progress if args.progress is not None else sys.stderr.isatty()
    )
    observers = [ProgressPrinter()] if show_progress else []

    started = time.time()
    try:
        with GracefulShutdown() as shutdown:
            campaign = run_engine(
                programs,
                runs_per_model=args.runs,
                seed=args.seed,
                backend=backend,
                checkpoint_path=args.resume or args.checkpoint,
                resume=args.resume is not None,
                observers=observers,
                snapshot_interval=args.snapshot_interval,
                checkpoint_fsync=args.checkpoint_fsync,
                shutdown=shutdown,
                # Differential needs snapshots; with warm start explicitly
                # disabled it quietly degrades to full-suffix execution
                # (same results either way).
                differential=args.differential and args.snapshot_interval > 0,
                batch_size=args.batch_size,
            )
    except (CheckpointError, OSError) as exc:
        print(f"checkpoint error: {exc}", file=sys.stderr)
        return 2
    except FaultToleranceError as exc:
        print(f"fault tolerance: {exc}", file=sys.stderr)
        return 2
    if shutdown.requested:
        print_shutdown_notice(
            shutdown, args.resume or args.checkpoint, "campaign"
        )
        return SHUTDOWN_EXIT_CODE
    elapsed = time.time() - started
    quarantined = (
        f", {campaign.quarantined} quarantined" if campaign.quarantined else ""
    )
    print(
        f"campaign: {len(campaign.results)} injections over "
        f"{len(programs)} benchmarks in {elapsed:.1f}s "
        f"(jobs={args.jobs}, {campaign.never_activated} never activated"
        f"{quarantined})\n"
    )
    _report(campaign, campaign_figures, args)
    if campaign.quarantined:
        print_quarantine(campaign.failures)
        return 1
    return 0


def repro_main(argv: Optional[List[str]] = None) -> int:
    """The ``repro`` umbrella command: ``repro <subcommand> ...``.

    Subcommands: ``campaign`` (the injection campaign, same as the
    ``idld-campaign`` script), ``sweep`` (the campaign across a design-space
    matrix of width x free-list discipline x recovery strategy), ``fuzz``
    (coverage-guided differential fuzzing), ``checkpoint``
    (inspect/verify/repair/merge the JSONL artifacts the engines write),
    ``bench`` (the performance trajectory harness; shares the
    ``--differential``/``--snapshot-interval`` knobs with ``campaign``) and
    the distributed campaign fabric (:mod:`repro.exec.fabric`): ``serve``
    (the shard-leasing coordinator), ``submit``/``status``/``fetch`` (post
    a campaign, watch it, download the merged artifact) and ``work`` (a
    worker executing leased shards).
    Also reachable without installation as ``python -m repro``.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    usage = (
        "usage: repro {campaign,sweep,fuzz,checkpoint,bench,serve,submit,"
        "status,fetch,work} [options]  (-h for help)"
    )
    if not argv or argv[0] in ("-h", "--help"):
        print(usage)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "campaign":
        return main(rest)
    if command == "sweep":
        from repro.sweep import sweep_main

        return sweep_main(rest)
    if command == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(rest)
    if command == "checkpoint":
        from repro.exec.cli import checkpoint_main

        return checkpoint_main(rest)
    if command == "bench":
        from repro.bench import main as bench_main

        return bench_main(rest)
    if command in ("serve", "submit", "status", "fetch", "work"):
        from repro.exec import fabric

        return {
            "serve": fabric.serve_main,
            "submit": fabric.submit_main,
            "status": fabric.status_main,
            "fetch": fabric.fetch_main,
            "work": fabric.work_main,
        }[command](rest)
    print(f"unknown subcommand {command!r}\n{usage}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main())
