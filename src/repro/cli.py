"""Command-line campaign harness (``idld-campaign``).

Runs the paper's experiments at a configurable scale and prints the
figure/table reports. Examples::

    idld-campaign --runs 20                     # quick pass, all figures
    idld-campaign --runs 100 --scale 2.5        # closer to paper scale
    idld-campaign --figures 3,9 --benchmarks sha,qsort
    idld-campaign --figures table2              # RTL cost model only
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List

from repro.analysis.report import (
    coverage_report,
    figure3_report,
    figure4_report,
    figure5_report,
    figure8_report,
    latency_report,
)
from repro.bugs.campaign import run_campaign
from repro.rtl.report import table_ii_report
from repro.workloads import WORKLOADS


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="idld-campaign",
        description="Reproduce the IDLD (MICRO 2022) evaluation figures.",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=20,
        help="injections per (benchmark, bug model) pair [20]",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input-size scale factor [1.0]",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign master seed [1]"
    )
    parser.add_argument(
        "--benchmarks",
        default="all",
        help="comma-separated benchmark names, or 'all'",
    )
    parser.add_argument(
        "--figures",
        default="3,4,5,8,9,10,table2",
        help="comma-separated figure ids to report (3,4,5,8,9,10,table2)",
    )
    parser.add_argument(
        "--export-csv",
        default=None,
        metavar="PATH",
        help="write per-injection results to a CSV file",
    )
    parser.add_argument(
        "--export-json",
        default=None,
        metavar="PATH",
        help="write results + aggregates to a JSON file",
    )
    return parser.parse_args(argv)


def main(argv: List[str] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    figures = {f.strip().lower() for f in args.figures.split(",")}

    if "table2" in figures:
        print(table_ii_report())
        print()
    campaign_figures = figures - {"table2"}
    if not campaign_figures:
        return 0

    if args.benchmarks == "all":
        names = list(WORKLOADS)
    else:
        names = [n.strip() for n in args.benchmarks.split(",")]
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(f"unknown benchmarks: {', '.join(unknown)}", file=sys.stderr)
            return 2
    programs: Dict[str, object] = {
        name: WORKLOADS[name](scale=args.scale) for name in names
    }

    started = time.time()
    campaign = run_campaign(programs, runs_per_model=args.runs, seed=args.seed)
    elapsed = time.time() - started
    print(
        f"campaign: {len(campaign.results)} injections over "
        f"{len(programs)} benchmarks in {elapsed:.1f}s\n"
    )
    reports = {
        "3": figure3_report,
        "4": figure4_report,
        "5": figure5_report,
        "8": figure8_report,
        "9": lambda c: coverage_report(c, with_bv=False),
        "10": coverage_report,
    }
    for fig in ("3", "4", "5", "8", "9", "10"):
        if fig in campaign_figures:
            print("\n".join(reports[fig](campaign)))
            print()
    if "latency" in campaign_figures:
        print("\n".join(latency_report(campaign)))
    if args.export_csv:
        from repro.analysis.export import write_csv

        write_csv(campaign, args.export_csv)
        print(f"wrote {args.export_csv}")
    if args.export_json:
        from repro.analysis.export import write_json

        write_json(campaign, args.export_json)
        print(f"wrote {args.export_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
