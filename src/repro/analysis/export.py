"""Export campaign results to CSV / JSON for external analysis."""

from __future__ import annotations

import csv
import io
import json
import os
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (analysis <- bugs)
    from repro.bugs.campaign import CampaignResult, InjectionResult

#: Column order of the per-injection CSV.
FIELDS = (
    "benchmark",
    "model",
    "inject_cycle",
    "activated",
    "activation_cycle",
    "outcome",
    "masked",
    "persists",
    "manifestation_cycle",
    "manifestation_latency",
    "final_cycle",
    "idld_cycle",
    "idld_latency",
    "bv_cycle",
    "bv_latency",
    "counter_cycle",
    "eot_detected",
)


def injection_row(record: "InjectionResult") -> Dict[str, object]:
    """Flatten one injection record into primitive columns."""
    return {
        "benchmark": record.benchmark,
        "model": record.spec.model.value,
        "inject_cycle": record.spec.inject_cycle,
        "activated": record.activated,
        "activation_cycle": record.activation_cycle,
        "outcome": record.outcome.value,
        "masked": record.masked,
        "persists": record.persists,
        "manifestation_cycle": record.manifestation_cycle,
        "manifestation_latency": record.manifestation_latency,
        "final_cycle": record.final_cycle,
        "idld_cycle": record.idld_cycle,
        "idld_latency": record.idld_latency,
        "bv_cycle": record.bv_cycle,
        "bv_latency": record.bv_latency,
        "counter_cycle": record.counter_cycle,
        "eot_detected": record.eot_detected,
    }


def to_csv(campaign: "CampaignResult") -> str:
    """The full campaign as a CSV string (one row per injection)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=FIELDS)
    writer.writeheader()
    for record in campaign.results:
        writer.writerow(injection_row(record))
    return buffer.getvalue()


def to_json(campaign: "CampaignResult") -> str:
    """The campaign plus its figure-level aggregates as JSON."""
    from repro.bugs.models import PRIMARY_MODELS

    payload = {
        "injections": [injection_row(r) for r in campaign.results],
        "aggregates": {
            "coverage": campaign.coverage(),
            "masked_fraction": {
                model.value: campaign.masked_fraction(model=model)
                for model in PRIMARY_MODELS
            },
            "persistence_fraction": campaign.persistence_fraction(),
            "benchmarks": campaign.benchmarks,
        },
        "goldens": {
            name: {"cycles": golden.cycles, "committed": golden.committed}
            for name, golden in campaign.goldens.items()
        },
        # Tasks the execution layer gave up on; absent from "injections"
        # and from every aggregate above, surfaced so consumers can judge
        # whether the sample is still sound.
        "quarantined": [
            {
                "key": record.key,
                "index": record.index,
                "benchmark": record.benchmark,
                "kind": record.failure.kind,
                "attempts": record.failure.attempts,
                "message": record.failure.message,
            }
            for record in campaign.failures
        ],
    }
    return json.dumps(payload, indent=2)


def write_csv(campaign: "CampaignResult", path: str) -> None:
    """Write :func:`to_csv` output to ``path`` atomically (temp file in the
    destination directory + ``os.replace``), so a killed export never
    leaves a half-written figure input."""
    from repro.exec.durability import atomic_write_text

    atomic_write_text(path, to_csv(campaign), newline="")


def append_csv(records: Iterable["InjectionResult"], path: str) -> None:
    """Incrementally append injection rows to a CSV file.

    Writes the header only when the file is new or empty, so a long
    campaign can flush batches of results as they complete and still end
    up with one well-formed CSV.
    """
    fresh = not os.path.exists(path) or os.path.getsize(path) == 0
    with open(path, "a", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=FIELDS)
        if fresh:
            writer.writeheader()
        for record in records:
            writer.writerow(injection_row(record))


def campaign_from_checkpoint(path: str) -> "CampaignResult":
    """Rebuild a :class:`CampaignResult` from an engine checkpoint file.

    Results come back in canonical task order (the order an uninterrupted
    serial campaign would have produced), and golden-run summaries are
    restored from the manifest, so every aggregation and export works as
    if the campaign had just run. Quarantined-task ``failure`` records are
    restored onto ``CampaignResult.failures``.
    """
    from repro.bugs.campaign import CampaignResult
    from repro.exec.checkpoint import load_checkpoint_full

    manifest, done, quarantined = load_checkpoint_full(path)
    campaign = CampaignResult()
    for index, result in sorted(done.values(), key=lambda pair: pair[0]):
        campaign.results.append(result)
    campaign.failures = sorted(
        quarantined.values(), key=lambda record: record.index
    )
    # Canonical benchmark order, not file order: checkpoints rewritten by
    # repair/merge (sort_keys) would otherwise reorder the goldens block
    # of the JSON export relative to a live campaign's.
    campaign.goldens = {
        name: manifest.goldens[name]
        for name in manifest.benchmarks
        if name in manifest.goldens
    }
    for name, golden in manifest.goldens.items():
        campaign.goldens.setdefault(name, golden)
    return campaign


def write_json(campaign: "CampaignResult", path: str) -> None:
    """Write :func:`to_json` output to ``path`` atomically — same guarantee
    as :func:`write_csv`."""
    from repro.exec.durability import atomic_write_text

    atomic_write_text(path, to_json(campaign))
