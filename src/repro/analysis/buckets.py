"""Logarithmic latency buckets (Figure 5's x-axis).

"For a clear demonstration of our findings, we group the manifestation
times in eight buckets on a logarithmic scale."
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

#: Eight decade buckets; the last is open-ended.
DEFAULT_EDGES: Tuple[int, ...] = (10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000)


def bucket_labels(edges: Sequence[int] = DEFAULT_EDGES) -> List[str]:
    """Human-readable labels, one per bucket."""
    labels = [f"<{edges[0]:,}"]
    for low, high in zip(edges, edges[1:]):
        labels.append(f"{low:,}-{high:,}")
    labels.append(f">={edges[-1]:,}")
    return labels


def bucket_index(value: int, edges: Sequence[int] = DEFAULT_EDGES) -> int:
    """Bucket index of one latency value."""
    for i, edge in enumerate(edges):
        if value < edge:
            return i
    return len(edges)


def histogram(
    values: Iterable[int], edges: Sequence[int] = DEFAULT_EDGES
) -> List[int]:
    """Counts per bucket."""
    counts = [0] * (len(edges) + 1)
    for value in values:
        counts[bucket_index(value, edges)] += 1
    return counts


def histogram_table(
    series: Dict[str, Iterable[int]], edges: Sequence[int] = DEFAULT_EDGES
) -> List[str]:
    """Render multiple latency series against shared buckets (Figure 5)."""
    labels = bucket_labels(edges)
    rows = {name: histogram(values, edges) for name, values in series.items()}
    width = max(len(label) for label in labels)
    header = " ".join(f"{name:>12}" for name in rows)
    lines = [f"{'bucket':>{width}} {header}"]
    for i, label in enumerate(labels):
        cells = " ".join(f"{counts[i]:>12}" for counts in rows.values())
        lines.append(f"{label:>{width}} {cells}")
    return lines
