"""Outcome classes, histogram buckets, reports, export and tracing."""

from repro.analysis.export import to_csv, to_json, write_csv, write_json
from repro.analysis.outcomes import OBSERVABLE, OutcomeClass
from repro.analysis.trace import RRSTracer, TraceEvent

__all__ = [
    "OBSERVABLE",
    "OutcomeClass",
    "RRSTracer",
    "TraceEvent",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
]
