"""Bug-effect outcome classes (Sections IV.A and VI.C).

Masked classes (no effect on the program's output):

* **Benign** -- output and commit trace identical to the bug-free run.
* **Performance** -- same committed instructions, some at different cycles.
* **Control Flow Deviation** -- a different instruction sequence committed,
  yet the output is identical (short wrong-path excursions that re-converge).

Observable classes:

* **SDC** -- silent data corruption: execution finishes normally but the
  output differs.
* **Timeout** -- execution not finished within 2.5x the bug-free time
  (deadlock/livelock included).
* **Assert** -- the simulator hit a condition it cannot resolve.
* **Crash** -- a catastrophic event (memory fault) interrupted execution.
"""

from __future__ import annotations

import enum


class OutcomeClass(enum.Enum):
    """The seven bug-effect classes of the paper."""

    BENIGN = "Benign"
    PERFORMANCE = "Performance"
    CONTROL_FLOW_DEVIATION = "Control Flow Deviation"
    SDC = "SDC"
    TIMEOUT = "Timeout"
    ASSERT = "Assert"
    CRASH = "Crash"

    @property
    def masked(self) -> bool:
        """True for the unified Masked class of Section IV.B."""
        return self in _MASKED

    @property
    def has_side_effect(self) -> bool:
        """Masked but with a detectable side effect (Figure 5's red line)."""
        return self in (
            OutcomeClass.PERFORMANCE,
            OutcomeClass.CONTROL_FLOW_DEVIATION,
        )


_MASKED = frozenset(
    {
        OutcomeClass.BENIGN,
        OutcomeClass.PERFORMANCE,
        OutcomeClass.CONTROL_FLOW_DEVIATION,
    }
)

#: Outcomes the traditional end-of-test checking flow observes: anything
#: that changes the final output or visibly aborts/overruns the test.
OBSERVABLE = frozenset(
    {
        OutcomeClass.SDC,
        OutcomeClass.TIMEOUT,
        OutcomeClass.ASSERT,
        OutcomeClass.CRASH,
    }
)
