"""Printable reports for every reproduced figure of the evaluation."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.buckets import histogram_table
from repro.analysis.outcomes import OutcomeClass
from repro.bugs.campaign import CampaignResult
from repro.bugs.models import BugModel, PRIMARY_MODELS


def figure3_report(campaign: CampaignResult) -> List[str]:
    """Masked fraction per benchmark x bug model (Figure 3)."""
    lines = [
        "Figure 3 -- fraction of bug activations masked "
        "(Benign + Performance + Control Flow Deviation)",
        f"{'benchmark':>14} "
        + " ".join(f"{m.value:>18}" for m in PRIMARY_MODELS),
    ]
    for bench in campaign.benchmarks:
        cells = " ".join(
            f"{campaign.masked_fraction(bench, m):>17.0%} "
            for m in PRIMARY_MODELS
        )
        lines.append(f"{bench:>14} {cells}")
    lines.append(
        f"{'AVERAGE':>14} "
        + " ".join(
            f"{campaign.masked_fraction(model=m):>17.0%} "
            for m in PRIMARY_MODELS
        )
    )
    return lines


def figure4_report(campaign: CampaignResult) -> List[str]:
    """Persistence of masked bug effects (Figure 4)."""
    lines = [
        "Figure 4 -- masked bugs whose effect persists until reset",
        f"{'benchmark':>14} {'persisting':>11}",
    ]
    for bench in campaign.benchmarks:
        lines.append(
            f"{bench:>14} {campaign.persistence_fraction(bench):>10.0%}"
        )
    lines.append(f"{'AVERAGE':>14} {campaign.persistence_fraction():>10.0%}")
    return lines


def figure5_report(campaign: CampaignResult) -> List[str]:
    """Manifestation-latency histogram (Figure 5)."""
    lines = ["Figure 5 -- bug manifestation latency (cycles after activation)"]
    lines += histogram_table(
        {
            "non-masked": campaign.manifestation_latencies(False),
            "masked+side": campaign.manifestation_latencies(True),
        }
    )
    return lines


def figure8_report(campaign: CampaignResult) -> List[str]:
    """Outcome breakdown for the control-signal bug models (Figure 8)."""
    outcomes = list(OutcomeClass)
    lines = [
        "Figure 8 -- outcome breakdown per benchmark "
        "(control-signal corruption models)",
        f"{'benchmark':>14} " + " ".join(f"{o.value[:10]:>11}" for o in outcomes),
    ]
    for bench in campaign.benchmarks:
        counts = campaign.outcome_breakdown(bench)
        total = max(1, sum(counts.values()))
        cells = " ".join(f"{counts[o] / total:>10.0%} " for o in outcomes)
        lines.append(f"{bench:>14} {cells}")
    return lines


def coverage_report(campaign: CampaignResult, with_bv: bool = True) -> List[str]:
    """Detection coverage (Figures 9 and 10)."""
    cov = campaign.coverage()
    lines = [
        "Figures 9/10 -- detection coverage over all activated injections",
        f"  IDLD:                    {cov['idld']:>7.1%}   (paper: 100%)",
        f"  end-of-test checking:    {cov['end_of_test']:>7.1%}   (paper: 82.1%)",
    ]
    if with_bv:
        lines += [
            f"  bit-vector (BV):         {cov['bv']:>7.1%}",
            f"  end-of-test + BV:        {cov['end_of_test+bv']:>7.1%}   (paper: ~83%)",
            f"  BV fired during run:     {cov['bv_first']:>7.1%}   (paper: 8.6% before end-of-test)",
        ]
    return lines


def latency_report(campaign: CampaignResult) -> List[str]:
    """IDLD vs BV detection latencies (Section VI.C's latency analysis)."""
    idld = campaign.detection_latencies("idld")
    bv = campaign.detection_latencies("bv")
    lines = ["Detection latency (cycles from activation)"]
    lines += histogram_table({"IDLD": idld, "BV": bv})
    if idld:
        lines.append(f"IDLD max latency: {max(idld)} cycles")
    if bv:
        lines.append(f"BV   max latency: {max(bv)} cycles")
    return lines
