"""RRS port-event tracing for root-cause analysis.

The debugging story IDLD enables (Section I): once the checker pins the
activation cycle, an engineer needs the microarchitectural context *at
that cycle* -- not millions of cycles of history. :class:`RRSTracer` keeps
a bounded ring of recent port events and renders the window around any
cycle of interest, which is exactly the triage flow
``examples/root_cause_latency.py`` motivates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from repro.core.rrs.ports import RRSObserver


@dataclass(frozen=True)
class TraceEvent:
    """One recorded port event."""

    cycle: int
    kind: str
    detail: str


class RRSTracer(RRSObserver):
    """Bounded ring buffer over the RRS port traffic.

    Args:
        capacity: Maximum retained events (oldest evicted first).
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._cycle = 1

    # -- recording ------------------------------------------------------------

    def _record(self, kind: str, detail: str, cycle: Optional[int] = None) -> None:
        self._events.append(
            TraceEvent(self._cycle if cycle is None else cycle, kind, detail)
        )

    def power_on(self, num_physical, num_logical, initial_free, initial_rat):
        self._events.clear()
        self._cycle = 1
        self._record("power_on", f"{num_physical} Pdsts, {num_logical} logical", 0)

    def fl_read(self, pdst):
        self._record("FL.pop", f"allocate p{pdst}")

    def fl_write(self, pdst):
        self._record("FL.push", f"reclaim p{pdst}")

    def rat_write(self, ldst, old_pdst, new_pdst):
        self._record("RAT.write", f"r{ldst}: p{old_pdst} -> p{new_pdst}")

    def rat_write_zero_idiom(self, ldst, old_pdst):
        self._record("RAT.zero", f"r{ldst}: p{old_pdst} -> Z (dup-marked)")

    def rat_write_over_zero(self, ldst, new_pdst):
        self._record("RAT.write", f"r{ldst}: Z -> p{new_pdst}")

    def rob_pdst_write(self, pdst, seq):
        self._record("ROB.write", f"seq {seq} holds evicted p{pdst}")

    def rob_pdst_read(self, pdst, seq):
        self._record("ROB.read", f"seq {seq} releases p{pdst}")

    def recovery_begin(self, cycle):
        self._record("RECOVERY", "begin", cycle)

    def recovery_end(self, cycle):
        self._record("RECOVERY", "end", cycle)

    def checkpoint_content(self, slot, pos):
        self._record("CKPT.take", f"slot {slot} @ seq {pos}")

    def checkpoint_restored(self, slot):
        self._record("CKPT.restore", f"slot {slot}")

    def cycle_end(self, cycle):
        self._cycle = cycle + 1

    # -- rendering ----------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def window(self, around_cycle: int, radius: int = 3) -> List[TraceEvent]:
        """Events within ``radius`` cycles of ``around_cycle``."""
        low, high = around_cycle - radius, around_cycle + radius
        return [e for e in self._events if low <= e.cycle <= high]

    def render(
        self, around_cycle: Optional[int] = None, radius: int = 3
    ) -> str:
        """Human-readable dump (full buffer, or a window)."""
        events = (
            self.window(around_cycle, radius)
            if around_cycle is not None
            else self.events()
        )
        lines = []
        last_cycle = None
        for event in events:
            stamp = f"{event.cycle:>7}" if event.cycle != last_cycle else " " * 7
            lines.append(f"{stamp}  {event.kind:<12} {event.detail}")
            last_cycle = event.cycle
        return "\n".join(lines)
