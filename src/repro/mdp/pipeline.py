"""A compact store/load pipeline that drives the Store-Sets predictor.

This is the substrate for the Figure 7 use case: a stream of loads and
stores flows through map -> execute -> commit, with the predictor
serializing loads behind their predicted store. The model is deliberately
narrow -- it exists to exercise the LFST insertion/removal invariance and
the consequences of its violation (load hangs, stale dependencies), not to
re-model the whole OoO core.

Memory-order ground truth is tracked so that true violations (a load
executing before an older overlapping store) train the SSIT, making the
predictor's state evolve the way the original store-sets design intends.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.mdp.signals import MDPSignalFabric
from repro.mdp.store_sets import MDPObserver, StoreSetsPredictor


@dataclass
class MemOp:
    """One memory operation of the driving stream.

    A *bubble* (``pc < 0``) models non-memory work between bursts: the map
    stage consumes it without creating an in-flight op, letting the store
    queue drain -- which is precisely when the SQ-empty IDLD check of
    Section V.F gets its opportunity.
    """

    is_store: bool
    pc: int
    address: int
    exec_latency: int  # cycles from map to address generation

    @property
    def is_bubble(self) -> bool:
        return self.pc < 0


@dataclass
class _InFlight:
    op: MemOp
    seq: int
    inner_id: int = -1          # SQ slot for stores
    lfst_slot: Optional[int] = None  # where the store inserted at map
    map_cycle: int = 0
    addr_ready_cycle: int = -1  # when the address generation completes
    executed: bool = False
    dep_inner_id: Optional[int] = None  # load: predicted store dependency
    violation: bool = False


@dataclass
class MDPRunResult:
    """Outcome of one pipeline run."""

    cycles: int
    completed: int
    hung: bool
    violations: int
    lfst_leftover: int  # LFST occupancy at the end (nonzero => leaked IDs)


def make_stream(
    num_ops: int,
    seed: int = 11,
    num_pcs: int = 24,
    num_addresses: int = 16,
    bubble_rate: float = 0.25,
) -> List[MemOp]:
    """A conflict-heavy, bursty op stream: few addresses and recurring PCs
    keep the store-sets predictor training and the LFST busy; bubble bursts
    let the store queue drain so the quiescent checks get opportunities."""
    rng = random.Random(seed)
    ops = []
    for _ in range(num_ops):
        if rng.random() < bubble_rate:
            # A burst of non-memory work.
            for _ in range(rng.randint(2, 10)):
                ops.append(MemOp(is_store=False, pc=-1, address=0, exec_latency=0))
            continue
        is_store = rng.random() < 0.45
        ops.append(
            MemOp(
                is_store=is_store,
                pc=rng.randrange(num_pcs),
                address=rng.randrange(num_addresses),
                exec_latency=rng.randint(1, 6),
            )
        )
    return ops


class MDPPipeline:
    """Cycle-driven map/execute/commit loop over a MemOp stream."""

    def __init__(
        self,
        stream: Sequence[MemOp],
        predictor: Optional[StoreSetsPredictor] = None,
        fabric: Optional[MDPSignalFabric] = None,
        observers: Sequence[MDPObserver] = (),
        map_width: int = 2,
        store_queue_entries: int = 16,
    ) -> None:
        self.stream = list(stream)
        self.fabric = fabric or MDPSignalFabric()
        self.observers = list(observers)
        self.predictor = predictor or StoreSetsPredictor(
            fabric=self.fabric, observers=self.observers
        )
        self.map_width = map_width
        self.store_queue_entries = store_queue_entries
        self.cycle = 0
        self.next_op = 0
        self.in_flight: List[_InFlight] = []
        self.sq_slots: Dict[int, _InFlight] = {}
        self.violations = 0
        self.completed = 0
        self._last_progress = 0

    # -- helpers -----------------------------------------------------------------

    def _free_sq_slot(self) -> Optional[int]:
        for slot in range(self.store_queue_entries):
            if slot not in self.sq_slots:
                return slot
        return None

    def _store_of_inner_id(self, inner_id: int) -> Optional[_InFlight]:
        return self.sq_slots.get(inner_id)

    # -- one cycle ------------------------------------------------------------------

    def step(self) -> None:
        self.cycle += 1
        self.fabric.cycle = self.cycle
        self._commit()
        self._execute()
        self._map()
        for obs in self.observers:
            if not self.sq_slots:
                obs.sq_empty(self.cycle)
            obs.cycle_end(self.cycle)

    def _map(self) -> None:
        for _ in range(self.map_width):
            if self.next_op >= len(self.stream):
                return
            op = self.stream[self.next_op]
            if op.is_bubble:
                self.next_op += 1
                self.completed += 1
                self._last_progress = self.cycle
                continue
            if op.is_store and self._free_sq_slot() is None:
                return  # SQ full: stall the map stage
            seq = self.next_op
            entry = _InFlight(op=op, seq=seq, map_cycle=self.cycle)
            if op.is_store:
                slot = self._free_sq_slot()
                entry.inner_id = slot
                self.sq_slots[slot] = entry
                entry.lfst_slot = self.predictor.store_mapped(op.pc, slot, seq)
                entry.addr_ready_cycle = self.cycle + op.exec_latency
            else:
                entry.dep_inner_id = self.predictor.load_mapped(op.pc)
            self.in_flight.append(entry)
            self.next_op += 1
            self._last_progress = self.cycle

    def _execute(self) -> None:
        for entry in self.in_flight:
            if entry.executed:
                continue
            if entry.op.is_store:
                if self.cycle >= entry.addr_ready_cycle:
                    entry.executed = True
                    self.predictor.store_address_computed(
                        entry.lfst_slot, entry.inner_id
                    )
                    self._last_progress = self.cycle
            else:
                self._try_execute_load(entry)

    def _try_execute_load(self, entry: _InFlight) -> None:
        dep = entry.dep_inner_id
        if dep is not None:
            store = self._store_of_inner_id(dep)
            if store is None:
                # Predicted dependency on a store that has left the
                # pipeline: the wake-up never comes (the paper's hang).
                return
            if not store.executed:
                return
        entry.executed = True
        self._last_progress = self.cycle
        # Ground truth: did an older overlapping store execute after us?
        for other in self.in_flight:
            if (
                other.op.is_store
                and other.seq < entry.seq
                and not other.executed
                and other.op.address == entry.op.address
            ):
                self.violations += 1
                entry.violation = True
                self.predictor.train(entry.op.pc, other.op.pc)
                break

    def _commit(self) -> None:
        while self.in_flight:
            head = self.in_flight[0]
            if not head.executed:
                return
            self.in_flight.pop(0)
            if head.op.is_store:
                del self.sq_slots[head.inner_id]
            self.completed += 1
            self._last_progress = self.cycle
            for obs in self.observers:
                obs.commit_watermark(head.seq, self.cycle)

    # -- run loop ----------------------------------------------------------------------

    def run(self, max_cycles: int = 100_000, hang_window: int = 2_000) -> MDPRunResult:
        """Drive the stream to completion or to a hang."""
        while self.completed < len(self.stream) and self.cycle < max_cycles:
            self.step()
            if self.cycle - self._last_progress > hang_window:
                break  # hung: a load waits on a departed store
        hung = self.completed < len(self.stream)
        return MDPRunResult(
            cycles=self.cycle,
            completed=self.completed,
            hung=hung,
            violations=self.violations,
            lfst_leftover=self.predictor.lfst_occupancy(),
        )
