"""Control signals of the Store-Sets MDP tables, with bug injection.

The MDP use case (Section V.F) has its own small signal surface: LFST
insertions at the map stage, LFST removals (at store address computation,
or implicitly when another store displaces the entry), and SSIT training
updates. As in the RRS fabric, a suppressed signal means the action -- and
the IDLD XOR update gated by it -- silently does not happen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class MDPSignal(enum.Enum):
    """Injectable MDP control signals."""

    LFST_INSERT = "lfst_insert"
    LFST_REMOVE_EXEC = "lfst_remove_exec"
    LFST_REMOVE_DISPLACE = "lfst_remove_displace"
    SSIT_TRAIN = "ssit_train"


@dataclass
class ArmedMDPSuppression:
    """One-shot de-assertion of one MDP control signal."""

    signal: MDPSignal
    from_cycle: int
    fired: bool = False
    fired_cycle: Optional[int] = None


class MDPSignalFabric:
    """Consultation point for the MDP control signals."""

    def __init__(self) -> None:
        self.cycle = 0
        self._suppressions: List[ArmedMDPSuppression] = []

    def arm(self, signal: MDPSignal, from_cycle: int) -> ArmedMDPSuppression:
        armed = ArmedMDPSuppression(signal, from_cycle)
        self._suppressions.append(armed)
        return armed

    def asserted(self, signal: MDPSignal) -> bool:
        for armed in self._suppressions:
            if (
                not armed.fired
                and armed.signal is signal
                and self.cycle >= armed.from_cycle
            ):
                armed.fired = True
                armed.fired_cycle = self.cycle
                return False
        return True
