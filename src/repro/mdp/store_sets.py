"""Store-Sets memory dependence predictor (Chrysos & Emer, ISCA 1998).

The structure the paper's Figure 7 instruments:

* **SSIT** (Store Set ID Table): PC-indexed; maps loads and stores that
  have conflicted in the past to a common store-set identifier (SSID).
* **LFST** (Last Fetched Store Table): SSID-indexed; holds the *inner ID*
  ("unique identifier for each store currently in the pipeline") of the
  most recently mapped store of that set.

Flow (black circles = map stage, grey = execute, in Figure 7):

1. A store at map looks up SSIT[pc]; with a valid SSID it inserts its
   inner ID into LFST[ssid], *displacing* (= removing) any previous
   occupant.
2. A load at map looks up SSIT[pc] -> LFST[ssid] and, if an inner ID is
   present, must wait for that store.
3. When a store's address is computed at execute, its LFST entry is
   removed (if it is still the occupant).
4. A memory-order violation trains SSIT: the load and store PCs are
   assigned a common SSID.

The invariance IDLD exploits: **every LFST insertion is eventually
removed** (by address computation or displacement). "Otherwise, if the ID
is not removed, a load may cause execution to hang because it can have a
dependency on a store that has left the pipeline."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.mdp.signals import MDPSignal, MDPSignalFabric


class MDPObserver:
    """Observer over the LFST insert/remove ports (the Figure 7 taps).

    ``seq`` is the inserting store's sequence number; removals carry the
    sequence of the insert they undo, which is what the checkpointed
    checking variant of Section V.F ranges over.
    """

    def lfst_insert(self, inner_id: int, seq: int) -> None:
        """An inner ID entered the LFST."""

    def lfst_remove(self, inner_id: int, seq: int) -> None:
        """An inner ID left the LFST (address computed or displaced)."""

    def sq_empty(self, cycle: int) -> None:
        """The store queue is empty this cycle (checking opportunity)."""

    def commit_watermark(self, seq: int, cycle: int) -> None:
        """In-order commit progress (drives the checkpointed check)."""

    def cycle_end(self, cycle: int) -> None:
        """End-of-cycle synchronization point."""


@dataclass
class SSITEntry:
    valid: bool = False
    ssid: int = 0


@dataclass
class LFSTEntry:
    inner_id: int
    seq: int


class StoreSetsPredictor:
    """SSIT + LFST with injectable control signals."""

    def __init__(
        self,
        ssit_entries: int = 256,
        lfst_entries: int = 64,
        fabric: Optional[MDPSignalFabric] = None,
        observers: Sequence[MDPObserver] = (),
    ) -> None:
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        self.fabric = fabric or MDPSignalFabric()
        self.observers = list(observers)
        self._ssit: List[SSITEntry] = [SSITEntry() for _ in range(ssit_entries)]
        self._lfst: List[Optional[LFSTEntry]] = [None] * lfst_entries
        self._next_ssid = 0

    def reset(self) -> None:
        self._ssit = [SSITEntry() for _ in range(self.ssit_entries)]
        self._lfst = [None] * self.lfst_entries
        self._next_ssid = 0

    # -- lookups --------------------------------------------------------------

    def _ssit_index(self, pc: int) -> int:
        return pc % self.ssit_entries

    def ssid_for(self, pc: int) -> Optional[int]:
        entry = self._ssit[self._ssit_index(pc)]
        return entry.ssid if entry.valid else None

    # -- map-stage flows (black circles in Figure 7) ----------------------------------

    def store_mapped(self, pc: int, inner_id: int, seq: int) -> Optional[int]:
        """A store reaches the map stage.

        Inserts the store's inner ID into its set's LFST entry, displacing
        (removing) the previous occupant. Returns the LFST slot used (the
        store carries it to execute so its removal targets the entry it
        inserted, even if training re-maps its PC meanwhile), or None when
        the store has no set yet.
        """
        ssid = self.ssid_for(pc)
        if ssid is None:
            return None
        slot = ssid % self.lfst_entries
        displaced = self._lfst[slot]
        if displaced is not None:
            if self.fabric.asserted(MDPSignal.LFST_REMOVE_DISPLACE):
                self._lfst[slot] = None
                for obs in self.observers:
                    obs.lfst_remove(displaced.inner_id, displaced.seq)
            # Displacement removal suppressed: the old ID stays accounted as
            # inserted although the table is about to drop it.
        if self.fabric.asserted(MDPSignal.LFST_INSERT):
            self._lfst[slot] = LFSTEntry(inner_id, seq)
            for obs in self.observers:
                obs.lfst_insert(inner_id, seq)
        return slot

    def load_mapped(self, pc: int) -> Optional[int]:
        """A load reaches the map stage; returns the inner ID of the store
        it is predicted to depend on, if any."""
        ssid = self.ssid_for(pc)
        if ssid is None:
            return None
        entry = self._lfst[ssid % self.lfst_entries]
        return entry.inner_id if entry is not None else None

    # -- execute-stage flow (grey circles in Figure 7) ----------------------------------

    def store_address_computed(self, slot: Optional[int], inner_id: int) -> None:
        """A store's address is known: the entry it inserted at map (whose
        slot it carried down the pipeline) is removed if it is still the
        occupant."""
        if slot is None:
            return
        entry = self._lfst[slot]
        if entry is not None and entry.inner_id == inner_id:
            if self.fabric.asserted(MDPSignal.LFST_REMOVE_EXEC):
                self._lfst[slot] = None
                for obs in self.observers:
                    obs.lfst_remove(entry.inner_id, entry.seq)
            # Suppressed: the entry lingers -- exactly the hang scenario the
            # paper motivates ("a dependency on a store that has left the
            # pipeline").

    # -- training -------------------------------------------------------------------------

    def train(self, load_pc: int, store_pc: int) -> None:
        """A memory-order violation assigns both PCs a common store set."""
        if not self.fabric.asserted(MDPSignal.SSIT_TRAIN):
            return
        load_entry = self._ssit[self._ssit_index(load_pc)]
        store_entry = self._ssit[self._ssit_index(store_pc)]
        if store_entry.valid:
            ssid = store_entry.ssid
        elif load_entry.valid:
            ssid = load_entry.ssid
        else:
            ssid = self._next_ssid
            self._next_ssid = (self._next_ssid + 1) % self.lfst_entries
        load_entry.valid = True
        load_entry.ssid = ssid
        store_entry.valid = True
        store_entry.ssid = ssid

    # -- probes -----------------------------------------------------------------------------

    def lfst_occupancy(self) -> int:
        return sum(1 for entry in self._lfst if entry is not None)

    def lfst_contents(self) -> List[int]:
        return [entry.inner_id for entry in self._lfst if entry is not None]
