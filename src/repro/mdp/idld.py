"""IDLD for the Store-Sets MDP (Section V.F, Figure 7).

"IDLD uses two registers to track the XOR of the ID's that are inserted
and removed from the LFST table. The other important part is to identify
when to check for invariance violation: the two XORs should be equal but
they are not."

Three checking policies from the paper, strongest first:

* **counter-zero** -- "every time a counter, that is incremented on
  insertions and decremented on removals, becomes zero";
* **SQ-empty** -- "whenever the Store Queue of the core is empty";
* **checkpointed** -- "take a checkpoint of the insertion XOR when a
  specific SQ entry is allocated and compare... when that SQ entry
  commits", with a second removal XOR restricted to the checkpoint range
  to tolerate out-of-order removals.

Inner IDs are extended with a constant-1 bit exactly as in the RRS checker
so ID 0 is visible to the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.idld.codes import extend, extension_bit
from repro.mdp.store_sets import MDPObserver


@dataclass
class MDPViolation:
    """One MDP-IDLD alarm."""

    cycle: int
    policy: str
    in_xor: int
    out_xor: int


class MDPIDLDChecker(MDPObserver):
    """Insertion/removal XOR pair with counter-zero and SQ-empty checks."""

    def __init__(
        self,
        id_space: int = 64,
        check_on_counter_zero: bool = True,
        check_on_sq_empty: bool = True,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.check_on_counter_zero = check_on_counter_zero
        self.check_on_sq_empty = check_on_sq_empty
        self._ext_bit = extension_bit(id_space)
        self.in_xor = 0
        self.out_xor = 0
        self.counter = 0
        self.violations: List[MDPViolation] = []
        self._cycle = 1

    # -- taps ------------------------------------------------------------------

    def lfst_insert(self, inner_id: int, seq: int) -> None:
        self.in_xor ^= extend(inner_id, self._ext_bit)
        self.counter += 1

    def lfst_remove(self, inner_id: int, seq: int) -> None:
        self.out_xor ^= extend(inner_id, self._ext_bit)
        self.counter -= 1

    # -- checks -----------------------------------------------------------------

    def _check(self, cycle: int, policy: str) -> None:
        if self.enabled and self.in_xor != self.out_xor:
            self.violations.append(
                MDPViolation(cycle, policy, self.in_xor, self.out_xor)
            )

    def sq_empty(self, cycle: int) -> None:
        if self.check_on_sq_empty:
            self._check(cycle, "sq_empty")

    def cycle_end(self, cycle: int) -> None:
        self._cycle = cycle + 1
        if self.check_on_counter_zero and self.counter == 0:
            self._check(cycle, "counter_zero")

    # -- results ------------------------------------------------------------------

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.violations[0].cycle if self.violations else None


class CheckpointedMDPChecker(MDPObserver):
    """The checkpoint variant for pipelines whose SQ rarely drains.

    Section V.F: "take a checkpoint of the insertion XOR when a specific SQ
    entry is allocated and compare the checkpoint with the removal XOR when
    that SQ entry commits... compare with a second version of the removal
    XOR that is updated only from SQids that are between the current SQ
    tail and the SQ position where checkpoint is taken."

    Concretely this partitions the store sequence into *windows* closed
    every ``interval`` insertions. The window's insertion XOR is frozen at
    checkpoint time; removals route by insert-sequence into the open
    window or the future accumulator (out-of-order removals for younger
    stores). When the checkpointed store commits in order, every insertion
    of the window has been removed exactly once -- by its own address
    computation or an earlier displacement -- so the two XORs must match.
    """

    def __init__(self, id_space: int = 64, interval: int = 8, enabled: bool = True) -> None:
        self.enabled = enabled
        self.interval = interval
        self._ext_bit = extension_bit(id_space)
        self._pending_in = 0     # inserts since the last checkpoint
        self._window_in = 0      # frozen insertion XOR of the open window
        self._window_out = 0     # removals belonging to the open window
        self._future_out = 0     # removals for stores past the window end
        self._window_end: Optional[int] = None
        self._inserts_since_ckpt = 0
        self.violations: List[MDPViolation] = []
        self._cycle = 1

    @property
    def window_open(self) -> bool:
        return self._window_end is not None

    def lfst_insert(self, inner_id: int, seq: int) -> None:
        self._pending_in ^= extend(inner_id, self._ext_bit)
        self._inserts_since_ckpt += 1
        if not self.window_open and self._inserts_since_ckpt >= self.interval:
            # Checkpoint: freeze the window at this store.
            self._window_in = self._pending_in
            self._pending_in = 0
            self._window_out = self._future_out
            self._future_out = 0
            self._window_end = seq
            self._inserts_since_ckpt = 0

    def lfst_remove(self, inner_id: int, seq: int) -> None:
        code = extend(inner_id, self._ext_bit)
        if self.window_open and seq <= self._window_end:
            self._window_out ^= code
        else:
            self._future_out ^= code

    def cycle_end(self, cycle: int) -> None:
        self._cycle = cycle + 1

    def commit_watermark(self, committed_seq: int, cycle: int) -> None:
        """In-order commit progress; checks when the window store commits."""
        if not self.window_open or committed_seq < self._window_end:
            return
        if self.enabled and self._window_in != self._window_out:
            self.violations.append(
                MDPViolation(cycle, "checkpoint", self._window_in, self._window_out)
            )
        self._window_end = None
        self._window_out = 0

    @property
    def detected(self) -> bool:
        return bool(self.violations)

    @property
    def first_detection_cycle(self) -> Optional[int]:
        return self.violations[0].cycle if self.violations else None
