"""Store-Sets memory dependence predictor and its IDLD use case (Sec V.F)."""

from repro.mdp.idld import (
    CheckpointedMDPChecker,
    MDPIDLDChecker,
    MDPViolation,
)
from repro.mdp.pipeline import MDPPipeline, MDPRunResult, MemOp, make_stream
from repro.mdp.signals import ArmedMDPSuppression, MDPSignal, MDPSignalFabric
from repro.mdp.store_sets import (
    LFSTEntry,
    MDPObserver,
    SSITEntry,
    StoreSetsPredictor,
)

__all__ = [
    "ArmedMDPSuppression",
    "CheckpointedMDPChecker",
    "LFSTEntry",
    "MDPIDLDChecker",
    "MDPObserver",
    "MDPPipeline",
    "MDPRunResult",
    "MDPSignal",
    "MDPSignalFabric",
    "MDPViolation",
    "MemOp",
    "SSITEntry",
    "StoreSetsPredictor",
    "make_stream",
]
