"""Design-space sweep harness (``repro sweep``).

Runs one injection campaign per *design point* — the cross product of
rename width x free-list discipline x recovery strategy — through the
same engine the single-point campaign uses (same task derivation, fault
tolerance, durability and warm-start machinery per cell), then prints:

* a per-cell table: detection coverage, mean IDLD latency, outcome mix;
* the Table II-shaped RTL overhead report for every width in the sweep;
* and appends one per-design-point entry to the ``BENCH_core.json``
  performance trajectory.

Each cell can write its own JSONL checkpoint under ``--checkpoint-dir``;
the manifests carry the cell's serialized design point, so a resume (or a
merge) of the wrong cell's file is refused rather than silently blending
geometries. Results are bit-identical for any ``--jobs`` value, exactly
as for ``repro campaign``.

Example::

    repro sweep --widths 1,4 --runs 4 --scale 0.25
    repro sweep --widths 1,2,4,8 --disciplines fifo,stack \
        --recoveries checkpoint,rob-walk,checkpoint-free \
        --runs 10 --jobs 4 --checkpoint-dir sweep-ckpt/
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.bench import append_entry
from repro.cli import add_fault_args, policy_from_args, print_quarantine
from repro.core.config import (
    FREE_LIST_DISCIPLINES,
    RECOVERY_STRATEGIES,
    paper_rrs_config,
)
from repro.rtl.report import format_table_ii
from repro.rtl.rrs_design import evaluate_width
from repro.workloads import WORKLOADS


def _parse_csv(text: str, known: Tuple[str, ...], flag: str) -> List[str]:
    values = [v.strip() for v in text.split(",") if v.strip()]
    unknown = [v for v in values if v not in known]
    if unknown:
        raise ValueError(
            f"{flag}: unknown value(s) {', '.join(unknown)} "
            f"(known: {', '.join(known)})"
        )
    if not values:
        raise ValueError(f"{flag}: no values given")
    return values


def _parse_args(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description=(
            "Run the injection campaign across a design-space matrix of "
            "width x free-list discipline x recovery strategy."
        ),
    )
    parser.add_argument(
        "--widths",
        default="1,2,4,8",
        help="comma-separated rename widths [1,2,4,8]",
    )
    parser.add_argument(
        "--disciplines",
        default=",".join(FREE_LIST_DISCIPLINES),
        help=f"free-list disciplines [{','.join(FREE_LIST_DISCIPLINES)}]",
    )
    parser.add_argument(
        "--recoveries",
        default=",".join(RECOVERY_STRATEGIES),
        help=f"recovery strategies [{','.join(RECOVERY_STRATEGIES)}]",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=4,
        help="injections per (benchmark, bug model) pair, per cell [4]",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload input-size scale factor [1.0]",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="campaign master seed [1]"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per cell; results identical for any N [1]",
    )
    parser.add_argument(
        "--snapshot-interval",
        type=int,
        default=250,
        metavar="K",
        help="warm-start snapshot period in cycles; 0 disables [250]",
    )
    parser.add_argument(
        "--differential",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="differential suffix execution per cell (forecasted "
        "activation, convergence-terminated delta runs); bit-identical "
        "results, needs --snapshot-interval >= 1 and silently falls "
        "back to full suffixes otherwise [on]",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=8,
        metavar="N",
        dest="batch_size",
        help="tasks dispatched per backend round trip, grouped by "
        "(benchmark, inject window); 1 disables batching [8]",
    )
    parser.add_argument(
        "--benchmarks",
        default="crc32,qsort",
        help="comma-separated benchmark names, or 'all' [crc32,qsort]",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        dest="checkpoint_dir",
        help="write one JSONL checkpoint per cell under this directory "
        "(sweep-w<width>-<discipline>-<recovery>.jsonl)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume cells whose checkpoint file already exists in "
        "--checkpoint-dir, skipping their completed injections",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_core.json",
        metavar="PATH",
        dest="bench_output",
        help="performance-trajectory file to append per-cell entries to "
        "[BENCH_core.json]",
    )
    parser.add_argument(
        "--no-bench",
        action="store_true",
        dest="no_bench",
        help="skip appending to the performance trajectory",
    )
    add_fault_args(parser)
    return parser.parse_args(argv)


def cell_checkpoint_path(
    directory: str, width: int, discipline: str, recovery: str
) -> str:
    """Canonical per-cell checkpoint filename under ``directory``."""
    return os.path.join(
        directory, f"sweep-w{width}-{discipline}-{recovery}.jsonl"
    )


def _cell_row(
    width: int, discipline: str, recovery: str, campaign, wall_s: float
) -> Dict[str, object]:
    coverage = campaign.coverage()
    latencies = campaign.detection_latencies("idld")
    outcomes: Dict[str, int] = {}
    for result in campaign.results:
        key = result.outcome.value
        outcomes[key] = outcomes.get(key, 0) + 1
    return {
        "width": width,
        "discipline": discipline,
        "recovery": recovery,
        "injections": len(campaign.results),
        "activated": sum(1 for r in campaign.results if r.activated),
        "quarantined": campaign.quarantined,
        "idld": coverage["idld"],
        "bv": coverage["bv"],
        "end_of_test": coverage["end_of_test"],
        "idld_latency_mean": (
            sum(latencies) / len(latencies) if latencies else None
        ),
        "outcomes": outcomes,
        "wall_s": wall_s,
    }


def format_sweep_table(rows: List[Dict[str, object]]) -> List[str]:
    """Render the per-cell summary, one line per design point."""
    lines = [
        "Design-space sweep -- per-cell detection coverage and latency",
        f"{'W':>2} {'FL':>5} {'recovery':>15} {'inj':>4} {'act':>4} "
        f"{'IDLD':>6} {'BV':>6} {'EoT':>6} {'lat':>7}  outcomes",
    ]
    for row in rows:
        latency = row["idld_latency_mean"]
        latency_s = f"{latency:7.1f}" if latency is not None else f"{'-':>7}"
        outcome_s = " ".join(
            f"{name}:{count}"
            for name, count in sorted(row["outcomes"].items())
        )
        quarantined = (
            f" [{row['quarantined']} quarantined]"
            if row["quarantined"]
            else ""
        )
        lines.append(
            f"{row['width']:>2} {row['discipline']:>5} "
            f"{row['recovery']:>15} {row['injections']:>4} "
            f"{row['activated']:>4} {row['idld']:6.1%} {row['bv']:6.1%} "
            f"{row['end_of_test']:6.1%} {latency_s}  {outcome_s}"
            f"{quarantined}"
        )
    return lines


def sweep_main(argv: Optional[List[str]] = None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    try:
        widths = [
            int(v) for v in args.widths.split(",") if v.strip()
        ]
        disciplines = _parse_csv(
            args.disciplines, FREE_LIST_DISCIPLINES, "--disciplines"
        )
        recoveries = _parse_csv(
            args.recoveries, RECOVERY_STRATEGIES, "--recoveries"
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not widths or any(w < 1 for w in widths):
        print(f"--widths must be positive integers, got {args.widths!r}",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.batch_size < 1:
        print(f"--batch-size must be >= 1, got {args.batch_size}",
              file=sys.stderr)
        return 2
    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.benchmarks == "all":
        names = list(WORKLOADS)
    else:
        names = [n.strip() for n in args.benchmarks.split(",")]
        unknown = [n for n in names if n not in WORKLOADS]
        if unknown:
            print(f"unknown benchmarks: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    programs = {name: WORKLOADS[name](scale=args.scale) for name in names}

    from repro.exec.backends import ProcessPoolBackend, SerialBackend
    from repro.exec.checkpoint import CheckpointError
    from repro.exec.engine import run_engine
    from repro.exec.resilience import FaultToleranceError

    try:
        policy = policy_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.checkpoint_dir:
        os.makedirs(args.checkpoint_dir, exist_ok=True)

    cells = [
        (width, discipline, recovery)
        for width in widths
        for discipline in disciplines
        for recovery in recoveries
    ]
    rows: List[Dict[str, object]] = []
    quarantined_cells = []
    started_all = time.time()
    for number, (width, discipline, recovery) in enumerate(cells, 1):
        config = paper_rrs_config(
            width=width,
            free_list_discipline=discipline,
            recovery_strategy=recovery,
        )
        checkpoint_path = None
        resume = False
        if args.checkpoint_dir:
            checkpoint_path = cell_checkpoint_path(
                args.checkpoint_dir, width, discipline, recovery
            )
            resume = args.resume and os.path.exists(checkpoint_path)
        # Each cell gets a fresh backend: worker processes cache per-config
        # golden runs, and a pool must never serve two design points.
        backend = (
            ProcessPoolBackend(args.jobs, policy=policy)
            if args.jobs > 1
            else SerialBackend(policy=policy)
        )
        print(
            f"[{number}/{len(cells)}] width={width} discipline={discipline} "
            f"recovery={recovery} (design point {config.digest()})",
            file=sys.stderr,
        )
        started = time.time()
        try:
            campaign = run_engine(
                programs,
                runs_per_model=args.runs,
                seed=args.seed,
                config=config,
                backend=backend,
                checkpoint_path=checkpoint_path,
                resume=resume,
                snapshot_interval=args.snapshot_interval,
                checkpoint_fsync=args.checkpoint_fsync,
                differential=args.differential
                and args.snapshot_interval > 0,
                batch_size=args.batch_size,
            )
        except (CheckpointError, OSError) as exc:
            print(f"checkpoint error: {exc}", file=sys.stderr)
            return 2
        except FaultToleranceError as exc:
            print(f"fault tolerance: {exc}", file=sys.stderr)
            return 2
        wall_s = time.time() - started
        row = _cell_row(width, discipline, recovery, campaign, wall_s)
        row["design_point_digest"] = config.digest()
        rows.append(row)
        if campaign.quarantined:
            quarantined_cells.append((width, discipline, recovery))
            print_quarantine(campaign.failures)
        if not args.no_bench:
            append_entry(
                args.bench_output,
                {
                    "timestamp": time.strftime(
                        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                    ),
                    "kind": "sweep-cell",
                    "design_point": config.to_dict(),
                    "design_point_digest": config.digest(),
                    "seed": args.seed,
                    "scale": args.scale,
                    "runs_per_model": args.runs,
                    "benchmarks": names,
                    "cell": row,
                },
            )

    print("\n".join(format_sweep_table(rows)))
    print()
    # The RTL cost model depends only on width, so one Table II block
    # covers every (discipline, recovery) cell at that width.
    print("\n".join(format_table_ii([evaluate_width(w) for w in widths])))
    elapsed = time.time() - started_all
    total = sum(row["injections"] for row in rows)
    print(
        f"\nsweep: {len(rows)} design points, {total} injections in "
        f"{elapsed:.1f}s (jobs={args.jobs})",
        file=sys.stderr,
    )
    return 1 if quarantined_cells else 0


if __name__ == "__main__":
    sys.exit(sweep_main())
