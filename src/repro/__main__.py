"""``python -m repro`` — the umbrella CLI without installation."""

import sys

from repro.cli import repro_main

if __name__ == "__main__":
    sys.exit(repro_main())
