"""Pure functional semantics of the mini ISA.

The execute stage of the core calls :func:`execute_op` with already-read
operand values; keeping semantics side-effect free makes the pipeline model
easy to test and lets the golden (functional) reference interpreter share
the exact same arithmetic as the cycle-level core.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode, WORD_MASK, WORD_BITS


def to_signed(value: int) -> int:
    """Interpret a 64-bit word as a two's-complement signed integer."""
    value &= WORD_MASK
    if value >= 1 << (WORD_BITS - 1):
        return value - (1 << WORD_BITS)
    return value


def to_unsigned(value: int) -> int:
    """Clamp an arbitrary Python int to a 64-bit word."""
    return value & WORD_MASK


def _shift_amount(value: int) -> int:
    """Shift amounts use the low 6 bits, like RV64."""
    return value & (WORD_BITS - 1)


def execute_op(opcode: Opcode, a: int, b: int) -> int:
    """Compute the 64-bit result of an ALU operation.

    Args:
        opcode: Which operation; must be a value-producing ALU opcode
            (immediate forms receive the immediate in ``b``).
        a: First operand as an unsigned 64-bit word.
        b: Second operand (register value or immediate) as a word.

    Returns:
        The unsigned 64-bit result.

    Raises:
        ValueError: If ``opcode`` has no ALU semantics (e.g. branches).
    """
    a &= WORD_MASK
    b &= WORD_MASK
    if opcode in (Opcode.ADD, Opcode.ADDI):
        return (a + b) & WORD_MASK
    if opcode is Opcode.SUB:
        return (a - b) & WORD_MASK
    if opcode is Opcode.MUL:
        return (a * b) & WORD_MASK
    if opcode is Opcode.DIV:
        # Division by zero yields all-ones, mirroring RISC-V semantics; the
        # core must never raise on data values.
        if b == 0:
            return WORD_MASK
        return to_unsigned(int(to_signed(a) / to_signed(b)) if to_signed(b) != 0 else -1)
    if opcode is Opcode.REM:
        if b == 0:
            return a
        sa, sb = to_signed(a), to_signed(b)
        return to_unsigned(sa - int(sa / sb) * sb)
    if opcode in (Opcode.AND, Opcode.ANDI):
        return a & b
    if opcode in (Opcode.OR, Opcode.ORI):
        return a | b
    if opcode in (Opcode.XOR, Opcode.XORI):
        return a ^ b
    if opcode in (Opcode.SLL, Opcode.SLLI):
        return (a << _shift_amount(b)) & WORD_MASK
    if opcode in (Opcode.SRL, Opcode.SRLI):
        return a >> _shift_amount(b)
    if opcode is Opcode.SRA:
        return to_unsigned(to_signed(a) >> _shift_amount(b))
    if opcode in (Opcode.SLT, Opcode.SLTI):
        return 1 if to_signed(a) < to_signed(b) else 0
    if opcode is Opcode.SLTU:
        return 1 if a < b else 0
    if opcode is Opcode.LI:
        return b
    raise ValueError(f"{opcode.value} has no ALU semantics")


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's condition.

    Args:
        opcode: One of BEQ/BNE/BLT/BGE.
        a: First source value (unsigned word).
        b: Second source value (unsigned word).

    Returns:
        True when the branch is taken.

    Raises:
        ValueError: If ``opcode`` is not a conditional branch.
    """
    a &= WORD_MASK
    b &= WORD_MASK
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if opcode is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    raise ValueError(f"{opcode.value} is not a conditional branch")


def reference_run(program, max_steps: int = 10_000_000):
    """Architectural (non-pipelined) reference interpreter.

    Used by tests to validate that the cycle-level core commits the same
    architectural results, and by the workload suite to compute expected
    outputs.

    Args:
        program: A :class:`repro.isa.Program`.
        max_steps: Safety bound on executed instructions.

    Returns:
        Tuple of (output list, final register list, executed instruction
        count).

    Raises:
        RuntimeError: If the program does not halt within ``max_steps``.
    """
    regs = [0] * 32
    memory = dict(program.initial_memory)
    output = []
    pc = 0
    steps = 0
    instructions = program.instructions
    while 0 <= pc < len(instructions):
        steps += 1
        if steps > max_steps:
            raise RuntimeError(f"reference run exceeded {max_steps} steps")
        inst = instructions[pc]
        op = inst.opcode
        if inst.is_halt:
            break
        if op is Opcode.NOP:
            pc += 1
            continue
        if op is Opcode.OUT:
            output.append(regs[inst.rs1] & WORD_MASK)
            pc += 1
            continue
        if op is Opcode.JMP:
            pc = inst.target
            continue
        if inst.is_branch:
            if branch_taken(op, regs[inst.rs1], regs[inst.rs2]):
                pc = inst.target
            else:
                pc += 1
            continue
        if op is Opcode.LD:
            addr = (regs[inst.rs1] + inst.imm) & WORD_MASK
            regs[inst.rd] = memory.get(addr, 0)
            pc += 1
            continue
        if op is Opcode.ST:
            addr = (regs[inst.rs1] + inst.imm) & WORD_MASK
            memory[addr] = regs[inst.rs2] & WORD_MASK
            pc += 1
            continue
        # Plain ALU.
        if inst.uses_immediate:
            b = inst.imm & WORD_MASK
            a = regs[inst.rs1] if inst.rs1 is not None else 0
        else:
            a = regs[inst.rs1]
            b = regs[inst.rs2]
        regs[inst.rd] = execute_op(op, a, b)
        pc += 1
    return output, regs, steps
