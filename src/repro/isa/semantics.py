"""Pure functional semantics of the mini ISA.

The execute stage of the core calls :func:`execute_op` with already-read
operand values; keeping semantics side-effect free makes the pipeline model
easy to test and lets the golden (functional) reference interpreter share
the exact same arithmetic as the cycle-level core.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Opcode, WORD_MASK, WORD_BITS


def to_signed(value: int) -> int:
    """Interpret a 64-bit word as a two's-complement signed integer."""
    value &= WORD_MASK
    if value >= 1 << (WORD_BITS - 1):
        return value - (1 << WORD_BITS)
    return value


def to_unsigned(value: int) -> int:
    """Clamp an arbitrary Python int to a 64-bit word."""
    return value & WORD_MASK


def _shift_amount(value: int) -> int:
    """Shift amounts use the low 6 bits, like RV64."""
    return value & (WORD_BITS - 1)


def _div(a: int, b: int) -> int:
    # Division by zero yields all-ones, mirroring RISC-V semantics; the
    # core must never raise on data values.
    if b == 0:
        return WORD_MASK
    return to_unsigned(int(to_signed(a) / to_signed(b)) if to_signed(b) != 0 else -1)


def _rem(a: int, b: int) -> int:
    if b == 0:
        return a
    sa, sb = to_signed(a), to_signed(b)
    return to_unsigned(sa - int(sa / sb) * sb)


def _sra(a: int, b: int) -> int:
    return to_unsigned(to_signed(a) >> _shift_amount(b))


#: Opcode -> (masked a, masked b) -> result. A single dict probe replaces
#: the former if/elif chain, whose per-call cost grew with opcode position;
#: execute_op runs once per ALU uop in the cycle-level core *and* once per
#: architectural step of the golden reference interpreter.
_ALU_FNS = {
    Opcode.ADD: lambda a, b: (a + b) & WORD_MASK,
    Opcode.ADDI: lambda a, b: (a + b) & WORD_MASK,
    Opcode.SUB: lambda a, b: (a - b) & WORD_MASK,
    Opcode.MUL: lambda a, b: (a * b) & WORD_MASK,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
    Opcode.AND: lambda a, b: a & b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: (a << _shift_amount(b)) & WORD_MASK,
    Opcode.SLLI: lambda a, b: (a << _shift_amount(b)) & WORD_MASK,
    Opcode.SRL: lambda a, b: a >> _shift_amount(b),
    Opcode.SRLI: lambda a, b: a >> _shift_amount(b),
    Opcode.SRA: _sra,
    Opcode.SLT: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.SLTI: lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.SLTU: lambda a, b: 1 if a < b else 0,
    Opcode.LI: lambda a, b: b,
}


def execute_op(opcode: Opcode, a: int, b: int) -> int:
    """Compute the 64-bit result of an ALU operation.

    Args:
        opcode: Which operation; must be a value-producing ALU opcode
            (immediate forms receive the immediate in ``b``).
        a: First operand as an unsigned 64-bit word.
        b: Second operand (register value or immediate) as a word.

    Returns:
        The unsigned 64-bit result.

    Raises:
        ValueError: If ``opcode`` has no ALU semantics (e.g. branches).
    """
    fn = _ALU_FNS.get(opcode)
    if fn is None:
        raise ValueError(f"{opcode.value} has no ALU semantics")
    return fn(a & WORD_MASK, b & WORD_MASK)


_BRANCH_FNS = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: to_signed(a) < to_signed(b),
    Opcode.BGE: lambda a, b: to_signed(a) >= to_signed(b),
}


def branch_taken(opcode: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch's condition.

    Args:
        opcode: One of BEQ/BNE/BLT/BGE.
        a: First source value (unsigned word).
        b: Second source value (unsigned word).

    Returns:
        True when the branch is taken.

    Raises:
        ValueError: If ``opcode`` is not a conditional branch.
    """
    fn = _BRANCH_FNS.get(opcode)
    if fn is None:
        raise ValueError(f"{opcode.value} is not a conditional branch")
    return fn(a & WORD_MASK, b & WORD_MASK)


def reference_run(program, max_steps: int = 10_000_000):
    """Architectural (non-pipelined) reference interpreter.

    Used by tests to validate that the cycle-level core commits the same
    architectural results, and by the workload suite to compute expected
    outputs.

    Args:
        program: A :class:`repro.isa.Program`.
        max_steps: Safety bound on executed instructions.

    Returns:
        Tuple of (output list, final register list, executed instruction
        count).

    Raises:
        RuntimeError: If the program does not halt within ``max_steps``.
    """
    regs = [0] * 32
    memory = dict(program.initial_memory)
    output = []
    pc = 0
    steps = 0
    instructions = program.instructions
    while 0 <= pc < len(instructions):
        steps += 1
        if steps > max_steps:
            raise RuntimeError(f"reference run exceeded {max_steps} steps")
        inst = instructions[pc]
        op = inst.opcode
        if inst.is_halt:
            break
        if op is Opcode.NOP:
            pc += 1
            continue
        if op is Opcode.OUT:
            output.append(regs[inst.rs1] & WORD_MASK)
            pc += 1
            continue
        if op is Opcode.JMP:
            pc = inst.target
            continue
        if inst.is_branch:
            if branch_taken(op, regs[inst.rs1], regs[inst.rs2]):
                pc = inst.target
            else:
                pc += 1
            continue
        if op is Opcode.LD:
            addr = (regs[inst.rs1] + inst.imm) & WORD_MASK
            regs[inst.rd] = memory.get(addr, 0)
            pc += 1
            continue
        if op is Opcode.ST:
            addr = (regs[inst.rs1] + inst.imm) & WORD_MASK
            memory[addr] = regs[inst.rs2] & WORD_MASK
            pc += 1
            continue
        # Plain ALU.
        if inst.uses_immediate:
            b = inst.imm & WORD_MASK
            a = regs[inst.rs1] if inst.rs1 is not None else 0
        else:
            a = regs[inst.rs1]
            b = regs[inst.rs2]
        regs[inst.rd] = execute_op(op, a, b)
        pc += 1
    return output, regs, steps
