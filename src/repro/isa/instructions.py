"""Instruction definitions for the mini ISA.

The ISA is deliberately small but spans the behaviours that matter to the
register renaming subsystem (RRS):

* value-producing ALU/immediate/load instructions (rename a destination),
* stores and OUT (read sources, no destination -> no Pdst allocation),
* conditional branches (speculation, wrong-path rename, flush recovery),
* HALT (end of program).

Registers are ``r0`` .. ``r31``; all 32 are general purpose and renamable.
Words are 64-bit two's-complement values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Number of architectural (logical) registers the RAT maps.
NUM_LOGICAL_REGS = 32

#: All arithmetic is performed modulo 2**64.
WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1


class Opcode(enum.Enum):
    """Every instruction understood by the core."""

    # Register-register ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLTU = "sltu"
    # Register-immediate ALU.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SLTI = "slti"
    LI = "li"
    # Memory.
    LD = "ld"
    ST = "st"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    # Miscellaneous.
    OUT = "out"
    NOP = "nop"
    HALT = "halt"


#: Opcodes that redirect control flow conditionally.
BRANCH_OPCODES = frozenset(
    {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
)

#: Opcodes that access data memory.
MEMORY_OPCODES = frozenset({Opcode.LD, Opcode.ST})

#: Opcodes that produce a register value and therefore require a Pdst.
_DEST_OPCODES = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.REM,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SLL,
        Opcode.SRL,
        Opcode.SRA,
        Opcode.SLT,
        Opcode.SLTU,
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SLTI,
        Opcode.LI,
        Opcode.LD,
    }
)

#: Opcodes whose second operand is an immediate rather than a register.
_IMMEDIATE_OPCODES = frozenset(
    {
        Opcode.ADDI,
        Opcode.ANDI,
        Opcode.ORI,
        Opcode.XORI,
        Opcode.SLLI,
        Opcode.SRLI,
        Opcode.SLTI,
        Opcode.LI,
        Opcode.LD,
        Opcode.ST,
    }
)


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        opcode: The operation.
        rd: Logical destination register, or ``None`` for instructions that
            do not write a register (stores, branches, OUT, NOP, HALT, JMP).
        rs1: First logical source register, or ``None``.
        rs2: Second logical source register, or ``None``.
        imm: Immediate operand (sign interpreted per opcode), or ``None``.
        target: Branch/jump target expressed as an instruction index into
            the program, or ``None`` for non-control-flow instructions.
        label: Optional source-level label for diagnostics.
    """

    opcode: Opcode
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None
    label: str = field(default="", compare=False)

    # Derived predicates, computed once at construction. Instructions are
    # immutable program data consulted by every pipeline stage every cycle,
    # so these are plain attributes rather than properties: the per-access
    # frozenset/enum hashing showed up as a top simulator cost. They are
    # intentionally not dataclass fields — equality and repr stay defined
    # by the operands alone.
    writes_register: bool = field(init=False, repr=False, compare=False)
    is_branch: bool = field(init=False, repr=False, compare=False)
    is_jump: bool = field(init=False, repr=False, compare=False)
    is_control_flow: bool = field(init=False, repr=False, compare=False)
    is_memory: bool = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)
    is_load: bool = field(init=False, repr=False, compare=False)
    is_halt: bool = field(init=False, repr=False, compare=False)
    uses_immediate: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        opcode = self.opcode
        set_attr = object.__setattr__
        set_attr(self, "writes_register", opcode in _DEST_OPCODES)
        set_attr(self, "is_branch", opcode in BRANCH_OPCODES)
        set_attr(self, "is_jump", opcode is Opcode.JMP)
        set_attr(
            self, "is_control_flow", self.is_branch or self.is_jump
        )
        set_attr(self, "is_memory", opcode in MEMORY_OPCODES)
        set_attr(self, "is_store", opcode is Opcode.ST)
        set_attr(self, "is_load", opcode is Opcode.LD)
        set_attr(self, "is_halt", opcode is Opcode.HALT)
        set_attr(self, "uses_immediate", opcode in _IMMEDIATE_OPCODES)
        for name in ("rd", "rs1", "rs2"):
            reg = getattr(self, name)
            if reg is not None and not 0 <= reg < NUM_LOGICAL_REGS:
                raise ValueError(
                    f"{name}={reg} out of range for {self.opcode.value}"
                )
        if self.writes_register and self.rd is None:
            raise ValueError(f"{self.opcode.value} requires a destination")

    def source_registers(self) -> Tuple[int, ...]:
        """Logical source registers read by this instruction, in order."""
        sources = []
        if self.rs1 is not None:
            sources.append(self.rs1)
        if self.rs2 is not None:
            sources.append(self.rs2)
        return tuple(sources)

    def __str__(self) -> str:  # pragma: no cover - diagnostics only
        parts = [self.opcode.value]
        if self.rd is not None:
            parts.append(f"r{self.rd}")
        if self.rs1 is not None:
            parts.append(f"r{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"r{self.rs2}")
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            parts.append(f"@{self.target}")
        return " ".join(parts)
