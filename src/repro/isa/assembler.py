"""Two-pass text assembler for the mini ISA.

Syntax (one statement per line, ``;`` or ``#`` begin comments)::

    .name   crc32            ; program name
    .data   100  1 2 3 4     ; words 1 2 3 4 at addresses 100..103
    loop:                    ; label
        addi r1, r1, 1
        blt  r1, r2, loop
        out  r1
        halt

Register operands are ``rN``; immediates are decimal or 0x-hex; branch and
jump targets are labels.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

_REGISTER_RE = re.compile(r"^r(\d+)$", re.IGNORECASE)
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")

#: opcode -> operand signature. ``d``=dest reg, ``s``=src reg, ``i``=imm,
#: ``l``=label. Signature order matches assembly operand order.
_SIGNATURES: Dict[Opcode, str] = {
    Opcode.ADD: "dss",
    Opcode.SUB: "dss",
    Opcode.MUL: "dss",
    Opcode.DIV: "dss",
    Opcode.REM: "dss",
    Opcode.AND: "dss",
    Opcode.OR: "dss",
    Opcode.XOR: "dss",
    Opcode.SLL: "dss",
    Opcode.SRL: "dss",
    Opcode.SRA: "dss",
    Opcode.SLT: "dss",
    Opcode.SLTU: "dss",
    Opcode.ADDI: "dsi",
    Opcode.ANDI: "dsi",
    Opcode.ORI: "dsi",
    Opcode.XORI: "dsi",
    Opcode.SLLI: "dsi",
    Opcode.SRLI: "dsi",
    Opcode.SLTI: "dsi",
    Opcode.LI: "di",
    Opcode.LD: "dsi",
    Opcode.ST: "ssi",
    Opcode.BEQ: "ssl",
    Opcode.BNE: "ssl",
    Opcode.BLT: "ssl",
    Opcode.BGE: "ssl",
    Opcode.JMP: "l",
    Opcode.OUT: "s",
    Opcode.NOP: "",
    Opcode.HALT: "",
}

_MNEMONICS = {op.value: op for op in Opcode}


class AssemblerError(ValueError):
    """Raised on any malformed assembly input, with line context."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(line_no, f"invalid integer {token!r}") from None


def _parse_register(token: str, line_no: int) -> int:
    match = _REGISTER_RE.match(token)
    if not match:
        raise AssemblerError(line_no, f"expected register, got {token!r}")
    return int(match.group(1))


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(text: str, name: Optional[str] = None) -> Program:
    """Assemble source text into a :class:`Program`.

    Args:
        text: The assembly source.
        name: Optional program name; overrides any ``.name`` directive.

    Returns:
        The assembled program with labels resolved to instruction indices.

    Raises:
        AssemblerError: On syntax errors, unknown mnemonics, bad operand
            counts/kinds, or unresolved labels.
    """
    labels: Dict[str, int] = {}
    memory: Dict[int, int] = {}
    pending: List[Tuple[int, Opcode, List[str]]] = []
    program_name = name or "program"

    # Pass 1: collect labels, directives and raw statements.
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        if line.startswith(".name"):
            directive_name = line[len(".name"):].strip()
            if not directive_name:
                raise AssemblerError(line_no, ".name requires a value")
            if name is None:
                program_name = directive_name
            continue
        if line.startswith(".data"):
            tokens = line[len(".data"):].split()
            if len(tokens) < 2:
                raise AssemblerError(line_no, ".data requires addr + values")
            base = _parse_int(tokens[0], line_no)
            for offset, token in enumerate(tokens[1:]):
                memory[base + offset] = _parse_int(token, line_no)
            continue
        # Leading label(s) on the same line as an instruction.
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblerError(line_no, f"duplicate label {label!r}")
            labels[label] = len(pending)
            line = match.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in _MNEMONICS:
            raise AssemblerError(line_no, f"unknown mnemonic {mnemonic!r}")
        operands = _split_operands(parts[1] if len(parts) > 1 else "")
        pending.append((line_no, _MNEMONICS[mnemonic], operands))

    # Pass 2: resolve operands and labels.
    instructions: List[Instruction] = []
    for line_no, opcode, operands in pending:
        signature = _SIGNATURES[opcode]
        if len(operands) != len(signature):
            raise AssemblerError(
                line_no,
                f"{opcode.value} expects {len(signature)} operands, "
                f"got {len(operands)}",
            )
        rd = rs1 = rs2 = imm = target = None
        label_name = ""
        sources_seen = 0
        for kind, token in zip(signature, operands):
            if kind == "d":
                rd = _parse_register(token, line_no)
            elif kind == "s":
                reg = _parse_register(token, line_no)
                if sources_seen == 0:
                    rs1 = reg
                else:
                    rs2 = reg
                sources_seen += 1
            elif kind == "i":
                imm = _parse_int(token, line_no)
            elif kind == "l":
                if token not in labels:
                    raise AssemblerError(
                        line_no, f"undefined label {token!r}"
                    )
                target = labels[token]
                label_name = token
        try:
            instructions.append(
                Instruction(
                    opcode,
                    rd=rd,
                    rs1=rs1,
                    rs2=rs2,
                    imm=imm,
                    target=target,
                    label=label_name,
                )
            )
        except ValueError as exc:
            raise AssemblerError(line_no, str(exc)) from exc

    return Program(
        instructions,
        initial_memory=memory,
        name=program_name,
        labels=labels,
    )
