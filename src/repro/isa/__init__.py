"""Mini RISC ISA used by the cycle-level out-of-order core.

The paper evaluates on gem5/x86-64; this repo substitutes a compact
register-to-register ISA that is sufficient to express the MiBench-analog
workloads (see :mod:`repro.workloads`) while keeping the rename-relevant
structure identical: every value-producing instruction names one logical
destination register that must be renamed, loads/stores access a flat
word-addressed memory, and conditional branches create the speculation the
register renaming subsystem has to recover from.

Public API
----------
``Opcode``            -- enumeration of all instructions.
``Instruction``       -- a decoded instruction (immutable).
``Program``           -- instructions + initial memory image + metadata.
``assemble``          -- two-pass assembler from text to :class:`Program`.
``ProgramBuilder``    -- programmatic construction of :class:`Program`.
``execute_op``        -- pure functional semantics of one ALU operation.
"""

from repro.isa.instructions import (
    Instruction,
    Opcode,
    BRANCH_OPCODES,
    MEMORY_OPCODES,
    NUM_LOGICAL_REGS,
    WORD_MASK,
)
from repro.isa.program import Program, ProgramBuilder
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.semantics import execute_op, to_signed

__all__ = [
    "AssemblerError",
    "BRANCH_OPCODES",
    "Instruction",
    "MEMORY_OPCODES",
    "NUM_LOGICAL_REGS",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "WORD_MASK",
    "assemble",
    "execute_op",
    "to_signed",
]
