"""Program container and programmatic builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import Instruction, Opcode, WORD_MASK


@dataclass
class Program:
    """An assembled program: code, initial memory image, and metadata.

    Attributes:
        instructions: The instruction sequence; branch targets are indices
            into this list.
        initial_memory: Sparse word-addressed initial data image.
        name: Human-readable program name (used in reports).
        labels: Map of source label -> instruction index.
    """

    instructions: List[Instruction]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    name: str = "program"
    labels: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.instructions)
        for i, inst in enumerate(self.instructions):
            if inst.is_control_flow:
                if inst.target is None or not 0 <= inst.target < n:
                    raise ValueError(
                        f"{self.name}: instruction {i} ({inst}) has invalid "
                        f"target {inst.target}"
                    )
        for addr, value in self.initial_memory.items():
            if addr < 0:
                raise ValueError(f"{self.name}: negative data address {addr}")
            self.initial_memory[addr] = value & WORD_MASK

    def __len__(self) -> int:
        return len(self.instructions)

    def static_branch_count(self) -> int:
        """Number of static conditional branches (diversity metric)."""
        return sum(1 for inst in self.instructions if inst.is_branch)

    def static_store_count(self) -> int:
        """Number of static store instructions."""
        return sum(1 for inst in self.instructions if inst.is_store)


class ProgramBuilder:
    """Incrementally build a :class:`Program` from Python.

    Example::

        b = ProgramBuilder("count")
        b.li(1, 0)
        b.label("loop")
        b.addi(1, 1, 1)
        b.li(2, 10)
        b.blt(1, 2, "loop")
        b.out(1)
        b.halt()
        program = b.build()
    """

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: List[Tuple] = []
        self._labels: Dict[str, int] = {}
        self._memory: Dict[int, int] = {}

    # -- structural helpers -------------------------------------------------

    def label(self, name: str) -> "ProgramBuilder":
        """Attach a label to the next emitted instruction."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def data(self, addr: int, values: Sequence[int]) -> "ProgramBuilder":
        """Place ``values`` at consecutive word addresses starting at addr."""
        for offset, value in enumerate(values):
            self._memory[addr + offset] = value & WORD_MASK
        return self

    def _emit(
        self,
        opcode: Opcode,
        rd: Optional[int] = None,
        rs1: Optional[int] = None,
        rs2: Optional[int] = None,
        imm: Optional[int] = None,
        target_label: Optional[str] = None,
    ) -> "ProgramBuilder":
        self._instructions.append((opcode, rd, rs1, rs2, imm, target_label))
        return self

    # -- ALU -----------------------------------------------------------------

    def add(self, rd, rs1, rs2):
        return self._emit(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        return self._emit(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        return self._emit(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd, rs1, rs2):
        return self._emit(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd, rs1, rs2):
        return self._emit(Opcode.REM, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        return self._emit(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        return self._emit(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        return self._emit(Opcode.XOR, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        return self._emit(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        return self._emit(Opcode.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        return self._emit(Opcode.SRA, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        return self._emit(Opcode.SLT, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        return self._emit(Opcode.SLTU, rd, rs1, rs2)

    # -- immediates -----------------------------------------------------------

    def addi(self, rd, rs1, imm):
        return self._emit(Opcode.ADDI, rd, rs1, imm=imm)

    def andi(self, rd, rs1, imm):
        return self._emit(Opcode.ANDI, rd, rs1, imm=imm)

    def ori(self, rd, rs1, imm):
        return self._emit(Opcode.ORI, rd, rs1, imm=imm)

    def xori(self, rd, rs1, imm):
        return self._emit(Opcode.XORI, rd, rs1, imm=imm)

    def slli(self, rd, rs1, imm):
        return self._emit(Opcode.SLLI, rd, rs1, imm=imm)

    def srli(self, rd, rs1, imm):
        return self._emit(Opcode.SRLI, rd, rs1, imm=imm)

    def slti(self, rd, rs1, imm):
        return self._emit(Opcode.SLTI, rd, rs1, imm=imm)

    def li(self, rd, imm):
        return self._emit(Opcode.LI, rd, imm=imm)

    # -- memory ----------------------------------------------------------------

    def ld(self, rd, rs1, imm=0):
        return self._emit(Opcode.LD, rd, rs1, imm=imm)

    def st(self, rs1, rs2, imm=0):
        """Store rs2 to mem[rs1 + imm]."""
        return self._emit(Opcode.ST, rs1=rs1, rs2=rs2, imm=imm)

    # -- control flow ------------------------------------------------------------

    def beq(self, rs1, rs2, label):
        return self._emit(Opcode.BEQ, rs1=rs1, rs2=rs2, target_label=label)

    def bne(self, rs1, rs2, label):
        return self._emit(Opcode.BNE, rs1=rs1, rs2=rs2, target_label=label)

    def blt(self, rs1, rs2, label):
        return self._emit(Opcode.BLT, rs1=rs1, rs2=rs2, target_label=label)

    def bge(self, rs1, rs2, label):
        return self._emit(Opcode.BGE, rs1=rs1, rs2=rs2, target_label=label)

    def jmp(self, label):
        return self._emit(Opcode.JMP, target_label=label)

    # -- misc -------------------------------------------------------------------

    def out(self, rs1):
        return self._emit(Opcode.OUT, rs1=rs1)

    def nop(self):
        return self._emit(Opcode.NOP)

    def halt(self):
        return self._emit(Opcode.HALT)

    # -- finalization -------------------------------------------------------------

    def build(self) -> Program:
        """Resolve labels and produce the immutable :class:`Program`.

        Raises:
            ValueError: For unresolved labels or labels past end of code.
        """
        instructions = []
        for opcode, rd, rs1, rs2, imm, target_label in self._instructions:
            target = None
            if target_label is not None:
                if target_label not in self._labels:
                    raise ValueError(
                        f"{self.name}: undefined label {target_label!r}"
                    )
                target = self._labels[target_label]
            instructions.append(
                Instruction(
                    opcode,
                    rd=rd,
                    rs1=rs1,
                    rs2=rs2,
                    imm=imm,
                    target=target,
                    label=target_label or "",
                )
            )
        return Program(
            instructions,
            initial_memory=dict(self._memory),
            name=self.name,
            labels=dict(self._labels),
        )
