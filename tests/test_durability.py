"""Artifact-integrity scenarios: checkpoint format v2, verify/repair/merge,
single-writer locking and graceful shutdown.

The checker mindset applied to our own persistence layer: every scenario
damages (or contends for) a real checkpoint produced by a real small
campaign and asserts the durability contract — corruption is reported with
line numbers, repair + resume reproduces the uninterrupted run bit for
bit, v1 files keep resuming, and a second writer never interleaves.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.bugs.models import PRIMARY_MODELS
from repro.exec.backends import SerialBackend
from repro.exec.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint_full,
    manifest_for,
    result_to_dict,
)
from repro.exec.cli import checkpoint_main
from repro.exec.durability import (
    CheckpointLock,
    CheckpointLockedError,
    GracefulShutdown,
    SHUTDOWN_EXIT_CODE,
    atomic_write_text,
    crc_of,
    lock_path_for,
    scan_checkpoint,
    seal_record,
    truncate_torn_tail,
)
from repro.exec.engine import run_engine
from repro.exec.tasks import generate_tasks
from repro.workloads import WORKLOADS

RUNS = 2  # 2 runs x 3 models x 1 benchmark = 6 tasks
SEED = 7


@pytest.fixture(scope="module")
def tiny_suite():
    return {"bitcount": WORKLOADS["bitcount"](scale=0.25)}


@pytest.fixture(scope="module")
def tiny_tasks(tiny_suite):
    return generate_tasks(list(tiny_suite), RUNS, list(PRIMARY_MODELS), SEED, 6)


@pytest.fixture(scope="module")
def checkpointed(tiny_suite, tmp_path_factory):
    """One finished campaign plus the v2 checkpoint it wrote (read-only:
    tests copy it before damaging it)."""
    path = tmp_path_factory.mktemp("durability") / "clean.jsonl"
    campaign = run_engine(
        tiny_suite,
        RUNS,
        seed=SEED,
        backend=SerialBackend(),
        checkpoint_path=str(path),
    )
    return str(path), campaign


def _comparable(result):
    record = result_to_dict(result)
    record.pop("sim_wall_ns")  # a measurement, not a simulation outcome
    return record


def _copy(src: str, dst) -> str:
    with open(src) as handle:
        text = handle.read()
    dst = str(dst)
    with open(dst, "w") as handle:
        handle.write(text)
    return dst


def _lines(path: str):
    with open(path) as handle:
        return handle.read().splitlines()


# -- format v2: sealing --------------------------------------------------------


def test_every_record_is_crc_sealed_and_manifest_carries_identity(checkpointed):
    path, _ = checkpointed
    lines = _lines(path)
    assert len(lines) == 1 + RUNS * len(PRIMARY_MODELS)
    for line in lines:
        record = json.loads(line)
        assert record["crc"] == crc_of(record)
    manifest = json.loads(lines[0])
    assert manifest["version"] == 2
    assert "identity" in manifest


def test_scan_is_clean_on_an_untouched_checkpoint(checkpointed):
    path, _ = checkpointed
    report = scan_checkpoint(path)
    assert report.clean
    assert report.records == RUNS * len(PRIMARY_MODELS)
    assert report.sealed == report.records + 1  # + the manifest


# -- v1 backward compatibility -------------------------------------------------


def _downgrade_to_v1(path: str) -> None:
    """Rewrite a v2 checkpoint as the v1 format: no CRCs, no identity."""
    lines = []
    for line in _lines(path):
        record = json.loads(line)
        record.pop("crc", None)
        record.pop("identity", None)
        if record.get("type") == "manifest":
            record["version"] = 1
        lines.append(json.dumps(record, sort_keys=True))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


def test_v1_checkpoint_still_loads(checkpointed, tmp_path):
    path, campaign = checkpointed
    v1 = _copy(path, tmp_path / "v1.jsonl")
    _downgrade_to_v1(v1)
    manifest, done, failures = load_checkpoint_full(v1)
    assert len(done) == len(campaign.results) and not failures
    report = scan_checkpoint(v1)
    assert report.clean and report.sealed == 0


def test_v1_checkpoint_resumes_under_the_v2_writer(
    checkpointed, tiny_suite, tiny_tasks, tmp_path
):
    path, campaign = checkpointed
    v1 = _copy(path, tmp_path / "v1partial.jsonl")
    _downgrade_to_v1(v1)
    head = _lines(v1)[:3]  # keep manifest + first 2 records only
    with open(v1, "w") as handle:
        handle.write("\n".join(head) + "\n")
    resumed = run_engine(
        tiny_suite,
        RUNS,
        seed=SEED,
        backend=SerialBackend(),
        checkpoint_path=v1,
        resume=True,
    )
    assert [_comparable(r) for r in resumed.results] == [
        _comparable(r) for r in campaign.results
    ]
    # The grown file mixes unsealed v1 lines with sealed v2 appends and
    # must still load and scan clean.
    _, done, _ = load_checkpoint_full(v1)
    assert len(done) == len(tiny_tasks)
    assert scan_checkpoint(v1).clean


# -- corruption detection ------------------------------------------------------


def test_interior_corruption_raises_with_line_number(checkpointed, tmp_path):
    path, _ = checkpointed
    bad = _copy(path, tmp_path / "bad.jsonl")
    lines = _lines(bad)
    record = json.loads(lines[2])  # line 3: an interior result record
    record["result"]["outcome"] = "tampered"  # CRC now stale
    lines[2] = json.dumps(record, sort_keys=True)
    with open(bad, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match=r":3: .*CRC mismatch"):
        load_checkpoint_full(bad)
    report = scan_checkpoint(bad)
    assert not report.torn_tail
    assert [(i.lineno, i.reason) for i in report.issues] == [
        (3, "CRC mismatch")
    ]


def test_unparsable_interior_line_raises_but_torn_tail_is_tolerated(
    checkpointed, tmp_path
):
    path, campaign = checkpointed
    torn = _copy(path, tmp_path / "torn.jsonl")
    with open(torn, "a") as handle:
        handle.write('{"type": "result", "ind')  # killed mid-append
    _, done, _ = load_checkpoint_full(torn)
    assert len(done) == len(campaign.results)
    report = scan_checkpoint(torn)
    assert report.torn_tail and not report.interior_issues

    interior = _copy(path, tmp_path / "interior.jsonl")
    lines = _lines(interior)
    lines[3] = lines[3][: len(lines[3]) // 2]
    with open(interior, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match=r":4: "):
        load_checkpoint_full(interior)


def test_truncate_torn_tail_drops_only_the_partial_line(checkpointed, tmp_path):
    path, _ = checkpointed
    torn = _copy(path, tmp_path / "trunc.jsonl")
    intact = _lines(torn)
    with open(torn, "a") as handle:
        handle.write('{"half')
    truncate_torn_tail(torn)
    assert _lines(torn) == intact
    truncate_torn_tail(torn)  # idempotent on a clean file
    assert _lines(torn) == intact


def test_edited_manifest_is_rejected_by_identity_hash(checkpointed, tmp_path):
    path, _ = checkpointed
    edited = _copy(path, tmp_path / "edited.jsonl")
    lines = _lines(edited)
    manifest = json.loads(lines[0])
    manifest["seed"] = manifest["seed"] + 1  # hand edit; reseal the CRC
    lines[0] = json.dumps(seal_record(manifest), sort_keys=True)
    with open(edited, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(CheckpointError, match="identity"):
        load_checkpoint_full(edited)


# -- the repro checkpoint CLI --------------------------------------------------


def test_verify_exit_codes(checkpointed, tmp_path, capsys):
    path, _ = checkpointed
    assert checkpoint_main(["verify", path]) == 0

    torn = _copy(path, tmp_path / "torn.jsonl")
    with open(torn, "a") as handle:
        handle.write('{"half')
    assert checkpoint_main(["verify", torn]) == 1
    out = capsys.readouterr().out
    assert f"{torn}:8: torn tail" in out

    assert checkpoint_main(["verify", str(tmp_path / "missing.jsonl")]) == 2


def test_inspect_reports_counts(checkpointed, capsys):
    path, campaign = checkpointed
    assert checkpoint_main(["inspect", path]) == 0
    out = capsys.readouterr().out
    assert f"done         {len(campaign.results)}" in out
    assert "quarantined  0" in out
    assert "remaining    0" in out


def test_repair_then_resume_matches_uninterrupted_run(
    checkpointed, tiny_suite, tmp_path, capsys
):
    path, campaign = checkpointed
    bad = _copy(path, tmp_path / "bad.jsonl")
    lines = _lines(bad)
    lines[4] = lines[4][:-10] + '"corrupt"}'  # stomp an interior record
    with open(bad, "w") as handle:
        handle.write("\n".join(lines) + "\n")

    repaired = str(tmp_path / "repaired.jsonl")
    assert checkpoint_main(["repair", bad, "-o", repaired]) == 0
    out = capsys.readouterr()
    assert f"{bad}:5: dropped" in out.out
    assert "EXPERIMENTS.md" in out.err  # interior drops gate the figures
    assert checkpoint_main(["verify", repaired]) == 0

    resumed = run_engine(
        tiny_suite,
        RUNS,
        seed=SEED,
        backend=SerialBackend(),
        checkpoint_path=repaired,
        resume=True,
    )
    assert [_comparable(r) for r in resumed.results] == [
        _comparable(r) for r in campaign.results
    ]
    assert checkpoint_main(["verify", repaired]) == 0


def test_merge_shards_matches_full_checkpoint(checkpointed, tmp_path):
    path, campaign = checkpointed
    lines = _lines(path)
    shard_a, shard_b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
    with open(shard_a, "w") as handle:
        handle.write("\n".join([lines[0]] + lines[1:4]) + "\n")
    with open(shard_b, "w") as handle:  # overlaps shard_a on line 4's record
        handle.write("\n".join([lines[0]] + lines[3:]) + "\n")

    merged = str(tmp_path / "merged.jsonl")
    assert checkpoint_main(["merge", "-o", merged, shard_a, shard_b]) == 0
    assert checkpoint_main(["verify", merged]) == 0
    _, done, failures = load_checkpoint_full(merged)
    assert len(done) == len(campaign.results) and not failures
    by_index = {index: result for index, result in done.values()}
    assert [_comparable(by_index[i]) for i in sorted(by_index)] == [
        _comparable(r) for r in campaign.results
    ]


def test_merge_refuses_mismatched_manifests(checkpointed, tmp_path, capsys):
    path, _ = checkpointed
    from repro.exec.durability import manifest_identity

    other = _copy(path, tmp_path / "other.jsonl")
    lines = _lines(other)
    manifest = json.loads(lines[0])
    manifest["seed"] = manifest["seed"] + 1  # a different campaign
    manifest["identity"] = manifest_identity(manifest)
    lines[0] = json.dumps(seal_record(manifest), sort_keys=True)
    with open(other, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    merged = str(tmp_path / "merged.jsonl")
    assert checkpoint_main(["merge", "-o", merged, path, other]) == 2
    assert "different campaigns" in capsys.readouterr().err


# -- single-writer locking -----------------------------------------------------


def test_second_writer_is_refused(checkpointed, tiny_suite, tmp_path):
    path, _ = checkpointed
    mine = _copy(path, tmp_path / "locked.jsonl")
    manifest, _, _ = load_checkpoint_full(mine)
    with CheckpointWriter(mine, manifest, resume=True):
        with pytest.raises(CheckpointLockedError, match="another run"):
            CheckpointWriter(mine, manifest, resume=True)
    # Released on close: a new writer may take the file.
    CheckpointWriter(mine, manifest, resume=True).close()


def test_stale_lock_of_a_dead_process_is_taken_over(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    probe = subprocess.run([sys.executable, "-c", "import os; print(os.getpid())"],
                           capture_output=True, text=True)
    dead_pid = int(probe.stdout)
    with open(lock_path_for(path), "w") as handle:
        json.dump({"pid": dead_pid, "host": socket.gethostname(),
                   "created": time.time()}, handle)
    lock = CheckpointLock(path)
    lock.acquire()  # dead same-host owner: immediate takeover, no wait
    lock.release()
    assert not os.path.exists(lock_path_for(path))


def test_aged_out_heartbeat_is_taken_over_even_for_live_pid(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    with open(lock_path_for(path), "w") as handle:
        json.dump({"pid": os.getpid(), "host": "elsewhere",
                   "created": time.time()}, handle)
    old = time.time() - 120
    os.utime(lock_path_for(path), (old, old))
    with pytest.raises(CheckpointLockedError):
        CheckpointLock(path, stale_after_s=600.0).acquire()
    CheckpointLock(path, stale_after_s=60.0).acquire().release()


def _plant_lock(path: str, owner: dict) -> None:
    with open(lock_path_for(path), "w") as handle:
        json.dump(dict({"created": time.time()}, **owner), handle)


def test_cross_host_lock_is_refused_even_when_the_pid_is_dead_here(tmp_path):
    """PID liveness carries no signal across machines: a lock recorded on
    another host must never be taken over just because the same PID number
    happens to be dead (or alive) on *this* one — only its heartbeat aging
    out may clear it."""
    path = str(tmp_path / "ck.jsonl")
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True,
    )
    dead_here = int(probe.stdout)
    _plant_lock(path, {"pid": dead_here, "host": "another-host"})
    with pytest.raises(CheckpointLockedError, match="another-host"):
        CheckpointLock(path).acquire()


def test_same_pid_as_ours_on_another_host_is_refused(tmp_path):
    """A fabric worker on host B may reuse host A's PID number; holding
    that PID ourselves proves nothing about the remote owner."""
    path = str(tmp_path / "ck.jsonl")
    _plant_lock(path, {"pid": os.getpid(), "host": "another-host"})
    with pytest.raises(CheckpointLockedError, match="another-host"):
        CheckpointLock(path).acquire()


def test_legacy_lock_without_host_only_ages_out(tmp_path):
    """Locks written before the host field existed get no PID-based
    takeover (their host is unknown), but still age out by heartbeat."""
    path = str(tmp_path / "ck.jsonl")
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True, text=True,
    )
    _plant_lock(path, {"pid": int(probe.stdout)})  # dead here, host unknown
    with pytest.raises(CheckpointLockedError, match="an unrecorded host"):
        CheckpointLock(path).acquire()
    old = time.time() - 120
    os.utime(lock_path_for(path), (old, old))
    CheckpointLock(path, stale_after_s=60.0).acquire().release()
    assert not os.path.exists(lock_path_for(path))


# -- atomic writes -------------------------------------------------------------


def test_atomic_write_replaces_and_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.json"
    target.write_text("old")
    atomic_write_text(str(target), "new contents")
    assert target.read_text() == "new contents"
    assert os.listdir(tmp_path) == ["out.json"]


# -- graceful shutdown ---------------------------------------------------------


def test_shutdown_latch_and_drain_deadline():
    shutdown = GracefulShutdown(drain_s=5.0)
    assert not shutdown.requested and shutdown.drain_remaining() == 0.0
    shutdown.request(signal.SIGTERM)
    assert shutdown.requested
    assert shutdown.signal_name == "SIGTERM"
    assert 0.0 < shutdown.drain_remaining() <= 5.0


def test_engine_stops_dispatch_after_shutdown_and_resume_completes(
    checkpointed, tiny_suite, tiny_tasks, tmp_path
):
    path, campaign = checkpointed
    partial = str(tmp_path / "partial.jsonl")
    shutdown = GracefulShutdown()

    def stop_after_first(event):
        if event.benchmark is not None and not shutdown.requested:
            shutdown.request()  # a second request() would hard-exit

    interrupted = run_engine(
        tiny_suite,
        RUNS,
        seed=SEED,
        backend=SerialBackend(),
        checkpoint_path=partial,
        observers=[stop_after_first],
        shutdown=shutdown,
    )
    assert 0 < len(interrupted.results) < len(tiny_tasks)
    assert checkpoint_main(["verify", partial]) == 0  # flushed + sealed
    resumed = run_engine(
        tiny_suite,
        RUNS,
        seed=SEED,
        backend=SerialBackend(),
        checkpoint_path=partial,
        resume=True,
    )
    assert [_comparable(r) for r in resumed.results] == [
        _comparable(r) for r in campaign.results
    ]


def test_sigterm_drains_flushes_and_prints_resume_hint(tmp_path):
    """Subprocess-based: a real SIGTERM against a parallel ``repro
    campaign`` must exit with the shutdown code, leave a verifiable
    checkpoint and print the resume hint (acceptance criterion)."""
    path = str(tmp_path / "sig.jsonl")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign",
            "--runs", "40", "--benchmarks", "bitcount,sha", "--scale", "0.5",
            "--seed", "1", "--jobs", "2", "--checkpoint", path,
            "--no-progress", "--figures", "3",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            time.sleep(0.2)
            try:
                with open(path) as handle:
                    if sum(1 for _ in handle) >= 3:
                        break
            except FileNotFoundError:
                pass
        proc.send_signal(signal.SIGTERM)
        _, err = proc.communicate(timeout=120)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == SHUTDOWN_EXIT_CODE, err
    assert "interrupted by SIGTERM" in err
    assert f"--resume {path}" in err
    assert checkpoint_main(["verify", path]) == 0
    assert not os.path.exists(lock_path_for(path))  # lock released cleanly
