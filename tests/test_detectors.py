"""Tests for the baseline detectors: bit-vector, counter, end-of-test."""

import pytest

from repro.analysis.outcomes import OutcomeClass
from repro.core import OoOCore, SimulationError
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind
from repro.idld import (
    BitVectorScheme,
    CounterScheme,
    IDLDChecker,
    end_of_test_check,
)


def run_detectors(program, array=None, kind=None, cycle=0, corruption=None):
    fabric = SignalFabric()
    armed = None
    if array is not None:
        armed = fabric.arm_suppression(array, kind, cycle)
    if corruption is not None:
        armed = fabric.arm_corruption(cycle, corruption)
    bv = BitVectorScheme()
    counter = CounterScheme()
    idld = IDLDChecker()
    core = OoOCore(program, observers=[bv, counter, idld], fabric=fabric)
    try:
        core.run(max_cycles=60_000)
    except SimulationError:
        pass
    return bv, counter, idld, armed, core


class TestBitVector:
    def test_clean_on_golden(self, suite):
        bv, _, _, _, _ = run_detectors(suite["bitcount"])
        assert not bv.detected

    def test_detects_duplication_on_reclaim(self, suite):
        """FL read-pointer freeze duplicates an id; BV fires when the
        duplicate is freed ('when a PdstID becomes free and its bit is
        already set')."""
        bv, _, _, armed, _ = run_detectors(
            suite["bitcount"], ArrayName.FL, SignalKind.READ_ENABLE, 100
        )
        assert armed.fired
        assert bv.detected
        assert bv.detections[0].kind == "duplication"

    def test_detects_persistent_leak_eventually(self, suite):
        bv, _, _, armed, _ = run_detectors(
            suite["bitcount"], ArrayName.FL, SignalKind.WRITE_ENABLE, 100
        )
        assert armed.fired
        assert bv.detected
        assert bv.detections[0].kind == "leakage"

    def test_detection_latency_unbounded_vs_idld(self, suite):
        """Section V.E: BV detection waits for a reclaim/quiescent point."""
        bv, _, idld, armed, _ = run_detectors(
            suite["crc32"], ArrayName.FL, SignalKind.WRITE_ENABLE, 200
        )
        assert armed.fired and bv.detected and idld.detected
        assert idld.first_detection_cycle <= bv.first_detection_cycle

    def test_chicken_bit(self, suite):
        fabric = SignalFabric()
        fabric.arm_suppression(ArrayName.FL, SignalKind.READ_ENABLE, 100)
        bv = BitVectorScheme(enabled=False)
        core = OoOCore(suite["bitcount"], observers=[bv], fabric=fabric)
        try:
            core.run(max_cycles=20_000)
        except SimulationError:
            pass
        assert not bv.detected


class TestCounter:
    def test_clean_on_golden(self, suite):
        _, counter, _, _, _ = run_detectors(suite["sha"])
        assert not counter.detected

    def test_detects_pure_leak_at_quiescence(self, suite):
        _, counter, _, armed, _ = run_detectors(
            suite["bitcount"], ArrayName.FL, SignalKind.WRITE_ENABLE, 100
        )
        assert armed.fired
        assert counter.detected
        assert counter.detections[0].free_count < counter.detections[0].expected

    def test_blind_to_combined_dup_and_leak(self):
        """Section V.E: x+1-1=x. Synthesize the combined case directly."""
        counter = CounterScheme()
        counter.power_on(8, 2, [2, 3, 4, 5, 6, 7], [0, 1])
        counter.fl_read(2)    # allocate 2
        counter.fl_write(3)   # duplicate-free of 3 (leak of 2 never returns)
        counter.pipeline_empty(cycle=10)
        assert not counter.detected  # net count unchanged: invisible

    def test_blind_to_corruption(self, suite):
        _, counter, idld, armed, _ = run_detectors(
            suite["sha"], corruption=0b101, cycle=60
        )
        assert armed.fired
        assert idld.detected        # IDLD sees it...
        assert not counter.detected  # ...the counter cannot (Section V.E)


class TestEndOfTest:
    @pytest.mark.parametrize(
        "outcome", [OutcomeClass.SDC, OutcomeClass.TIMEOUT,
                    OutcomeClass.ASSERT, OutcomeClass.CRASH]
    )
    def test_observable_outcomes_detected(self, outcome):
        verdict = end_of_test_check(outcome, final_cycle=1000)
        assert verdict.detected and verdict.detection_cycle == 1000

    @pytest.mark.parametrize(
        "outcome", [OutcomeClass.BENIGN, OutcomeClass.PERFORMANCE,
                    OutcomeClass.CONTROL_FLOW_DEVIATION]
    )
    def test_masked_outcomes_missed(self, outcome):
        verdict = end_of_test_check(outcome, final_cycle=1000)
        assert not verdict.detected and verdict.detection_cycle is None


class TestOutcomeClasses:
    def test_masked_partition(self):
        masked = {o for o in OutcomeClass if o.masked}
        assert masked == {
            OutcomeClass.BENIGN,
            OutcomeClass.PERFORMANCE,
            OutcomeClass.CONTROL_FLOW_DEVIATION,
        }

    def test_side_effect_subset_of_masked(self):
        for outcome in OutcomeClass:
            if outcome.has_side_effect:
                assert outcome.masked

    def test_benign_has_no_side_effect(self):
        assert not OutcomeClass.BENIGN.has_side_effect
