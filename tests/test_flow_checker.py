"""Unit + property tests for the generic flow-invariance checker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.idld.flow import FlowInvariantChecker


class TestBasics:
    def test_balanced_flow_never_alarms(self):
        guard = FlowInvariantChecker(16)
        for token in (3, 7, 0, 15):
            guard.source(token)
            guard.sink(token)
            guard.tick(1)
        guard.quiescent(2)
        assert not guard.detected

    def test_out_of_order_sinks_allowed(self):
        guard = FlowInvariantChecker(16)
        guard.source(1)
        guard.source(2)
        guard.sink(2)
        guard.sink(1)
        guard.tick(5)
        assert not guard.detected

    def test_counter_zero_catches_swap(self):
        guard = FlowInvariantChecker(16)
        guard.source(1)
        guard.sink(2)  # wrong token came out
        guard.tick(9)
        assert guard.detected
        assert guard.violations[0].policy == "counter_zero"

    def test_leak_caught_at_quiescent(self):
        guard = FlowInvariantChecker(16)
        guard.source(5)  # never sinks
        guard.tick(1)    # counter nonzero: no counter_zero check
        assert not guard.detected
        guard.quiescent(2)
        assert guard.detected

    def test_even_multiplicity_leak_caught_by_counter(self):
        """Two leaked tokens with the same id cancel in the XOR; the
        outstanding counter at quiescence still flags them."""
        guard = FlowInvariantChecker(16)
        guard.source(5)
        guard.source(5)
        guard.quiescent(3)
        assert guard.detected
        assert guard.violations[0].outstanding == 2

    def test_token_zero_visible(self):
        guard = FlowInvariantChecker(16)
        guard.source(0)
        guard.quiescent(1)
        assert guard.detected

    def test_chicken_bit(self):
        guard = FlowInvariantChecker(16, enabled=False)
        guard.source(1)
        guard.quiescent(1)
        guard.tick(1)
        assert not guard.detected

    def test_counter_zero_policy_can_be_disabled(self):
        guard = FlowInvariantChecker(16, check_on_counter_zero=False)
        guard.source(1)
        guard.sink(2)
        guard.tick(1)
        assert not guard.detected

    def test_id_space_validated(self):
        with pytest.raises(ValueError):
            FlowInvariantChecker(0)


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=31), max_size=40))
    @settings(max_examples=60)
    def test_any_matched_flow_is_clean(self, tokens):
        guard = FlowInvariantChecker(32)
        for token in tokens:
            guard.source(token)
        for token in reversed(tokens):
            guard.sink(token)
        guard.tick(1)
        guard.quiescent(2)
        assert not guard.detected

    @given(
        st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=40),
        st.integers(min_value=0),
    )
    @settings(max_examples=60)
    def test_dropping_any_one_token_is_caught(self, tokens, drop_index):
        guard = FlowInvariantChecker(32)
        dropped = drop_index % len(tokens)
        for token in tokens:
            guard.source(token)
        for i, token in enumerate(tokens):
            if i != dropped:
                guard.sink(token)
        guard.quiescent(1)
        assert guard.detected

    @given(
        st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=60)
    def test_duplicating_any_sink_is_caught(self, tokens, extra):
        guard = FlowInvariantChecker(32)
        for token in tokens:
            guard.source(token)
        for token in tokens:
            guard.sink(token)
        guard.sink(extra)  # phantom arrival
        guard.quiescent(1)
        assert guard.detected
