"""Unit tests for the ReOrder Buffer."""

import pytest

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.rob import ReorderBuffer
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind

from tests.support import RecordingObserver


@pytest.fixture()
def setup():
    fabric = SignalFabric()
    observer = RecordingObserver()
    rob = ReorderBuffer(8, fabric, [observer])
    return rob, fabric, observer


def fill(rob, count, start_seq=0, has_dest=True):
    for i in range(count):
        seq = start_seq + i
        rob.allocate(seq, uop=f"u{seq}", has_dest=has_dest,
                     evicted_pdst=100 + seq, new_pdst=200 + seq)


class TestAllocationCommit:
    def test_fifo_commit_order(self, setup):
        rob, _, _ = setup
        fill(rob, 3)
        reclaims = [rob.commit_read() for _ in range(3)]
        assert reclaims == [(True, 100), (True, 101), (True, 102)]

    def test_head_slot_exposes_oldest(self, setup):
        rob, _, _ = setup
        fill(rob, 2)
        assert rob.head_slot.seq == 0
        rob.commit_read()
        assert rob.head_slot.seq == 1

    def test_occupancy(self, setup):
        rob, _, _ = setup
        fill(rob, 5)
        assert rob.count == 5 and not rob.full and not rob.empty
        fill(rob, 3, start_seq=5)
        assert rob.full

    def test_overflow_raises(self, setup):
        rob, _, _ = setup
        fill(rob, 8)
        with pytest.raises(SimulatorAssertion):
            rob.allocate(8, None, True, 0, 0)

    def test_underflow_raises(self, setup):
        rob, _, _ = setup
        with pytest.raises(SimulatorAssertion):
            rob.commit_read()

    def test_no_dest_entry_reclaims_nothing(self, setup):
        rob, _, obs = setup
        fill(rob, 1, has_dest=False)
        has_dest, _ = rob.commit_read()
        assert not has_dest
        assert obs.of_kind("rob_pdst_read") == []

    def test_events_on_write_and_read(self, setup):
        rob, _, obs = setup
        fill(rob, 1)
        assert obs.of_kind("rob_pdst_write") == [("rob_pdst_write", 100, 0)]
        rob.commit_read()
        assert obs.of_kind("rob_pdst_read") == [("rob_pdst_read", 100, 0)]

    def test_slots_reused_after_wrap(self, setup):
        rob, _, _ = setup
        fill(rob, 8)
        for _ in range(8):
            rob.commit_read()
        fill(rob, 8, start_seq=8)
        assert rob.commit_read() == (True, 108)


class TestWriteSuppression:
    def test_suppressed_field_write_keeps_stale_value(self, setup):
        rob, fabric, _ = setup
        fill(rob, 8)
        for _ in range(8):
            rob.commit_read()
        fabric.arm_suppression(ArrayName.ROB, SignalKind.WRITE_ENABLE, 0)
        fill(rob, 1, start_seq=8)  # field write suppressed
        # The slot (reused from seq 0) still holds seq 0's evicted id.
        assert rob.commit_read() == (True, 100)

    def test_suppressed_write_emits_no_event(self, setup):
        rob, fabric, obs = setup
        fabric.arm_suppression(ArrayName.ROB, SignalKind.WRITE_ENABLE, 0)
        fill(rob, 1)
        assert obs.of_kind("rob_pdst_write") == []


class TestReadSuppression:
    def test_lagging_pointer_duplicates_then_shifts(self, setup):
        rob, fabric, _ = setup
        fill(rob, 4)
        fabric.arm_suppression(ArrayName.ROB, SignalKind.READ_ENABLE, 0)
        values = [rob.commit_read()[1] for _ in range(4)]
        # First reclaim frozen: 100 delivered twice, then lag-by-one.
        assert values == [100, 100, 101, 102]
        assert rob.read_lag == 1

    def test_suppressed_read_emits_no_event(self, setup):
        rob, fabric, obs = setup
        fill(rob, 1)
        fabric.arm_suppression(ArrayName.ROB, SignalKind.READ_ENABLE, 0)
        rob.commit_read()
        assert obs.of_kind("rob_pdst_read") == []

    def test_no_dest_commits_do_not_consult_read_enable(self, setup):
        rob, fabric, _ = setup
        fill(rob, 2, has_dest=False)
        fill(rob, 1, start_seq=2)
        armed = fabric.arm_suppression(ArrayName.ROB, SignalKind.READ_ENABLE, 0)
        rob.commit_read()
        rob.commit_read()
        assert not armed.fired  # only dest reclaims touch the read port
        rob.commit_read()
        assert armed.fired


class TestSquash:
    def test_squash_moves_tail(self, setup):
        rob, _, _ = setup
        fill(rob, 6)
        assert rob.squash_after(2)
        assert rob.count == 3  # seqs 0..2 remain

    def test_squash_never_moves_below_head(self, setup):
        rob, _, _ = setup
        fill(rob, 4)
        rob.commit_read()
        rob.commit_read()
        rob.squash_after(0)  # older than head: clamp to head
        assert rob.count == 0

    def test_suppressed_squash_keeps_entries(self, setup):
        rob, fabric, _ = setup
        fill(rob, 6)
        fabric.arm_suppression(ArrayName.ROB, SignalKind.RECOVERY, 0)
        assert not rob.squash_after(2)
        assert rob.count == 6

    def test_live_evicted_ids(self, setup):
        rob, _, _ = setup
        fill(rob, 3)
        rob.squash_after(1)
        assert rob.live_evicted_ids() == [100, 101]

    def test_squash_beyond_tail_raises(self, setup):
        rob, _, _ = setup
        fill(rob, 2)
        with pytest.raises(SimulatorAssertion):
            rob.squash_after(5)
