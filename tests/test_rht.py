"""Unit tests for the Register History Table."""

import pytest

from repro.core.errors import SimulatorAssertion
from repro.core.rrs.rht import RegisterHistoryTable
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind


@pytest.fixture()
def setup():
    fabric = SignalFabric()
    rht = RegisterHistoryTable(8, fabric, [])
    return rht, fabric


class TestLogging:
    def test_log_advances_tail(self, setup):
        rht, _ = setup
        rht.log(True, 3, 40)
        assert rht.tail_pos == 1

    def test_slot_contents(self, setup):
        rht, _ = setup
        rht.log(True, 3, 40)
        entry = rht.read_slot(0)
        assert (entry.has_dest, entry.ldst, entry.new_pdst) == (True, 3, 40)

    def test_destless_entries_logged(self, setup):
        rht, _ = setup
        rht.log(False, 0, 0)
        assert rht.tail_pos == 1
        assert not rht.read_slot(0).has_dest

    def test_occupancy(self, setup):
        rht, _ = setup
        for i in range(5):
            rht.log(True, i % 4, i)
        assert rht.occupancy == 5
        rht.advance_head(3)
        assert rht.occupancy == 2

    def test_overflow_raises(self, setup):
        rht, _ = setup
        for i in range(8):
            rht.log(True, 0, i)
        with pytest.raises(SimulatorAssertion):
            rht.log(True, 0, 9)

    def test_ring_reuse(self, setup):
        rht, _ = setup
        for i in range(8):
            rht.log(True, 0, i)
        rht.advance_head(4)
        rht.log(True, 1, 99)
        assert rht.read_slot(8).new_pdst == 99
        assert rht.read_slot(8) is rht.read_slot(0)  # same physical slot


class TestWriteSuppression:
    def test_suppressed_write_freezes_slot_and_tail(self, setup):
        rht, fabric = setup
        rht.log(True, 1, 10)
        fabric.arm_suppression(ArrayName.RHT, SignalKind.WRITE_ENABLE, 0)
        rht.log(True, 2, 20)  # dropped entirely
        assert rht.tail_pos == 1
        rht.log(True, 3, 30)  # lands where the dropped entry should have
        assert rht.read_slot(1).new_pdst == 30


class TestRecovery:
    def test_restore_tail(self, setup):
        rht, _ = setup
        for i in range(6):
            rht.log(True, 0, i)
        assert rht.restore_tail(2)
        assert rht.tail_pos == 2

    def test_suppressed_restore_keeps_tail(self, setup):
        rht, fabric = setup
        for i in range(6):
            rht.log(True, 0, i)
        fabric.arm_suppression(ArrayName.RHT, SignalKind.RECOVERY, 0)
        assert not rht.restore_tail(2)
        assert rht.tail_pos == 6

    def test_restore_below_head_raises(self, setup):
        rht, _ = setup
        for i in range(6):
            rht.log(True, 0, i)
        rht.advance_head(4)
        with pytest.raises(SimulatorAssertion):
            rht.restore_tail(2)

    def test_walk_advance_gating(self, setup):
        rht, fabric = setup
        fabric.arm_suppression(ArrayName.RHT, SignalKind.READ_ENABLE, 0)
        assert not rht.walk_advance()  # one-shot suppression
        assert rht.walk_advance()

    def test_head_never_passes_tail(self, setup):
        rht, _ = setup
        rht.log(True, 0, 1)
        rht.advance_head(99)
        assert rht.head_pos == rht.tail_pos

    def test_head_never_retreats(self, setup):
        rht, _ = setup
        for i in range(4):
            rht.log(True, 0, i)
        rht.advance_head(3)
        rht.advance_head(1)
        assert rht.head_pos == 3
