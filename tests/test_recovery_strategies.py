"""Cross-variant tests for the pluggable microarchitectural policies.

Every (free-list discipline x recovery strategy) variant must execute
programs correctly, keep the PdstID census clean, stay invisible to the
IDLD invariant on clean runs, and remain *visible* to IDLD under the
armed leak/duplication bug models. Warm-start snapshots taken mid-walk
must round-trip bit-identically on every strategy.
"""

import pytest

from repro.core import CoreConfig, OoOCore
from repro.core.config import FREE_LIST_DISCIPLINES, RECOVERY_STRATEGIES
from repro.core.recovery import make_recovery_strategy
from repro.core.rrs.free_list import (
    FifoFreeList,
    FreeList,
    StackFreeList,
    make_free_list,
)
from repro.core.rrs.signals import ArrayName, SignalFabric, SignalKind
from repro.idld import IDLDChecker
from repro.isa.semantics import reference_run

from tests.support import RecordingObserver
from tests.test_recovery_flows import mispredicting_program

VARIANTS = [
    (discipline, recovery)
    for discipline in FREE_LIST_DISCIPLINES
    for recovery in RECOVERY_STRATEGIES
]


def variant_config(discipline, recovery, **overrides):
    return CoreConfig(
        free_list_discipline=discipline,
        recovery_strategy=recovery,
        **overrides,
    )


class TestVariantCorrectness:
    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_mispredict_storm_is_architecturally_clean(
        self, discipline, recovery
    ):
        program = mispredicting_program()
        expected, _, _ = reference_run(program)
        checker = IDLDChecker()
        config = variant_config(discipline, recovery)
        core = OoOCore(program, config=config, observers=[checker])
        result = core.run()
        assert result.halted
        assert result.output == expected
        assert result.stats["flushes"] > 0
        assert core.census_is_clean()
        assert checker.violations == []

    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_commit_stream_matches_checkpoint_reference(
        self, discipline, recovery
    ):
        """Recovery policy changes *when* instructions commit, never
        *which* instructions commit."""
        program = mispredicting_program()
        reference = OoOCore(program).run()
        config = variant_config(discipline, recovery)
        result = OoOCore(program, config=config).run()
        assert result.commit_pcs == reference.commit_pcs

    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_zero_idiom_elimination_stays_clean(self, discipline, recovery):
        """The zero-register rename special cases interact with the walk
        unwind; the invariant must still balance."""
        program = mispredicting_program()
        expected, _, _ = reference_run(program)
        checker = IDLDChecker()
        config = variant_config(
            discipline, recovery, zero_idiom_elimination=True
        )
        core = OoOCore(program, config=config, observers=[checker])
        result = core.run()
        assert result.output == expected
        assert core.census_is_clean()
        assert checker.violations == []

    @pytest.mark.parametrize("recovery", ["rob-walk", "checkpoint-free"])
    def test_walk_strategies_never_restore_a_checkpoint(self, recovery):
        observer = RecordingObserver()
        config = variant_config("fifo", recovery)
        core = OoOCore(
            mispredicting_program(), config=config, observers=[observer]
        )
        result = core.run()
        assert result.stats["flushes"] > 0
        assert observer.of_kind("checkpoint_restored") == []

    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_narrow_walk_width_still_correct(self, discipline, recovery):
        program = mispredicting_program()
        expected, _, _ = reference_run(program)
        config = variant_config(discipline, recovery, recovery_walk_width=1)
        result = OoOCore(program, config=config).run()
        assert result.output == expected


class TestVariantDetection:
    """Armed leak/dup bugs must stay IDLD-visible on every variant."""

    def _run_armed(self, program, discipline, recovery, kind):
        fabric = SignalFabric()
        armed = fabric.arm_suppression(ArrayName.FL, kind, 100)
        checker = IDLDChecker()
        config = variant_config(discipline, recovery)
        core = OoOCore(
            program, config=config, observers=[checker], fabric=fabric
        )
        try:
            core.run(max_cycles=60_000)
        except Exception:
            pass  # downstream crash/assert outcomes are fine; IDLD fires first
        return armed, checker

    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_leakage_detected(self, suite, discipline, recovery):
        armed, checker = self._run_armed(
            suite["bitcount"], discipline, recovery, SignalKind.WRITE_ENABLE
        )
        assert armed.fired
        assert checker.detected
        assert checker.first_detection_cycle >= 100

    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_duplication_detected(self, suite, discipline, recovery):
        armed, checker = self._run_armed(
            suite["bitcount"], discipline, recovery, SignalKind.READ_ENABLE
        )
        assert armed.fired
        assert checker.detected


class TestWarmStartMidRecovery:
    @pytest.mark.parametrize("discipline,recovery", VARIANTS)
    def test_snapshot_inside_recovery_round_trips(self, discipline, recovery):
        """save_state taken while a walk/restore is in flight restores to
        a core that finishes bit-identically to the uninterrupted run."""
        program = mispredicting_program()
        config = variant_config(
            discipline, recovery, recovery_walk_width=1
        )
        core = OoOCore(program, config=config)
        while core.recovery is None:
            core.step()
            assert core.cycle < 50_000, "program never entered recovery"
        snapshot = core.save_state()
        reference = core.run()

        resumed = OoOCore(program, config=config)
        resumed.load_state(snapshot)
        assert resumed.recovery is not None
        result = resumed.run()
        assert result == reference

    @pytest.mark.parametrize("recovery", RECOVERY_STRATEGIES)
    def test_save_recovery_is_plain_data(self, recovery):
        """Recovery snapshots must be JSON-ish containers (tuples/ints),
        never live object references."""
        config = variant_config("fifo", recovery)
        core = OoOCore(mispredicting_program(), config=config)
        while core.recovery is None:
            core.step()
        saved = core.recovery_strategy.save_recovery()

        def flat(value):
            if isinstance(value, (tuple, list)):
                return all(flat(v) for v in value)
            return value is None or isinstance(value, (int, bool))

        assert flat(saved)


class TestStackFreeList:
    def _make(self, fabric=None, parity=None):
        fabric = fabric or SignalFabric()
        fl = StackFreeList(8, fabric, observers=(), parity=parity)
        fl.reset([10, 11, 12, 13])
        return fl, fabric

    def test_lifo_delivery_order(self):
        fl, _ = self._make()
        assert [fl.pop() for _ in range(4)] == [13, 12, 11, 10]
        assert fl.empty

    def test_push_then_pop_reuses_most_recent(self):
        fl, _ = self._make()
        fl.pop()          # 13
        fl.push(42)
        assert fl.pop() == 42

    def test_suppressed_read_redelivers_duplicate(self):
        fl, fabric = self._make()
        armed = fabric.arm_suppression(
            ArrayName.FL, SignalKind.READ_ENABLE, 5
        )
        fabric.cycle = 5
        first = fl.pop()   # suppressed: pointer frozen, 13 stays live
        second = fl.pop()  # single-shot bug done: delivers 13 *again*
        assert armed.fired
        assert first == second == 13
        assert fl.count == 3

    def test_suppressed_write_drops_reclaim(self):
        fl, fabric = self._make()
        fl.pop()
        fabric.arm_suppression(ArrayName.FL, SignalKind.WRITE_ENABLE, 5)
        fabric.cycle = 5
        fl.push(13)
        assert fl.count == 3  # 13 leaked
        assert 13 not in fl.contents()

    def test_contents_in_delivery_order(self):
        fl, _ = self._make()
        assert fl.contents() == [13, 12, 11, 10]

    def test_corrupt_stored_is_top_relative(self):
        fl, _ = self._make()
        corrupted = fl.corrupt_stored(0, 0b1)  # next pop = 13
        assert corrupted == 13 ^ 0b1
        assert fl.pop() == corrupted

    def test_corrupt_stored_rejects_dead_slots(self):
        fl, _ = self._make()
        with pytest.raises(ValueError):
            fl.corrupt_stored(4, 1)
        with pytest.raises(ValueError):
            fl.corrupt_stored(0, 0)

    def test_save_load_round_trip_keeps_stale_storage(self):
        fl, fabric = self._make()
        fl.pop()
        state = fl.save_state()
        other = StackFreeList(8, fabric, observers=())
        other.load_state(state)
        assert other.contents() == fl.contents()
        # Stale slot above the pointer survives too (standard-cell memory).
        assert other.save_state() == state


class TestFactories:
    def test_fifo_alias_preserved(self):
        assert FreeList is FifoFreeList

    def test_make_free_list_by_discipline(self):
        fabric = SignalFabric()
        assert isinstance(
            make_free_list("fifo", 8, fabric, ()), FifoFreeList
        )
        assert isinstance(
            make_free_list("stack", 8, fabric, ()), StackFreeList
        )

    def test_make_free_list_unknown(self):
        with pytest.raises(ValueError, match="unknown free list discipline"):
            make_free_list("lifo", 8, SignalFabric(), ())

    def test_make_recovery_strategy_unknown(self):
        with pytest.raises(ValueError, match="unknown recovery strategy"):
            make_recovery_strategy("walk", None)

    def test_core_exposes_selected_policies(self):
        config = variant_config("stack", "rob-walk")
        core = OoOCore(mispredicting_program(), config=config)
        assert core.free_list.discipline == "stack"
        assert core.recovery_strategy.name == "rob-walk"
