"""Tests for the idld-campaign CLI."""

import pytest

from repro.cli import main


def test_table2_only(capsys):
    assert main(["--figures", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "IDLD" in out


def test_tiny_campaign(capsys):
    code = main([
        "--runs", "2",
        "--benchmarks", "sha",
        "--figures", "3,9",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "end-of-test" in out
    assert "sha" in out


def test_unknown_benchmark_rejected(capsys):
    assert main(["--benchmarks", "nosuch", "--figures", "3"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err


def test_figure_subset(capsys):
    main(["--runs", "2", "--benchmarks", "sha", "--figures", "4"])
    out = capsys.readouterr().out
    assert "Figure 4" in out and "Figure 3" not in out
