"""Tests for the idld-campaign CLI."""

import pytest

from repro.cli import main


def test_table2_only(capsys):
    assert main(["--figures", "table2"]) == 0
    out = capsys.readouterr().out
    assert "Table II" in out and "IDLD" in out


def test_tiny_campaign(capsys):
    code = main([
        "--runs", "2",
        "--benchmarks", "sha",
        "--figures", "3,9",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "end-of-test" in out
    assert "sha" in out


def test_unknown_benchmark_rejected(capsys):
    assert main(["--benchmarks", "nosuch", "--figures", "3"]) == 2
    assert "unknown benchmarks" in capsys.readouterr().err


def test_figure_subset(capsys):
    main(["--runs", "2", "--benchmarks", "sha", "--figures", "4"])
    out = capsys.readouterr().out
    assert "Figure 4" in out and "Figure 3" not in out


def test_unknown_figure_rejected(capsys):
    assert main(["--figures", "3,nosuch"]) == 2
    err = capsys.readouterr().err
    assert "unknown figures: nosuch" in err
    assert "latency" in err  # the known-id list names every supported id


def test_latency_documented_in_help(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    assert "latency" in capsys.readouterr().out


def test_checkpoint_and_resume_mutually_exclusive(capsys):
    assert main(["--checkpoint", "a.jsonl", "--resume", "b.jsonl"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_resume_missing_file_clean_error(capsys):
    code = main([
        "--resume", "/nonexistent/run.jsonl",
        "--runs", "1", "--benchmarks", "sha", "--figures", "3",
    ])
    assert code == 2
    assert "checkpoint error" in capsys.readouterr().err


def test_from_checkpoint_missing_file_clean_error(capsys):
    assert main(["--from-checkpoint", "/nonexistent/run.jsonl"]) == 2
    assert "cannot load checkpoint" in capsys.readouterr().err


def test_invalid_jobs_rejected(capsys):
    assert main(["--jobs", "0", "--figures", "3"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_parallel_campaign_with_checkpoint(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    code = main([
        "--runs", "2",
        "--benchmarks", "sha",
        "--figures", "3",
        "--jobs", "2",
        "--checkpoint", path,
        "--no-progress",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "jobs=2" in out and "never activated" in out

    # Report straight from the checkpoint, no re-execution.
    assert main(["--from-checkpoint", path, "--figures", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out and "checkpoint: 6 injections" in out
