"""Property-based tests of the core invariants (hypothesis)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CoreConfig, OoOCore
from repro.core.rrs.free_list import FreeList
from repro.core.rrs.signals import SignalFabric
from repro.idld import IDLDChecker
from repro.isa.semantics import reference_run
from repro.workloads.generator import random_program

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(seed=st.integers(min_value=0, max_value=10_000))
@SLOW
def test_closed_loop_token_invariant(seed):
    """For any halting program: the cycle-level core commits the
    architectural outputs, the PdstID census is exactly {0..P-1} at halt,
    and the IDLD code never deviates (Section V.A's invariance)."""
    program = random_program(seed, blocks=4, block_len=6, max_loop_iters=6)
    expected, _, _ = reference_run(program)
    checker = IDLDChecker()
    core = OoOCore(program, observers=[checker])
    result = core.run()
    assert result.halted
    assert result.output == expected
    assert not checker.detected
    census = core.rrs_id_census()
    assert sorted(census) == list(range(core.config.num_physical_regs))
    assert all(count == 1 for count in census.values())


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    width=st.sampled_from([1, 2, 4]),
    phys=st.sampled_from([48, 64, 128]),
)
@SLOW
def test_invariant_across_configurations(seed, width, phys):
    program = random_program(seed, blocks=3, block_len=5, max_loop_iters=5)
    expected, _, _ = reference_run(program)
    config = CoreConfig(width=width, num_physical_regs=phys,
                        rob_entries=24, checkpoint_interval=8)
    checker = IDLDChecker()
    core = OoOCore(program, config=config, observers=[checker])
    result = core.run()
    assert result.output == expected
    assert not checker.detected


@given(ops=st.lists(st.booleans(), max_size=60))
@settings(max_examples=50, deadline=None)
def test_free_list_model_equivalence(ops):
    """The FreeList FIFO behaves exactly like a deque under any legal
    push/pop sequence (True=pop, False=push of a recycled id)."""
    from collections import deque

    fl = FreeList(16, SignalFabric(), [])
    fl.reset(range(8))
    model = deque(range(8))
    held = []
    for is_pop in ops:
        if is_pop and model:
            assert fl.pop() == model.popleft()
            held.append(1)
        elif not is_pop and held and len(model) < 16:
            value = held.pop()
            fl.push(value)
            model.append(value)
    assert fl.contents() == list(model)
    assert fl.count == len(model)


@given(
    n=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=999),
)
@settings(max_examples=30, deadline=None)
def test_reference_interpreter_is_total_on_generated_programs(n, seed):
    program = random_program(seed, blocks=2, block_len=4, max_loop_iters=4)
    output, regs, steps = reference_run(program)
    assert len(regs) == 32
    assert steps >= 1
