"""Authenticated fabric RPC: signing, replay protection, 401 end-to-end.

Unit coverage for :mod:`repro.exec.fabric.auth` (secret loading, the
canonical message, :class:`RequestVerifier` on a fake clock) plus the
HTTP proof the issue demands: unauthenticated, wrong-secret and replayed
requests answer a bare 401 *without mutating coordinator state*, while a
correctly-secreted client works — and the secret itself appears in no
status payload and no artifact.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
import zlib

import pytest

from repro.exec.fabric import (
    ENV_SECRET,
    FabricCoordinator,
    FabricRejected,
    HttpTransport,
    NONCE_HEADER,
    RequestVerifier,
    SIGNATURE_HEADER,
    TIMESTAMP_HEADER,
    canonical_message,
    load_secret,
    make_http_server,
    sign_request,
)

from tests.test_fabric import SPEC, FakeClock  # noqa: F401

SECRET = b"a-shared-fabric-secret"


# -- secret loading ------------------------------------------------------------


def test_load_secret_prefers_file_and_strips(tmp_path, monkeypatch):
    path = tmp_path / "secret"
    path.write_bytes(b"  from-file\n")
    monkeypatch.setenv(ENV_SECRET, "from-env")
    assert load_secret(str(path)) == b"from-file"


def test_load_secret_falls_back_to_env(monkeypatch):
    monkeypatch.setenv(ENV_SECRET, "from-env")
    assert load_secret(None) == b"from-env"


def test_load_secret_none_when_unconfigured(monkeypatch):
    monkeypatch.delenv(ENV_SECRET, raising=False)
    assert load_secret(None) is None


def test_load_secret_empty_file_is_an_error(tmp_path):
    path = tmp_path / "secret"
    path.write_bytes(b"\n")
    with pytest.raises(ValueError):
        load_secret(str(path))


# -- canonical message and signing ---------------------------------------------


def test_canonical_message_binds_every_field():
    base = canonical_message("POST", "/api/request", "1.0", "n1", b"body")
    assert canonical_message("GET", "/api/request", "1.0", "n1", b"body") != base
    assert canonical_message("POST", "/api/status", "1.0", "n1", b"body") != base
    assert canonical_message("POST", "/api/request", "2.0", "n1", b"body") != base
    assert canonical_message("POST", "/api/request", "1.0", "n2", b"body") != base
    assert canonical_message("POST", "/api/request", "1.0", "n1", b"tampered") != base


def _signed_headers(secret, method, path, timestamp, nonce, body):
    return {
        SIGNATURE_HEADER: sign_request(
            secret, method, path, timestamp, nonce, body
        ),
        NONCE_HEADER: nonce,
        TIMESTAMP_HEADER: timestamp,
    }


# -- verifier ------------------------------------------------------------------


def test_verifier_roundtrip_and_replay():
    clock = FakeClock()
    clock.advance(1000.0)
    verifier = RequestVerifier(SECRET, clock=clock)
    headers = _signed_headers(
        SECRET, "POST", "/api/request", "1000.0", "nonce-1", b"{}"
    )
    assert verifier.verify("POST", "/api/request", headers, b"{}")
    # The byte-identical request again: a replay, refused.
    assert not verifier.verify("POST", "/api/request", headers, b"{}")


def test_verifier_rejects_missing_headers():
    clock = FakeClock()
    verifier = RequestVerifier(SECRET, clock=clock)
    good = _signed_headers(SECRET, "GET", "/api/status", "0.0", "n", b"")
    for omitted in (SIGNATURE_HEADER, NONCE_HEADER, TIMESTAMP_HEADER):
        partial = {k: v for k, v in good.items() if k != omitted}
        assert not verifier.verify("GET", "/api/status", partial, b"")


def test_verifier_rejects_bad_timestamp_and_stale_window():
    clock = FakeClock()
    clock.advance(1000.0)
    verifier = RequestVerifier(SECRET, window_s=120.0, clock=clock)
    bad = _signed_headers(
        SECRET, "GET", "/api/status", "not-a-float", "n1", b""
    )
    assert not verifier.verify("GET", "/api/status", bad, b"")
    stale = _signed_headers(SECRET, "GET", "/api/status", "800.0", "n2", b"")
    assert not verifier.verify("GET", "/api/status", stale, b"")
    future = _signed_headers(SECRET, "GET", "/api/status", "1200.0", "n3", b"")
    assert not verifier.verify("GET", "/api/status", future, b"")
    fresh = _signed_headers(SECRET, "GET", "/api/status", "1100.0", "n4", b"")
    assert verifier.verify("GET", "/api/status", fresh, b"")


def test_verifier_rejects_wrong_secret_and_tampering():
    clock = FakeClock()
    verifier = RequestVerifier(SECRET, clock=clock)
    forged = _signed_headers(
        b"the-wrong-secret", "POST", "/api/request", "0.0", "n1", b"{}"
    )
    assert not verifier.verify("POST", "/api/request", forged, b"{}")
    headers = _signed_headers(
        SECRET, "POST", "/api/request", "0.0", "n2", b'{"worker": "w"}'
    )
    # Same signature, swapped body / path / method: all refused.
    assert not verifier.verify(
        "POST", "/api/request", headers, b'{"worker": "evil"}'
    )
    assert not verifier.verify(
        "POST", "/api/release", headers, b'{"worker": "w"}'
    )
    assert not verifier.verify(
        "GET", "/api/request", headers, b'{"worker": "w"}'
    )


def test_verifier_nonce_cache_prunes_by_window():
    """A nonce string becomes reusable once the window has passed — safe,
    because replaying the *original* bytes then fails the freshness check
    — and the cache stays bounded instead of growing per request."""
    clock = FakeClock()
    verifier = RequestVerifier(SECRET, window_s=120.0, clock=clock)
    first = _signed_headers(SECRET, "GET", "/api/status", "0.0", "n1", b"")
    assert verifier.verify("GET", "/api/status", first, b"")
    clock.advance(300.0)
    assert not verifier.verify("GET", "/api/status", first, b"")  # stale
    fresh = _signed_headers(SECRET, "GET", "/api/status", "300.0", "n1", b"")
    assert verifier.verify("GET", "/api/status", fresh, b"")
    assert len(verifier._seen_nonces) == 1  # n1@0.0 was pruned


def test_verifier_rejects_degenerate_construction():
    with pytest.raises(ValueError):
        RequestVerifier(b"")
    with pytest.raises(ValueError):
        RequestVerifier(SECRET, window_s=0.0)


def test_unsigned_nonces_cannot_poison_the_cache():
    """An attacker spraying unsigned requests with guessed nonces must not
    be able to pre-block a legitimate client's nonce."""
    clock = FakeClock()
    verifier = RequestVerifier(SECRET, clock=clock)
    forged = _signed_headers(b"wrong", "GET", "/api/status", "0.0", "n1", b"")
    assert not verifier.verify("GET", "/api/status", forged, b"")
    genuine = _signed_headers(SECRET, "GET", "/api/status", "0.0", "n1", b"")
    assert verifier.verify("GET", "/api/status", genuine, b"")


# -- HTTP end-to-end -----------------------------------------------------------


@pytest.fixture()
def secured_server(tmp_path):
    coordinator = FabricCoordinator(str(tmp_path / "state"))
    server = make_http_server(coordinator, port=0, secret=SECRET)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield coordinator, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=5.0)


def test_http_unauthenticated_gets_bare_401(secured_server):
    coordinator, url = secured_server
    # GET without headers.
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(url + "/api/status", timeout=10.0)
    assert excinfo.value.code == 401
    assert json.loads(excinfo.value.read()) == {"error": "unauthorized"}
    # POST without headers: refused BEFORE the submit could mutate state.
    body = json.dumps({"spec": SPEC.to_dict()}).encode("utf-8")
    request = urllib.request.Request(url + "/api/submit", data=body)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10.0)
    assert excinfo.value.code == 401
    assert coordinator.spec is None  # nothing was installed


def test_http_wrong_secret_gets_401_via_client(secured_server):
    coordinator, url = secured_server
    impostor = HttpTransport(url, timeout_s=10.0, secret=b"wrong-secret")
    with pytest.raises(FabricRejected) as excinfo:
        impostor.submit(SPEC.to_dict())
    assert excinfo.value.code == 401
    assert coordinator.spec is None


def test_http_replayed_request_is_refused_without_state_change(
    secured_server,
):
    coordinator, url = secured_server
    authed = HttpTransport(url, timeout_s=10.0, secret=SECRET)
    authed.submit(SPEC.to_dict())
    # Hand-sign one request so the exact bytes can be sent twice.
    path = "/api/request"
    body = json.dumps({"worker": "w-replay"}).encode("utf-8")
    headers = {
        "Content-Type": "application/json",
        **_signed_headers(
            SECRET, "POST", path, f"{time.time():.3f}",
            "fixed-nonce-0001", body,
        ),
    }
    first = urllib.request.urlopen(
        urllib.request.Request(url + path, data=body, headers=headers),
        timeout=10.0,
    )
    lease = json.loads(first.read())["lease"]
    assert lease is not None
    grants = [s.grants for s in coordinator.shards]
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(
            urllib.request.Request(url + path, data=body, headers=headers),
            timeout=10.0,
        )
    assert excinfo.value.code == 401
    assert json.loads(excinfo.value.read()) == {"error": "unauthorized"}
    assert [s.grants for s in coordinator.shards] == grants
    # The worker itself (fresh nonce) still converses normally.
    authed.release(
        "w-replay", lease["shard"], lease["token"], "drain", "test over"
    )


def test_secret_never_leaks_into_status_or_artifact(secured_server):
    coordinator, url = secured_server
    authed = HttpTransport(url, timeout_s=10.0, secret=SECRET)
    authed.submit(SPEC.to_dict())
    lease = authed.request("w1")["lease"]
    # Upload a (bogus-CRC-safe) sealed record set via the coordinator to
    # materialize an artifact, then scan every observable surface.
    data = coordinator_fetchable_bytes(coordinator, authed, lease)
    assert SECRET not in json.dumps(authed.status()).encode("utf-8")
    assert SECRET not in data


def coordinator_fetchable_bytes(coordinator, transport, lease):
    """Push one real shard through the authenticated transport and fetch
    the merged artifact back."""
    from repro.exec.engine import run_engine
    from repro.workloads import WORKLOADS

    import tempfile

    from tests.test_fabric import RUNS, SCALE, SEED

    programs = {"bitcount": WORKLOADS["bitcount"](scale=SCALE)}
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/shard.jsonl"
        run_engine(
            programs, RUNS, seed=SEED, checkpoint_path=path,
            shard_keys=list(lease["keys"]),
        )
        with open(path, "rb") as handle:
            data = handle.read()
    transport.upload(
        "w1", lease["shard"], lease["token"], data,
        zlib.crc32(data) & 0xFFFFFFFF,
    )
    transport.release("w1", lease["shard"], lease["token"], "complete")
    return transport.fetch()
