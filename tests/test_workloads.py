"""Validation of the MiBench-analog workload suite.

Each workload is checked three ways: its assembly against its pure-Python
``expected`` model (via the reference interpreter), the cycle-level core
against the reference interpreter, and basic diversity properties the
campaign relies on.
"""

import pytest

from repro.core import OoOCore
from repro.isa.semantics import reference_run
from repro.workloads import EXPECTED, WORKLOADS, build_suite

NAMES = sorted(WORKLOADS)


@pytest.mark.parametrize("name", NAMES)
def test_assembly_matches_model(name):
    program = WORKLOADS[name]()
    output, _, _ = reference_run(program)
    assert output == EXPECTED[name](), f"{name} assembly diverges from model"


@pytest.mark.parametrize("name", NAMES)
def test_core_matches_reference(name, suite, goldens):
    expected, _, _ = reference_run(suite[name])
    assert goldens[name].output == expected
    assert goldens[name].halted


@pytest.mark.parametrize("name", NAMES)
def test_alternate_seed_changes_data_not_correctness(name):
    program = WORKLOADS[name](seed=99)
    output, _, _ = reference_run(program)
    assert output == EXPECTED[name](seed=99)


@pytest.mark.parametrize("name", ["bitcount", "crc32", "sha", "qsort"])
def test_scaling_grows_runtime(name):
    small, _, steps_small = reference_run(WORKLOADS[name](scale=0.5))
    large, _, steps_large = reference_run(WORKLOADS[name](scale=2.0))
    assert steps_large > steps_small


@pytest.mark.parametrize("name", ["qsort", "dijkstra", "fft", "susan"])
def test_scaled_assembly_still_matches_model(name):
    program = WORKLOADS[name](scale=2.0)
    output, _, _ = reference_run(program)
    assert output == EXPECTED[name](scale=2.0)


def test_suite_has_ten_benchmarks(suite):
    assert len(suite) == 10


def test_every_program_has_output(goldens):
    for name, golden in goldens.items():
        assert golden.output, f"{name} produces no output (end-of-test blind)"


def test_every_program_exercises_branches(suite):
    for name, program in suite.items():
        assert program.static_branch_count() >= 1, name


def test_flush_rate_diversity(goldens):
    """Masking statistics need benchmarks on both ends of the
    misprediction spectrum (sha quiet, dijkstra/patricia stormy)."""
    rates = {
        name: golden.stats["flushes"] / golden.cycles
        for name, golden in goldens.items()
    }
    assert min(rates.values()) < 0.01
    assert max(rates.values()) > 0.03


def test_store_intensity_diversity(suite):
    stores = {n: p.static_store_count() for n, p in suite.items()}
    assert any(v == 0 for v in stores.values()) or min(stores.values()) <= 1
    assert max(stores.values()) >= 2


def test_golden_cycles_in_campaign_range(goldens):
    """Every golden run fits the Python-scale campaign envelope."""
    for name, golden in goldens.items():
        assert 200 < golden.cycles < 60_000, (name, golden.cycles)


def test_qsort_output_is_sorted_extremes():
    from repro.workloads import qsort

    low, high, _ = qsort.expected()
    assert low <= high


def test_dijkstra_distances_bounded():
    from repro.workloads import dijkstra

    for dist in dijkstra.expected():
        assert 0 <= dist <= dijkstra.INF


def test_crc32_matches_binascii():
    """Our bitwise CRC-32 is the standard reflected polynomial."""
    import binascii

    from repro.workloads import crc32
    from repro.workloads.common import input_words, scaled

    n = scaled(40, 1.0)
    data = bytes(w & 0xFF for w in input_words(7, n, bits=8))
    assert crc32.expected() == [binascii.crc32(data) & 0xFFFFFFFF]
