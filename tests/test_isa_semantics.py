"""Unit + property tests for the pure functional semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Opcode, WORD_MASK
from repro.isa.semantics import branch_taken, execute_op, to_signed, to_unsigned

words = st.integers(min_value=0, max_value=WORD_MASK)
small = st.integers(min_value=0, max_value=1 << 20)


class TestSignedness:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed(WORD_MASK) == -1

    def test_to_signed_min(self):
        assert to_signed(1 << 63) == -(1 << 63)

    @given(words)
    def test_roundtrip(self, w):
        assert to_unsigned(to_signed(w)) == w


class TestAlu:
    def test_add_wraps(self):
        assert execute_op(Opcode.ADD, WORD_MASK, 1) == 0

    def test_sub_wraps(self):
        assert execute_op(Opcode.SUB, 0, 1) == WORD_MASK

    def test_mul(self):
        assert execute_op(Opcode.MUL, 7, 6) == 42

    def test_mul_wraps(self):
        assert execute_op(Opcode.MUL, 1 << 63, 2) == 0

    def test_div_truncates_toward_zero(self):
        neg7 = to_unsigned(-7)
        assert to_signed(execute_op(Opcode.DIV, neg7, 2)) == -3

    def test_div_by_zero_is_all_ones(self):
        assert execute_op(Opcode.DIV, 123, 0) == WORD_MASK

    def test_rem_by_zero_returns_dividend(self):
        assert execute_op(Opcode.REM, 123, 0) == 123

    def test_rem_sign_follows_dividend(self):
        neg7 = to_unsigned(-7)
        assert to_signed(execute_op(Opcode.REM, neg7, 2)) == -1

    def test_and_or_xor(self):
        assert execute_op(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert execute_op(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert execute_op(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_sll_uses_low_six_bits(self):
        assert execute_op(Opcode.SLL, 1, 64) == 1  # shift amount 64 & 63 == 0

    def test_srl_logical(self):
        assert execute_op(Opcode.SRL, WORD_MASK, 63) == 1

    def test_sra_arithmetic(self):
        assert to_signed(execute_op(Opcode.SRA, to_unsigned(-8), 2)) == -2

    def test_slt_signed(self):
        assert execute_op(Opcode.SLT, to_unsigned(-1), 0) == 1
        assert execute_op(Opcode.SLT, 0, to_unsigned(-1)) == 0

    def test_sltu_unsigned(self):
        assert execute_op(Opcode.SLTU, 0, to_unsigned(-1)) == 1

    def test_li_returns_immediate(self):
        assert execute_op(Opcode.LI, 0, 99) == 99

    def test_immediate_forms_match_register_forms(self):
        assert execute_op(Opcode.ADDI, 5, 3) == execute_op(Opcode.ADD, 5, 3)
        assert execute_op(Opcode.ANDI, 12, 10) == execute_op(Opcode.AND, 12, 10)

    def test_branch_opcode_rejected(self):
        with pytest.raises(ValueError):
            execute_op(Opcode.BEQ, 1, 1)

    @given(words, words)
    @settings(max_examples=60)
    def test_results_always_fit_in_word(self, a, b):
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
                       Opcode.REM, Opcode.SLL, Opcode.SRA, Opcode.XOR):
            assert 0 <= execute_op(opcode, a, b) <= WORD_MASK

    @given(words, st.integers(min_value=0, max_value=63))
    @settings(max_examples=40)
    def test_shift_pair_inverse_on_top_bits(self, a, s):
        shifted = execute_op(Opcode.SRL, execute_op(Opcode.SLL, a, s), s)
        mask = WORD_MASK >> s
        assert shifted == a & mask


class TestBranches:
    def test_beq(self):
        assert branch_taken(Opcode.BEQ, 5, 5)
        assert not branch_taken(Opcode.BEQ, 5, 6)

    def test_bne(self):
        assert branch_taken(Opcode.BNE, 5, 6)
        assert not branch_taken(Opcode.BNE, 5, 5)

    def test_blt_signed(self):
        assert branch_taken(Opcode.BLT, to_unsigned(-1), 0)
        assert not branch_taken(Opcode.BLT, 0, to_unsigned(-1))

    def test_bge_signed(self):
        assert branch_taken(Opcode.BGE, 0, to_unsigned(-1))
        assert branch_taken(Opcode.BGE, 3, 3)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADD, 0, 0)

    @given(words, words)
    @settings(max_examples=40)
    def test_blt_bge_complementary(self, a, b):
        assert branch_taken(Opcode.BLT, a, b) != branch_taken(Opcode.BGE, a, b)

    @given(words, words)
    @settings(max_examples=40)
    def test_beq_bne_complementary(self, a, b):
        assert branch_taken(Opcode.BEQ, a, b) != branch_taken(Opcode.BNE, a, b)
